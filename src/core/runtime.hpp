// AgentRuntime: periodic agent execution on the simulation engine.
//
// Binds SelfAwareAgents to a sim::Engine so that control loops, reward
// delivery, knowledge exchange and substrate dynamics run as scheduled
// events in simulated time — the glue for multi-agent scenarios where
// entities run at different periods (e.g. a fast platform manager next to
// a slow fleet-level coordinator), and the one place where agents and the
// worlds they control are co-scheduled.
//
// Event ordering at coincident times follows the engine-wide convention
// (see sim/engine.hpp): substrate dynamics at kOrderDynamics, agent steps
// and reward delivery at kOrderControl, knowledge exchange at
// kOrderExchange. A control step at t therefore always sees the world
// state *after* the dynamics tick at t, and exchanges see post-decision
// knowledge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/sharing.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace sa::core {

class DegradationPolicy;

class AgentRuntime {
 public:
  /// Engine `order` values used by the runtime (lower runs first at ties).
  /// Fault injection (sa::fault::Injector::kOrderFaults) sits at -1, before
  /// dynamics, so every tick sees a settled fault state.
  static constexpr int kOrderFaults = -1;
  static constexpr int kOrderDynamics = 0;
  static constexpr int kOrderControl = 1;
  static constexpr int kOrderExchange = 2;

  explicit AgentRuntime(sim::Engine& engine) : engine_(engine) {}

  /// Attaches a self-profiling registry: every subsequently scheduled
  /// stream registers a `profile.<name>.count` counter and a
  /// `profile.<name>.ms` wall-clock timer, and each agent's measured
  /// ODA-loop latency is additionally written into its own knowledge base
  /// as `meta.profile.step_ms` — the meta level reading its own cost as
  /// just another knowledge item. Wall-clock values never enter simulation
  /// logic or the trace; they are observational only. Call before
  /// schedule*(). Non-owning; null disables.
  void set_metrics(sim::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }
  /// Attaches a tracer: each subsequently scheduled stream emits one span
  /// per firing under subject `runtime.<name>`. Call before schedule*().
  /// Non-owning; null disables.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Steps `agent` every `period` seconds (first step after one period) at
  /// kOrderControl. If `reward_after` is set, its value is fed to the agent
  /// after each step. The agent must outlive the runtime's engine events.
  void schedule(SelfAwareAgent& agent, double period,
                std::function<double()> reward_after = {});

  /// Runs `tick` every `period` seconds at kOrderDynamics — the hook the
  /// substrate bind() adapters use, exposed here so scenarios can co-locate
  /// ad-hoc world dynamics with their agents. `name` labels the stream for
  /// introspection only.
  void schedule_substrate(std::string name, double period,
                          std::function<void()> tick);

  /// Every `period`, exchanges public knowledge among `agents` in a full
  /// mesh (each imports every other's snapshot) at kOrderExchange.
  /// Pointers must stay valid. When the exchange gate is blocked (see
  /// set_exchange_blocked — the ExchangeDrop fault surface), the round is
  /// not aborted: it retries with exponential backoff (set_exchange_retry)
  /// and, only after the retries are exhausted, counts a timeout and
  /// reports the failed round to every agent's interaction awareness.
  void schedule_exchange(std::vector<SelfAwareAgent*> agents, double period,
                         KnowledgeExchange exchange = KnowledgeExchange{});

  /// Every `period`, runs `policy.update(now)` at kOrderControl (after
  /// agent steps at the same instant, in registration order), passing the
  /// monitoring span's trace id so transition explanations cite it.
  /// The policy must outlive the runtime's engine events. `on` overrides
  /// the engine the stream is scheduled on (sa::shard pins a ladder to
  /// the engine shard that owns its agent, so the update reads the
  /// shard's clock); null keeps the runtime's own engine.
  void schedule_degradation(DegradationPolicy& policy, double period,
                            sim::Engine* on = nullptr);

  // -- Exchange fault surface ----------------------------------------------
  /// Gates scheduled exchanges: while blocked, exchange rounds defer and
  /// retry instead of importing. Driven by fault::bind_exchange; harmless
  /// to call directly.
  void set_exchange_blocked(bool blocked) noexcept {
    exchange_blocked_ = blocked;
  }
  [[nodiscard]] bool exchange_blocked() const noexcept {
    return exchange_blocked_;
  }
  /// Retry budget per exchange round: up to `retries` re-attempts spaced
  /// backoff0 * 2^attempt apart. `backoff0` <= 0 derives it from the
  /// round's period (period / 8). Applies to rounds scheduled afterwards.
  void set_exchange_retry(std::size_t retries, double backoff0 = 0.0) noexcept {
    exchange_retries_ = retries;
    exchange_backoff0_ = backoff0;
  }
  /// Rounds that found the gate blocked (each deferral counts once).
  [[nodiscard]] std::size_t exchange_drops() const noexcept {
    return exchange_drops_;
  }
  /// Retry attempts actually scheduled.
  [[nodiscard]] std::size_t exchange_retries() const noexcept {
    return exchange_retry_count_;
  }
  /// Rounds abandoned after the retry budget ran out.
  [[nodiscard]] std::size_t exchange_timeouts() const noexcept {
    return exchange_timeouts_;
  }

  /// Number of schedule()/schedule_substrate()/schedule_exchange()
  /// registrations.
  [[nodiscard]] std::size_t scheduled() const noexcept { return scheduled_; }
  /// Total agent steps executed through this runtime.
  [[nodiscard]] std::size_t steps_run() const noexcept { return steps_; }
  /// Total substrate ticks executed through this runtime.
  [[nodiscard]] std::size_t substrate_ticks() const noexcept {
    return substrate_ticks_;
  }
  /// Total knowledge items imported through scheduled exchanges.
  [[nodiscard]] std::size_t items_exchanged() const noexcept {
    return exchanged_;
  }
  /// Names passed to schedule_substrate(), in registration order.
  [[nodiscard]] const std::vector<std::string>& substrates() const noexcept {
    return substrates_;
  }

  // -- Checkpoint seam (sa::ckpt) -------------------------------------------
  //
  // Every stream the runtime schedules is tagged (sa.rt.* x registration
  // ordinal), so a rebuilt world that repeats the same schedule*() calls
  // under engine restore mode re-registers identical tags; exchange-retry
  // one-shots carry their attempt number as the rebinder payload. The
  // counters below are the only direct state to carry across.

  /// Runtime counters that feed bench metrics and /status.
  struct State {
    std::uint64_t steps = 0;
    std::uint64_t substrate_ticks = 0;
    std::uint64_t exchanged = 0;
    std::uint64_t exchange_drops = 0;
    std::uint64_t exchange_retries = 0;
    std::uint64_t exchange_timeouts = 0;
    bool exchange_blocked = false;
  };
  [[nodiscard]] State export_state() const noexcept {
    State st;
    st.steps = steps_;
    st.substrate_ticks = substrate_ticks_;
    st.exchanged = exchanged_;
    st.exchange_drops = exchange_drops_;
    st.exchange_retries = exchange_retry_count_;
    st.exchange_timeouts = exchange_timeouts_;
    st.exchange_blocked = exchange_blocked_;
    return st;
  }
  void import_state(const State& st) noexcept {
    steps_ = static_cast<std::size_t>(st.steps);
    substrate_ticks_ = static_cast<std::size_t>(st.substrate_ticks);
    exchanged_ = static_cast<std::size_t>(st.exchanged);
    exchange_drops_ = static_cast<std::size_t>(st.exchange_drops);
    exchange_retry_count_ = static_cast<std::size_t>(st.exchange_retries);
    exchange_timeouts_ = static_cast<std::size_t>(st.exchange_timeouts);
    exchange_blocked_ = st.exchange_blocked;
  }

 private:
  /// Per-stream profiling/tracing handles resolved at schedule time.
  struct StreamInstruments {
    sim::MetricsRegistry::MetricId count = 0;
    sim::MetricsRegistry::MetricId ms = 0;
    sim::SubjectId subject = 0;
    sim::NameId name = 0;
  };
  StreamInstruments instrument(const std::string& name,
                               const char* span_name);

  /// One scheduled exchange mesh. Rounds live in the runtime (not in the
  /// periodic closure) so retry one-shots — which can outlive any single
  /// firing — reference stable storage by index, and so a checkpoint
  /// rebinder can reconstruct a pending retry from (round, attempt) alone.
  struct ExchangeRound {
    std::vector<SelfAwareAgent*> agents;
    KnowledgeExchange exchange;
    StreamInstruments si;
    double period = 0.0;
    std::size_t retries = 0;
    double backoff0 = 0.0;
  };

  /// One exchange round (attempt 0) or retry (attempt > 0): imports when
  /// the gate is open, otherwise defers with exponential backoff until the
  /// retry budget is spent.
  void run_exchange(std::size_t round, std::size_t attempt);
  void schedule_exchange_retry(std::size_t round, std::size_t attempt);

  sim::Engine& engine_;
  sim::MetricsRegistry* metrics_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::size_t scheduled_ = 0;
  std::size_t steps_ = 0;
  std::size_t substrate_ticks_ = 0;
  std::size_t exchanged_ = 0;
  std::vector<std::string> substrates_;

  std::vector<ExchangeRound> exchange_rounds_;
  bool exchange_blocked_ = false;
  std::size_t exchange_retries_ = 3;
  double exchange_backoff0_ = 0.0;  ///< <= 0: period / 8
  std::size_t exchange_drops_ = 0;
  std::size_t exchange_retry_count_ = 0;
  std::size_t exchange_timeouts_ = 0;
};

}  // namespace sa::core
