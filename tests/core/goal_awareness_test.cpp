#include "core/goal_awareness.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

GoalModel simple_goals() {
  GoalModel g;
  g.add_objective({"x", utility::rising(0.0, 10.0), 1.0});
  return g;
}

TEST(GoalAwareness, PublishesUtilityFromObservation) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {"x"});
  KnowledgeBase kb;
  ga.update(1.0, {{"x", 5.0}}, kb);
  EXPECT_DOUBLE_EQ(ga.current_utility(), 0.5);
  EXPECT_DOUBLE_EQ(kb.number("goal.utility"), 0.5);
  EXPECT_DOUBLE_EQ(kb.number("goal.feasible"), 1.0);
  EXPECT_DOUBLE_EQ(kb.number("goal.x.utility"), 0.5);
}

TEST(GoalAwareness, FallsBackToKnowledgeBaseWhenUnsampled) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {"x"});
  KnowledgeBase kb;
  kb.put_number("x", 10.0, 0.0);  // produced earlier by another process
  ga.update(1.0, {}, kb);         // attention skipped "x" this step
  EXPECT_DOUBLE_EQ(ga.current_utility(), 1.0);
}

TEST(GoalAwareness, FreshObservationBeatsStaleKnowledge) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {"x"});
  KnowledgeBase kb;
  kb.put_number("x", 0.0, 0.0);
  ga.update(1.0, {{"x", 10.0}}, kb);
  EXPECT_DOUBLE_EQ(ga.current_utility(), 1.0);
}

TEST(GoalAwareness, ReportsViolations) {
  GoalModel goals;
  goals.add_objective({"x", utility::rising(0.0, 1.0), 1.0});
  goals.add_constraint(
      {"cap", [](const MetricMap& m) { return m.at("x") < 0.5; }, true});
  GoalAwareness ga(goals, {"x"});
  KnowledgeBase kb;
  ga.update(1.0, {{"x", 0.9}}, kb);
  EXPECT_FALSE(ga.currently_feasible());
  EXPECT_DOUBLE_EQ(kb.number("goal.violations"), 1.0);
  EXPECT_DOUBLE_EQ(ga.current_utility(), 0.0);
}

TEST(GoalAwareness, TrendSmoothsUtility) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {"x"});
  KnowledgeBase kb;
  for (int i = 0; i < 50; ++i) ga.update(i, {{"x", 10.0}}, kb);
  EXPECT_NEAR(ga.utility_trend(), 1.0, 1e-6);
  ga.update(50.0, {{"x", 0.0}}, kb);
  // One bad step dents the trend only slightly.
  EXPECT_GT(ga.utility_trend(), 0.8);
  EXPECT_DOUBLE_EQ(ga.current_utility(), 0.0);
}

TEST(GoalAwareness, RespondsToRuntimeGoalChange) {
  GoalModel goals;
  goals.add_objective({"a", utility::rising(0.0, 1.0), 1.0});
  goals.add_objective({"b", utility::rising(0.0, 1.0), 1.0});
  GoalAwareness ga(goals, {"a", "b"});
  KnowledgeBase kb;
  const Observation o{{"a", 1.0}, {"b", 0.0}};
  ga.update(0.0, o, kb);
  EXPECT_DOUBLE_EQ(ga.current_utility(), 0.5);
  ga.goals().set_weight("b", 3.0);  // stakeholder priorities shift
  ga.update(1.0, o, kb);
  EXPECT_DOUBLE_EQ(ga.current_utility(), 0.25);
}

TEST(GoalAwareness, QualityIsMetricAvailability) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {"x", "y"});
  KnowledgeBase kb;
  EXPECT_DOUBLE_EQ(ga.quality(), 0.0);  // never updated
  ga.update(0.0, {{"x", 1.0}}, kb);     // y nowhere to be found
  EXPECT_DOUBLE_EQ(ga.quality(), 0.5);
  kb.put_number("y", 2.0, 0.0);
  ga.update(1.0, {{"x", 1.0}}, kb);
  EXPECT_DOUBLE_EQ(ga.quality(), 1.0);
}

TEST(GoalAwareness, LastMetricsExposesAssembledMap) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {"x"});
  KnowledgeBase kb;
  ga.update(0.0, {{"x", 4.0}}, kb);
  ASSERT_EQ(ga.last_metrics().size(), 1u);
  EXPECT_DOUBLE_EQ(ga.last_metrics().at("x"), 4.0);
}

TEST(GoalAwareness, LevelAndName) {
  auto goals = simple_goals();
  GoalAwareness ga(goals, {});
  EXPECT_EQ(ga.level(), Level::Goal);
  EXPECT_EQ(ga.name(), "goal");
}

}  // namespace
}  // namespace sa::core
