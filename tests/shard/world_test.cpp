// ShardedWorld contract tests (sa::shard): typed validation errors,
// byte-identical trajectories at every shard count, degenerate shapes
// (empty shards, cloud-only worlds), and resumable runs.
#include "shard/world.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "support/metamorphic.hpp"

namespace {

using namespace sa;
namespace support = test::support;

const char* const kTownSpec =
    "world:horizon=80;multicore:nodes=1;"
    "cameras:count=6,objects=8,clusters=1;"
    "cloud:nodes=8;cpn:rows=3,cols=3,shortcuts=2;faults";

const char* const kReplicatedSpec =
    "world:horizon=80;multicore:nodes=3;"
    "cameras:count=5,objects=6,clusters=1,districts=3;"
    "cloud:nodes=8;cpn:rows=3,cols=3,shortcuts=2,flows=4,grids=3;faults";

shard::ShardedWorld::Options opts_for(std::size_t shards) {
  shard::ShardedWorld::Options o;
  o.shards = shards;
  return o;
}

TEST(ShardedWorldValidate, RejectsZeroShards) {
  EXPECT_THROW(shard::ShardedWorld::validate(
                   gen::ScenarioSpec::parse(kTownSpec), opts_for(0)),
               shard::ShardError);
}

TEST(ShardedWorldValidate, RejectsCouplingWindowNotLongerThanStep) {
  // cpn enabled + cloud enabled: the coupling window is the cloud epoch,
  // which must be strictly longer than the world step.
  const auto spec = gen::ScenarioSpec::parse(
      "world:horizon=40,step=1;cloud:nodes=8,epoch=1;"
      "cpn:rows=3,cols=3,shortcuts=2");
  EXPECT_THROW(shard::ShardedWorld::validate(spec, opts_for(2)),
               shard::ShardError);
  EXPECT_THROW(shard::ShardedWorld(spec, 1, opts_for(2)), shard::ShardError);
}

TEST(ShardedWorldValidate, RejectsMulticoreEpochLongerThanCloudEpoch) {
  const auto spec = gen::ScenarioSpec::parse(
      "world:horizon=40;multicore:nodes=2,epoch=20;cloud:nodes=8,epoch=10");
  EXPECT_THROW(shard::ShardedWorld::validate(spec, opts_for(2)),
               shard::ShardError);
}

TEST(ShardedWorldValidate, AcceptsTheTownAndTheCity) {
  EXPECT_NO_THROW(shard::ShardedWorld::validate(
      gen::ScenarioSpec::parse(kTownSpec), opts_for(8)));
  EXPECT_NO_THROW(shard::ShardedWorld::validate(
      gen::ScenarioSpec::parse(gen::ScenarioSpec::city_spec()), opts_for(8)));
}

TEST(ShardedWorld, TownIsByteIdenticalAtEveryShardCount) {
  EXPECT_TRUE(support::shard_count_invariant(kTownSpec, 41, {1, 2, 4, 8}));
}

TEST(ShardedWorld, ReplicatedDistrictsAndGridsAreByteIdentical) {
  EXPECT_TRUE(
      support::shard_count_invariant(kReplicatedSpec, 42, {1, 2, 4, 8}));
}

TEST(ShardedWorld, BaselineVariantIsByteIdenticalToo) {
  EXPECT_TRUE(support::shard_count_invariant(kReplicatedSpec, 43, {2, 4}, {},
                                             /*self_aware=*/false));
}

TEST(ShardedWorld, CloudOnlyWorldAllShardsIdle) {
  // No units at all: every shard idles at every barrier; the trajectory is
  // exactly the coordinator's.
  EXPECT_TRUE(support::shard_count_invariant("world:horizon=60;cloud:nodes=8",
                                             44, {1, 4}));
}

TEST(ShardedWorld, MoreShardsThanUnits) {
  // 3 units on 8 shards: five shards stay empty, result unchanged.
  EXPECT_TRUE(support::shard_count_invariant(
      "world:horizon=60;multicore:nodes=3", 45, {8}));
}

TEST(ShardedWorld, ShardEventsHasOneSlotPerShardPlusCoordinator) {
  const auto spec = gen::ScenarioSpec::parse(kTownSpec);
  shard::ShardedWorld world(spec, 7, opts_for(3));
  world.run();
  const auto events = world.shard_events();
  ASSERT_EQ(events.size(), 4u);  // 3 shards + coordinator
  std::uint64_t total = 0;
  for (const std::uint64_t e : events) total += e;
  EXPECT_GT(total, 0u);
  EXPECT_GT(events.back(), 0u);  // the coordinator always runs something
  EXPECT_GE(world.lag_seconds(), 0.0);
}

TEST(ShardedWorld, RunUntilIsResumable) {
  const auto spec = gen::ScenarioSpec::parse(kReplicatedSpec);

  shard::ShardedWorld whole(spec, 46, opts_for(4));
  whole.run();

  shard::ShardedWorld split(spec, 46, opts_for(4));
  split.run_until(37.0);
  split.run_until(spec.world.horizon);

  EXPECT_TRUE(support::byte_identical(
      support::scenario_fingerprint(whole.world()),
      support::scenario_fingerprint(split.world()),
      "one run vs split run_until"));
}

TEST(ShardedWorld, PartitionExposedAndSizedBySpec) {
  const auto spec = gen::ScenarioSpec::parse(kReplicatedSpec);
  shard::ShardedWorld world(spec, 47, opts_for(2));
  EXPECT_EQ(world.shards(), 2u);
  EXPECT_EQ(world.partition().district_shard.size(), 3u);
  EXPECT_EQ(world.partition().grid_shard.size(), 3u);
  EXPECT_EQ(world.partition().edge_shard.size(), 3u);
}

}  // namespace
