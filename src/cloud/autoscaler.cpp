#include "cloud/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace sa::cloud {

const char* Autoscaler::variant_name(Variant v) noexcept {
  switch (v) {
    case Variant::Static: return "static";
    case Variant::Reactive: return "reactive";
    case Variant::SelfAware: return "self-aware";
  }
  return "?";
}

Autoscaler::Autoscaler(Cluster& cluster, DemandModel& demand, Params p)
    : cluster_(cluster), demand_(demand), p_(p), target_(p.initial_nodes) {
  if (p_.telemetry != nullptr) cluster_.set_telemetry(p_.telemetry);
  if (p_.tracer != nullptr) {
    trace_subject_ = p_.tracer->bus().intern_subject("cloud.autoscaler");
    n_epoch_ = p_.tracer->intern_name("epoch");
    k_sla_ = p_.tracer->intern_name("sla");
    k_cost_ = p_.tracer->intern_name("cost");
  }
  build_agent();
}

void Autoscaler::bind(sim::Engine& engine, double period,
                      std::function<void(const CloudEpoch&)> on_epoch) {
  if (period <= 0.0) period = cluster_.epoch_seconds();
  engine.every_tagged(
      sim::event_tag("sa.cloud.autoscaler"), period,
      [this, on_epoch = std::move(on_epoch)] {
        const CloudEpoch e = run_epoch();
        if (on_epoch) on_epoch(e);
        return true;
      },
      /*order=*/1);
}

void Autoscaler::build_agent() {
  core::AgentConfig cfg;
  cfg.seed = p_.seed;
  cfg.telemetry = p_.telemetry;
  cfg.tracer = p_.tracer;
  switch (p_.variant) {
    case Variant::Static:
      cfg.levels = core::LevelSet{};
      break;
    case Variant::Reactive:
      cfg.levels = core::LevelSet::minimal();
      break;
    case Variant::SelfAware:
      cfg.levels = p_.levels;
      break;
  }
  cfg.time.error_scale = 15.0;  // demand is tens of requests/s
  cfg.time.seasonal_period = p_.seasonal_epochs;
  cfg.time.score_horizon = 2;   // decisions bite after the provisioning lag
  agent_ = std::make_unique<core::SelfAwareAgent>("autoscaler", cfg);

  agent_->add_sensor("demand", [this] { return last_.arrival_rate; });
  agent_->add_sensor("sla", [this] { return last_.sla; });
  agent_->add_sensor("cost", [this] { return last_.cost; });
  agent_->add_sensor("capacity", [this] { return last_.capacity; });
  agent_->add_sensor("backlog", [this] { return last_.backlog; });
  agent_->add_sensor("utilisation", [this] { return last_.utilisation; });

  for (std::size_t i = 0; i < std::size(kDeltas); ++i) {
    const int d = kDeltas[i];
    agent_->add_action("delta" + std::to_string(d), [this, d] {
      const auto n = static_cast<long>(target_) + d;
      target_ = static_cast<std::size_t>(
          std::clamp<long>(n, 0, static_cast<long>(cluster_.size())));
    });
  }

  auto& goals = agent_->goals();
  goals.add_objective({"sla", core::utility::rising(0.0, 1.0), 2.0});
  goals.add_objective({"cost", core::utility::falling(0.0, p_.cost_scale),
                       1.0});
  agent_->set_goal_metrics({"sla", "cost"});

  switch (p_.variant) {
    case Variant::Static:
      agent_->set_policy(std::make_unique<core::FixedPolicy>(
          std::size(kDeltas) / 2));  // delta 0
      break;
    case Variant::Reactive: {
      auto rules =
          std::make_unique<core::RulePolicy>(std::size(kDeltas) / 2);
      const double target = p_.sla_target;
      rules->add_rule({"sla below target -> scale out",
                       [target](const core::KnowledgeBase& kb) {
                         return kb.number("sla", 1.0) < target;
                       },
                       /*delta+3*/ 4,
                       {"sla"}});
      rules->add_rule({"underutilised -> scale in",
                       [](const core::KnowledgeBase& kb) {
                         return kb.number("utilisation", 1.0) < 0.5;
                       },
                       /*delta-1*/ 1,
                       {"utilisation"}});
      agent_->set_policy(std::move(rules));
      break;
    }
    case Variant::SelfAware: {
      // Self-prediction: simulate each scaling action against the forecast
      // demand and learned node reliabilities, score with the goal model.
      auto model = [this](std::size_t action,
                          const core::KnowledgeBase& kb) -> core::MetricMap {
        const int d = kDeltas[action];
        const auto n = static_cast<long>(target_) + d;
        const auto k = static_cast<std::size_t>(
            std::clamp<long>(n, 0, static_cast<long>(cluster_.size())));
        (void)kb;
        return predict(k);
      };
      agent_->set_policy(std::make_unique<core::ModelBasedPolicy>(
          agent_->goals(), std::move(model),
          std::vector<std::string>{"forecast.demand", "backlog"}));
      break;
    }
  }
}

std::vector<std::size_t> Autoscaler::enrolment_order() const {
  std::vector<std::size_t> order(cluster_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (p_.variant != Variant::SelfAware || !agent_) return order;

  // Learned ranking: expected delivered capacity per unit cost, with a
  // prior that keeps unexplored nodes attractive enough to be tried.
  const auto* ia =
      const_cast<core::SelfAwareAgent&>(*agent_).interaction();
  if (ia == nullptr) return order;
  std::vector<double> score(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& n = cluster_.node(i);
    const double rel = ia->interactions(n.id) > 0 ? ia->reliability(n.id)
                                                  : 0.6;  // optimistic prior
    score[i] = rel * n.capacity / n.cost_per_s;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score[a] > score[b];
                   });
  return order;
}

core::MetricMap Autoscaler::predict(std::size_t k) const {
  const auto order = enrolment_order();
  const auto* ia = const_cast<core::SelfAwareAgent&>(*agent_).interaction();
  double capacity = 0.0, cost = 0.0;
  for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
    const auto& n = cluster_.node(order[i]);
    const double rel =
        (ia && ia->interactions(n.id) > 0) ? ia->reliability(n.id) : 0.6;
    capacity += rel * n.capacity;
    cost += n.cost_per_s;
  }
  const double epoch_s = last_.duration > 0.0 ? last_.duration : 10.0;
  // Demand forecast from time awareness when warm, else last observation.
  // With provisioning lag, a fresh node only helps *next* epoch, so the
  // relevant demand is the two-epochs-ahead forecast.
  const auto& kb = const_cast<core::SelfAwareAgent&>(*agent_).knowledge();
  double demand_rate = last_.arrival_rate;
  auto* ta = const_cast<core::SelfAwareAgent&>(*agent_).time_awareness();
  if (ta != nullptr && kb.confidence("forecast.demand") >= 0.2) {
    // Trust the model for anticipation, but bound it to a plausible band
    // around the last observation: seasonal models occasionally misfire
    // right after a burst, and a wild forecast is worse than a stale one.
    demand_rate = std::clamp(ta->forecast("demand", 2),
                             0.6 * last_.arrival_rate,
                             1.6 * last_.arrival_rate);
  }
  const double offered = demand_rate * epoch_s + last_.backlog;
  const double service = capacity * epoch_s;
  const double sla = offered > 0.0 ? std::min(1.0, service / offered) : 1.0;
  return core::MetricMap{{"sla", sla}, {"cost", cost * epoch_s}};
}

CloudEpoch Autoscaler::run_epoch() {
  // Epoch-length span on the autoscaler's track; the agent's ODA spans
  // (decide-first) open it, the reward's outcome span closes the chain.
  auto span = (p_.tracer != nullptr && p_.tracer->enabled())
                  ? p_.tracer->span(cluster_.now(), trace_subject_, n_epoch_)
                  : sim::Tracer::Span{};
  // Decide first (using knowledge from previous epochs), then live with it.
  agent_->step(cluster_.now());
  cluster_.enrol(enrolment_order(), target_);

  sim::Rng demand_rng(sim::mix64(p_.seed) ^ epochs_);
  const double rate = demand_.rate(cluster_.now(), 10.0, demand_rng);
  last_ = cluster_.run_epoch(rate);

  // Learn who actually delivered: one interaction record per enrolled node.
  for (const auto& o : cluster_.last_outcomes()) {
    agent_->record_interaction(cluster_.node(o.index).id, o.stayed_up,
                               o.delivered);
  }

  const core::MetricMap m{{"sla", last_.sla}, {"cost", last_.cost}};
  const double u = agent_->goals().utility(m);
  agent_->reward(u);

  ++epochs_;
  sla_.add(last_.sla);
  cost_.add(last_.cost);
  utility_.add(u);
  if (last_.sla < p_.sla_target) ++violations_;
  if (span) {
    span.arg(k_sla_, last_.sla);
    span.arg(k_cost_, last_.cost);
    span.end_at(cluster_.now());
  }
  return last_;
}

}  // namespace sa::cloud
