#include "core/time_awareness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sa::core {
namespace {

Observation obs(std::initializer_list<std::pair<const std::string, double>> m) {
  return Observation{m};
}

TEST(TimeAwareness, PublishesForecastKeys) {
  TimeAwareness ta;
  KnowledgeBase kb;
  for (int i = 0; i < 20; ++i) {
    ta.update(static_cast<double>(i), obs({{"load", 5.0}}), kb);
  }
  EXPECT_TRUE(kb.contains("forecast.load"));
  EXPECT_TRUE(kb.contains("forecast.load.mae"));
  EXPECT_TRUE(kb.contains("forecast.load.model"));
  EXPECT_NEAR(kb.number("forecast.load"), 5.0, 1e-9);
}

TEST(TimeAwareness, ConstantSignalForecastIsExact) {
  TimeAwareness ta;
  KnowledgeBase kb;
  for (int i = 0; i < 50; ++i) {
    ta.update(static_cast<double>(i), obs({{"x", 7.0}}), kb);
  }
  EXPECT_NEAR(ta.forecast("x"), 7.0, 1e-9);
  EXPECT_NEAR(ta.error("x"), 0.0, 1e-9);
}

TEST(TimeAwareness, TrendSignalSelectsHolt) {
  TimeAwareness ta;
  KnowledgeBase kb;
  for (int i = 0; i < 120; ++i) {
    ta.update(static_cast<double>(i), obs({{"x", 2.0 * i}}), kb);
  }
  EXPECT_EQ(ta.best_model("x"), "holt");
  EXPECT_NEAR(ta.forecast("x"), 240.0, 2.0);
}

TEST(TimeAwareness, SeasonalSignalSelectsHoltWintersWhenAvailable) {
  TimeAwareness::Params p;
  p.seasonal_period = 8;
  TimeAwareness ta(p);
  KnowledgeBase kb;
  for (int i = 0; i < 400; ++i) {
    const double x = 10.0 + 5.0 * std::sin(2.0 * 3.14159265 * i / 8.0);
    ta.update(static_cast<double>(i), obs({{"x", x}}), kb);
  }
  EXPECT_EQ(ta.best_model("x"), "holt-winters");
}

TEST(TimeAwareness, UnknownSignalQueriesAreSafe) {
  TimeAwareness ta;
  EXPECT_DOUBLE_EQ(ta.forecast("nothing"), 0.0);
  EXPECT_GT(ta.error("nothing"), 1e100);
  EXPECT_EQ(ta.best_model("nothing"), "");
}

TEST(TimeAwareness, TrackOnlyRestrictsSignals) {
  TimeAwareness ta;
  ta.track_only({"a"});
  KnowledgeBase kb;
  for (int i = 0; i < 10; ++i) {
    ta.update(static_cast<double>(i), obs({{"a", 1.0}, {"b", 2.0}}), kb);
  }
  EXPECT_TRUE(kb.contains("forecast.a"));
  EXPECT_FALSE(kb.contains("forecast.b"));
}

TEST(TimeAwareness, ConfidenceDropsWithErrors) {
  TimeAwareness ta;
  KnowledgeBase kb;
  // Highly unpredictable alternating signal.
  for (int i = 0; i < 60; ++i) {
    ta.update(static_cast<double>(i),
              obs({{"x", i % 2 == 0 ? 0.0 : 100.0}}), kb);
  }
  EXPECT_LT(kb.confidence("forecast.x"), 0.2);
}

TEST(TimeAwareness, QualityHighForPredictableSignals) {
  TimeAwareness ta;
  KnowledgeBase kb;
  for (int i = 0; i < 50; ++i) {
    ta.update(static_cast<double>(i), obs({{"x", 3.0}}), kb);
  }
  EXPECT_GT(ta.quality(), 0.9);
}

TEST(TimeAwareness, ReconfigureForgetsEnsembles) {
  TimeAwareness ta;
  KnowledgeBase kb;
  for (int i = 0; i < 20; ++i) {
    ta.update(static_cast<double>(i), obs({{"x", 5.0}}), kb);
  }
  ta.reconfigure();
  EXPECT_DOUBLE_EQ(ta.forecast("x"), 0.0);
  EXPECT_DOUBLE_EQ(ta.quality(), 1.0);  // fresh ensembles: neutral
}

TEST(TimeAwareness, MultiStepForecastExtrapolates) {
  TimeAwareness ta;
  KnowledgeBase kb;
  for (int i = 0; i < 100; ++i) {
    ta.update(static_cast<double>(i), obs({{"x", 1.0 * i}}), kb);
  }
  const double h1 = ta.forecast("x", 1);
  const double h10 = ta.forecast("x", 10);
  EXPECT_GT(h10, h1 + 5.0);
}

TEST(TimeAwareness, LevelAndName) {
  TimeAwareness ta;
  EXPECT_EQ(ta.level(), Level::Time);
  EXPECT_EQ(ta.name(), "time");
}

}  // namespace
}  // namespace sa::core
