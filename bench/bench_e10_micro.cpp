// E10 — framework primitives are cheap enough for resource-constrained
// systems (paper Section III: cognitive radio, CPN, "small, resource
// constrained systems").
//
// Micro-benchmarks of every hot-path primitive: the knowledge base, the
// awareness processes, the decision policies, a full agent ODA step, a
// gossip round, and the substrate simulators' inner steps. Each kernel is
// one grid variant; the grid's "seeds" are repeat indices and the table
// reports the best (minimum) ns/op over repeats, which damps scheduler
// noise the same way google-benchmark's repetitions do. Timing metrics
// are wall-clock derived and therefore not bitwise deterministic — use
// --jobs 1 when comparing numbers across machines.
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/collective.hpp"
#include "cpn/network.hpp"
#include "exp/harness.hpp"
#include "learn/bandit.hpp"
#include "learn/forecast.hpp"
#include "multicore/platform.hpp"
#include "sim/report.hpp"
#include "svc/network.hpp"

namespace {

using namespace sa;

/// Keeps `v` observable so the optimiser cannot delete the benchmark body
/// (the same contract as benchmark::DoNotOptimize).
template <class T>
inline void keep(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

/// Times `op()` over `iters` iterations after a 1/16 warm-up and returns
/// nanoseconds per op.
template <class F>
double time_ns(std::size_t iters, F&& op) {
  for (std::size_t i = 0; i < iters / 16 + 1; ++i) op();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) op();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

struct Kernel {
  std::string name;
  std::size_t iters;
  double (*run)(std::size_t iters);
};

const std::vector<Kernel> kKernels = {
    {"knowledge_put", 1 << 18,
     [](std::size_t n) {
       core::KnowledgeBase kb;
       double t = 0.0;
       return time_ns(n, [&] {
         kb.put_number("signal.load", 1.0, t);
         t += 1.0;
       });
     }},
    {"knowledge_latest", 1 << 18,
     [](std::size_t n) {
       core::KnowledgeBase kb;
       for (int i = 0; i < 64; ++i) {
         kb.put_number("key" + std::to_string(i), i, 0.0);
       }
       return time_ns(n, [&] { keep(kb.number("key32")); });
     }},
    {"stimulus_update", 1 << 16,
     [](std::size_t n) {
       core::StimulusAwareness sa_;
       core::KnowledgeBase kb;
       core::Observation obs{{"a", 1.0}, {"b", 2.0}, {"c", 3.0}, {"d", 4.0}};
       double t = 0.0;
       return time_ns(n, [&] {
         sa_.update(t, obs, kb);
         t += 1.0;
       });
     }},
    {"forecaster_observe", 1 << 18,
     [](std::size_t n) {
       learn::HoltForecaster f;
       double x = 0.0;
       return time_ns(n, [&] {
         f.observe(x);
         x += 0.1;
         keep(f.forecast());
       });
     }},
    {"bandit_select_update@4", 1 << 17,
     [](std::size_t n) {
       learn::Ucb1 bandit(4);
       sim::Rng rng(1);
       return time_ns(n, [&] {
         const auto arm = bandit.select(rng);
         bandit.update(arm, 0.5);
       });
     }},
    {"bandit_select_update@16", 1 << 16,
     [](std::size_t n) {
       learn::Ucb1 bandit(16);
       sim::Rng rng(1);
       return time_ns(n, [&] {
         const auto arm = bandit.select(rng);
         bandit.update(arm, 0.5);
       });
     }},
    {"bandit_select_update@64", 1 << 15,
     [](std::size_t n) {
       learn::Ucb1 bandit(64);
       sim::Rng rng(1);
       return time_ns(n, [&] {
         const auto arm = bandit.select(rng);
         bandit.update(arm, 0.5);
       });
     }},
    {"agent_step@4", 1 << 13,
     [](std::size_t n) {
       core::AgentConfig cfg;
       core::SelfAwareAgent agent("bench", cfg);
       for (std::size_t s = 0; s < 4; ++s) {
         agent.add_sensor("s" + std::to_string(s),
                          [s] { return static_cast<double>(s); });
       }
       agent.add_action("a", [] {});
       agent.add_action("b", [] {});
       agent.goals().add_objective(
           {"s0", core::utility::rising(0.0, 10.0), 1.0});
       agent.set_goal_metrics({"s0"});
       agent.set_policy(std::make_unique<core::BanditPolicy>(
           std::make_unique<learn::Ucb1>(2)));
       double t = 0.0;
       return time_ns(n, [&] {
         agent.step(t);
         agent.reward(0.5);
         t += 1.0;
       });
     }},
    {"agent_step@16", 1 << 12,
     [](std::size_t n) {
       core::AgentConfig cfg;
       core::SelfAwareAgent agent("bench", cfg);
       for (std::size_t s = 0; s < 16; ++s) {
         agent.add_sensor("s" + std::to_string(s),
                          [s] { return static_cast<double>(s); });
       }
       agent.add_action("a", [] {});
       agent.add_action("b", [] {});
       agent.goals().add_objective(
           {"s0", core::utility::rising(0.0, 10.0), 1.0});
       agent.set_goal_metrics({"s0"});
       agent.set_policy(std::make_unique<core::BanditPolicy>(
           std::make_unique<learn::Ucb1>(2)));
       double t = 0.0;
       return time_ns(n, [&] {
         agent.step(t);
         agent.reward(0.5);
         t += 1.0;
       });
     }},
    {"gossip_round@64", 1 << 13,
     [](std::size_t n) {
       core::GossipAggregator agg(64);
       std::vector<double> values(64, 1.0);
       agg.reset(values);
       sim::Rng rng(2);
       return time_ns(n, [&] { keep(agg.round(rng)); });
     }},
    {"gossip_round@256", 1 << 11,
     [](std::size_t n) {
       core::GossipAggregator agg(256);
       std::vector<double> values(256, 1.0);
       agg.reset(values);
       sim::Rng rng(2);
       return time_ns(n, [&] { keep(agg.round(rng)); });
     }},
    {"platform_tick", 1 << 14,
     [](std::size_t n) {
       multicore::Platform platform(
           multicore::PlatformConfig::big_little(2, 4), 3);
       platform.set_workload(30.0, 0.2, 0.5);
       return time_ns(n, [&] { platform.step(); });
     }},
    {"cpn_tick", 1 << 13,
     [](std::size_t n) {
       cpn::PacketNetwork net(cpn::Topology::grid(4, 6, 4, 4), {});
       sim::Rng rng(4);
       return time_ns(n, [&] {
         net.inject(rng.below(24), rng.below(24), true);
         net.step();
       });
     }},
    {"svc_step", 1 << 10,
     [](std::size_t n) {
       svc::NetworkParams p;
       p.seed = 5;
       auto net = svc::Network::clustered_layout(p);
       return time_ns(n, [&] { net.step(); });
     }},
    {"explanation_record", 1 << 16,
     [](std::size_t n) {
       core::Explainer ex;
       core::Explanation e;
       e.agent = "bench";
       e.decision.action = "act";
       e.decision.considered = {{"act", 0.5}, {"other", 0.3}};
       e.evidence = {{"k", 1.0, 0.9}};
       return time_ns(n, [&] { ex.record(e); });
     }},
};

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e10_micro", argc, argv);
  std::cout << "E10: ns/op of the framework's hot-path primitives (best of "
               "3 repeats).\n\n";

  exp::Grid g;
  g.name = "e10";
  for (const auto& k : kKernels) g.variants.push_back(k.name);
  g.seeds = {1, 2, 3};  // repeat indices, not simulation seeds
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const auto& k = kKernels[ctx.variant];
    return {{{"ns_per_op", k.run(k.iters)},
             {"iters", static_cast<double>(k.iters)}}};
  };
  const auto res = h.run(std::move(g));

  sim::Table t("E10.1  primitive cost", {"kernel", "ns/op", "iters"});
  t.precision(1, 1);
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t.add_row({res.variants[v], res.stats(v, "ns_per_op").min(),
               static_cast<std::int64_t>(kKernels[v].iters)});
  }
  t.print(std::cout);
  return h.finish();
}
