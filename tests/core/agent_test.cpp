#include "core/agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "learn/bandit.hpp"

namespace sa::core {
namespace {

AgentConfig quiet_config() {
  AgentConfig cfg;
  cfg.seed = 5;
  return cfg;
}

TEST(SelfAwareAgent, FullStackConstructsAllProcesses) {
  SelfAwareAgent a("full", quiet_config());
  EXPECT_NE(a.stimulus(), nullptr);
  EXPECT_NE(a.interaction(), nullptr);
  EXPECT_NE(a.time_awareness(), nullptr);
  EXPECT_NE(a.meta(), nullptr);
  EXPECT_EQ(a.goal_awareness(), nullptr);  // until metrics are declared
  a.set_goal_metrics({"x"});
  EXPECT_NE(a.goal_awareness(), nullptr);
}

TEST(SelfAwareAgent, MinimalConfigHasOnlyStimulus) {
  AgentConfig cfg;
  cfg.levels = LevelSet::minimal();
  SelfAwareAgent a("min", cfg);
  EXPECT_NE(a.stimulus(), nullptr);
  EXPECT_EQ(a.interaction(), nullptr);
  EXPECT_EQ(a.time_awareness(), nullptr);
  EXPECT_EQ(a.meta(), nullptr);
  a.set_goal_metrics({"x"});
  EXPECT_EQ(a.goal_awareness(), nullptr);  // Goal level not enabled
}

TEST(SelfAwareAgent, SensorsFlowIntoKnowledge) {
  SelfAwareAgent a("sensing", quiet_config());
  double load = 3.0;
  a.add_sensor("load", [&] { return load; });
  a.step(1.0);
  EXPECT_DOUBLE_EQ(a.knowledge().number("load"), 3.0);
  load = 9.0;
  a.step(2.0);
  EXPECT_DOUBLE_EQ(a.knowledge().number("load"), 9.0);
}

TEST(SelfAwareAgent, SensorsReachKnowledgeEvenWithoutStimulusLevel) {
  AgentConfig cfg;
  cfg.levels = LevelSet{};  // zero awareness
  SelfAwareAgent a("none", cfg);
  a.add_sensor("x", [] { return 4.0; });
  a.step(0.0);
  EXPECT_DOUBLE_EQ(a.knowledge().number("x"), 4.0);
}

TEST(SelfAwareAgent, DecisionsActuate) {
  SelfAwareAgent a("acting", quiet_config());
  int ups = 0, downs = 0;
  a.add_action("up", [&] { ++ups; });
  a.add_action("down", [&] { ++downs; });
  a.set_policy(std::make_unique<FixedPolicy>(0));
  for (int i = 0; i < 5; ++i) a.step(i);
  EXPECT_EQ(ups, 5);
  EXPECT_EQ(downs, 0);
}

TEST(SelfAwareAgent, NoPolicyMeansNoDecision) {
  SelfAwareAgent a("idle", quiet_config());
  a.add_action("noop", [] {});
  const auto d = a.step(0.0);
  EXPECT_EQ(d.action_index, static_cast<std::size_t>(-1));
  EXPECT_TRUE(d.action.empty());
}

TEST(SelfAwareAgent, RewardReachesLearningPolicy) {
  SelfAwareAgent a("learning", quiet_config());
  a.add_action("a", [] {});
  a.add_action("b", [] {});
  a.set_policy(std::make_unique<BanditPolicy>(
      std::make_unique<learn::EpsilonGreedy>(2, 0.1)));
  std::size_t b_count = 0;
  const int n = 800;
  for (int i = 0; i < n; ++i) {
    const auto d = a.step(i);
    a.reward(d.action_index == 1 ? 1.0 : 0.0);
    if (i > n / 2 && d.action_index == 1) ++b_count;
  }
  EXPECT_GT(b_count, static_cast<std::size_t>(n / 2 * 0.7));
}

TEST(SelfAwareAgent, GoalUtilityComputedFromSensors) {
  SelfAwareAgent a("goals", quiet_config());
  a.add_sensor("perf", [] { return 50.0; });
  a.goals().add_objective({"perf", utility::rising(0.0, 100.0), 1.0});
  a.set_goal_metrics({"perf"});
  a.step(0.0);
  EXPECT_DOUBLE_EQ(a.current_utility(), 0.5);
  EXPECT_DOUBLE_EQ(a.knowledge().number("goal.utility"), 0.5);
}

TEST(SelfAwareAgent, TimeAwarenessForecastsSensorSignals) {
  SelfAwareAgent a("forecaster", quiet_config());
  double v = 0.0;
  a.add_sensor("ramp", [&] { return v; });
  for (int i = 0; i < 60; ++i) {
    v = 2.0 * i;
    a.step(i);
  }
  EXPECT_TRUE(a.knowledge().contains("forecast.ramp"));
  EXPECT_NEAR(a.knowledge().number("forecast.ramp"), 120.0, 5.0);
}

TEST(SelfAwareAgent, ExplanationsRecordedPerDecision) {
  SelfAwareAgent a("explained", quiet_config());
  a.add_sensor("x", [] { return 1.0; });
  a.add_action("act", [] {});
  a.set_policy(std::make_unique<FixedPolicy>(0));
  for (int i = 0; i < 7; ++i) a.step(i);
  EXPECT_EQ(a.explainer().size(), 7u);
  EXPECT_DOUBLE_EQ(a.explainer().coverage(), 1.0);
  EXPECT_NE(a.explainer().why_last().find("explained"), std::string::npos);
}

TEST(SelfAwareAgent, ExplanationsCanBeDisabled) {
  AgentConfig cfg = quiet_config();
  cfg.explain = false;
  SelfAwareAgent a("silent", cfg);
  a.add_action("act", [] {});
  a.set_policy(std::make_unique<FixedPolicy>(0));
  a.step(0.0);
  EXPECT_EQ(a.explainer().size(), 0u);
  EXPECT_EQ(a.explainer().decisions(), 1u);
}

TEST(SelfAwareAgent, ExplanationCapturesGoalUtilityAndEvidence) {
  SelfAwareAgent a("evidenced", quiet_config());
  a.add_sensor("m", [] { return 10.0; });
  a.goals().add_objective({"m", utility::rising(0.0, 10.0), 1.0});
  a.set_goal_metrics({"m"});
  a.add_action("act", [] {});
  auto rules = std::make_unique<RulePolicy>(0);
  rules->add_rule({"m seen",
                   [](const KnowledgeBase& kb) { return kb.number("m") > 5; },
                   0,
                   {"m"}});
  a.set_policy(std::move(rules));
  a.step(1.0);
  const auto e = a.explainer().last();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->has_goal);
  EXPECT_DOUBLE_EQ(e->goal_utility, 1.0);
  ASSERT_EQ(e->evidence.size(), 1u);
  EXPECT_EQ(e->evidence[0].key, "m");
  EXPECT_DOUBLE_EQ(e->evidence[0].value, 10.0);
}

TEST(SelfAwareAgent, InteractionsFlowToPeerKnowledge) {
  SelfAwareAgent a("social", quiet_config());
  for (int i = 0; i < 20; ++i) a.record_interaction("friend", true, 1.0);
  a.step(0.0);
  EXPECT_NEAR(a.knowledge().number("peer.friend.reliability"), 1.0, 1e-9);
}

TEST(SelfAwareAgent, InteractionIgnoredWhenLevelDisabled) {
  AgentConfig cfg;
  cfg.levels = LevelSet::minimal();
  SelfAwareAgent a("antisocial", cfg);
  a.record_interaction("friend", true);  // must be a safe no-op
  a.step(0.0);
  EXPECT_FALSE(a.knowledge().contains("peer.friend.reliability"));
}

TEST(SelfAwareAgent, AttentionBudgetLimitsSampling) {
  AgentConfig cfg = quiet_config();
  cfg.attention_budget = 1;
  cfg.attention_strategy = AttentionManager::Strategy::RoundRobin;
  SelfAwareAgent a("attentive", cfg);
  int reads_a = 0, reads_b = 0;
  a.add_sensor("a", [&] {
    ++reads_a;
    return 0.0;
  });
  a.add_sensor("b", [&] {
    ++reads_b;
    return 0.0;
  });
  for (int i = 0; i < 10; ++i) a.step(i);
  EXPECT_EQ(reads_a + reads_b, 10);
  EXPECT_EQ(reads_a, 5);
  EXPECT_EQ(reads_b, 5);
}

TEST(SelfAwareAgent, MetaResetsPolicyOnUtilityDrift) {
  AgentConfig cfg = quiet_config();
  cfg.meta.grace_updates = 8;
  cfg.meta.ph_lambda = 1.0;
  SelfAwareAgent a("adaptive", cfg);
  double metric = 10.0;
  a.add_sensor("m", [&] { return metric; });
  a.goals().add_objective({"m", utility::rising(0.0, 10.0), 1.0});
  a.set_goal_metrics({"m"});
  a.add_action("x", [] {});
  a.add_action("y", [] {});
  a.set_policy(std::make_unique<BanditPolicy>(
      std::make_unique<learn::EpsilonGreedy>(2, 0.0)));
  auto* policy = dynamic_cast<BanditPolicy*>(a.policy());
  ASSERT_NE(policy, nullptr);

  for (int i = 0; i < 60; ++i) {
    a.step(i);
    a.reward(1.0);
  }
  EXPECT_GT(policy->bandit().value(0) + policy->bandit().value(1), 0.5);
  // Utility collapses -> drift -> meta resets the policy's learned values.
  metric = 0.0;
  for (int i = 60; i < 160; ++i) {
    a.step(i);
    a.reward(0.0);
  }
  ASSERT_GE(a.meta()->drift_detections(), 1u);
}

TEST(SelfAwareAgent, StepsAreCounted) {
  SelfAwareAgent a("counted", quiet_config());
  for (int i = 0; i < 3; ++i) a.step(i);
  EXPECT_EQ(a.steps(), 3u);
}

TEST(SelfAwareAgent, IdAndLevelsAccessors) {
  AgentConfig cfg;
  cfg.levels = LevelSet{Level::Stimulus, Level::Goal};
  SelfAwareAgent a("me", cfg);
  EXPECT_EQ(a.id(), "me");
  EXPECT_TRUE(a.levels().has(Level::Goal));
  EXPECT_FALSE(a.levels().has(Level::Meta));
}

TEST(SelfAwareAgent, ActionNamesPreserved) {
  SelfAwareAgent a("named", quiet_config());
  a.add_action("first", [] {});
  a.add_action("second", [] {});
  EXPECT_EQ(a.actions(), (std::vector<std::string>{"first", "second"}));
}

TEST(SelfAwareAgent, DescribeReportsCapabilities) {
  SelfAwareAgent a("inspector", quiet_config());
  a.add_sensor("load", [] { return 1.0; });
  a.add_sensor("power", [] { return 2.0; });
  a.add_action("up", [] {});
  a.goals().add_objective({"load", utility::rising(0.0, 1.0), 1.0});
  a.set_goal_metrics({"load"});
  a.set_policy(std::make_unique<FixedPolicy>(0));
  for (int i = 0; i < 3; ++i) a.step(i);
  const std::string d = a.describe();
  EXPECT_NE(d.find("inspector"), std::string::npos);
  EXPECT_NE(d.find("stimulus+interaction+time+goal+meta"),
            std::string::npos);
  EXPECT_NE(d.find("2 sensors (load, power)"), std::string::npos);
  EXPECT_NE(d.find("policy fixed"), std::string::npos);
  EXPECT_NE(d.find("1 objective"), std::string::npos);
  EXPECT_NE(d.find("Process quality:"), std::string::npos);
  EXPECT_NE(d.find("Decisions taken: 3 (explained 100%)"),
            std::string::npos);
}

TEST(SelfAwareAgent, DescribeOnEmptyAgentIsSane) {
  AgentConfig cfg;
  cfg.levels = LevelSet{};
  SelfAwareAgent a("blank", cfg);
  const std::string d = a.describe();
  EXPECT_NE(d.find("levels none"), std::string::npos);
  EXPECT_NE(d.find("0 sensors"), std::string::npos);
  EXPECT_NE(d.find("policy none"), std::string::npos);
}

TEST(SelfAwareAgent, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    AgentConfig cfg;
    cfg.seed = seed;
    SelfAwareAgent a("det", cfg);
    a.add_sensor("x", [] { return 1.0; });
    a.add_action("a", [] {});
    a.add_action("b", [] {});
    a.set_policy(std::make_unique<BanditPolicy>(
        std::make_unique<learn::EpsilonGreedy>(2, 0.5)));
    std::vector<std::size_t> picks;
    for (int i = 0; i < 50; ++i) {
      picks.push_back(a.step(i).action_index);
      a.reward(0.5);
    }
    return picks;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace sa::core
