// E13 — fault injection and graceful degradation
// (paper Sections III and VII: self-awareness is claimed to pay off
// precisely "in complex, uncertain and dynamic environments").
//
// Claim operationalised, two grids sharing one deterministic fault plan
// per seed (variants within a seed face the *identical* fault schedule):
//
//   e13.cpn       — permanent link losses hit a packet network mid-run.
//                   Static shortest-path routing keeps sending onto dead
//                   links and never recovers (censored: recovered = 0);
//                   the self-aware Q-router observes the drops and routes
//                   around, regaining >= 90% of its pre-fault delivery
//                   rate within a finite time-to-recovery.
//   e13.multicore — transient core failures and DVFS caps hit a chip.
//                   The self-aware manager runs a DegradationPolicy fed by
//                   the injector ("fault.active"): it sheds awareness
//                   levels under fault pressure and recovers them after,
//                   reporting the degraded-mode dwell; the reactive
//                   baseline just rides the faults out.
//
// All fault randomness comes from the plan's own seeded streams
// (sa::fault), so every metric is bitwise-identical across --jobs N.
// --fault-plan SPEC overlays a custom plan on both grids.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/degrade.hpp"
#include "core/runtime.hpp"
#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "exp/harness.hpp"
#include "fault/adapters.hpp"
#include "fault/fault.hpp"
#include "multicore/manager.hpp"
#include "multicore/platform.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"

namespace {

using namespace sa;

const std::vector<std::uint64_t> kSeeds{41, 42, 43};

// -- e13.cpn: permanent link loss, recovery of delivery rate ----------------

constexpr double kCpnHorizon = 6000.0;
constexpr double kCpnWindow = 250.0;    // delivery measured per window
constexpr double kFaultStart = 2000.0;  // fault window (plan start/end)
constexpr double kFaultEnd = 2500.0;
constexpr double kRecoverFrac = 0.9;    // of pre-fault delivery

fault::FaultPlan cpn_plan(const std::string& spec, std::uint64_t seed) {
  fault::FaultPlan plan =
      spec.empty()
          ? fault::FaultPlan::parse("link-loss:rate=0.01,dur=-1,start=2000,"
                                    "end=2500,burst=2")
          : fault::FaultPlan::parse(spec);
  if (plan.seed == 0) plan.seed = seed;  // same schedule for both variants
  return plan;
}

exp::TaskOutput run_cpn(cpn::PacketNetwork::Router router,
                        const std::string& plan_spec,
                        const exp::TaskContext& ctx) {
  const std::uint64_t seed = ctx.seed;
  const auto topo = cpn::Topology::grid(4, 6, 4, seed);
  cpn::PacketNetwork::Params np;
  np.router = router;
  np.seed = seed;
  cpn::PacketNetwork net(topo, np);
  if (ctx.telemetry != nullptr) net.set_telemetry(ctx.telemetry);

  cpn::TrafficParams tp;  // steady legitimate traffic, no attack
  tp.flows = 8;
  tp.legit_rate = 2.0;
  tp.seed = seed;
  cpn::TrafficGenerator gen(topo, tp);

  sim::Engine engine;
  fault::Injector inj;
  fault::bind_packet_network(inj, net);
  if (ctx.telemetry != nullptr) inj.set_telemetry(ctx.telemetry);
  const fault::FaultPlan plan = cpn_plan(plan_spec, seed);
  inj.bind(engine, plan);
  gen.bind(engine, net);
  net.bind(engine);
  // Served cell: expose the engine and injector live (POST /control can
  // fire one-shot faults into this run at step boundaries).
  if (ctx.serve_bind) {
    exp::ServeHooks hooks;
    hooks.engine = &engine;
    hooks.injector = &inj;
    ctx.serve_bind(hooks);
  }

  // Windowed delivery: the goal signal the recovery detection runs over.
  std::vector<double> window_delivery;
  double goal_sum = 0.0;
  for (double horizon = kCpnWindow; horizon <= kCpnHorizon;
       horizon += kCpnWindow) {
    engine.run_until(horizon);
    const auto s = net.harvest();
    window_delivery.push_back(s.delivery_rate());
    goal_sum += s.delivery_rate();
  }

  // Pre-fault baseline over windows fully before the fault onset.
  double base_sum = 0.0;
  std::size_t base_n = 0;
  for (std::size_t w = 0; w < window_delivery.size(); ++w) {
    if ((static_cast<double>(w) + 1.0) * kCpnWindow <= kFaultStart) {
      base_sum += window_delivery[w];
      ++base_n;
    }
  }
  const double baseline = base_n ? base_sum / static_cast<double>(base_n) : 1.0;

  // Time-to-recovery: first window after the last fault onset whose
  // delivery regains kRecoverFrac of the baseline. Censored runs report
  // the remaining horizon and recovered = 0.
  const double last_onset =
      inj.injected() > 0 ? inj.last_onset() : kFaultStart;
  double recovery_s = kCpnHorizon - last_onset;
  double recovered = 0.0;
  for (std::size_t w = 0; w < window_delivery.size(); ++w) {
    const double w_end = (static_cast<double>(w) + 1.0) * kCpnWindow;
    if (w_end <= last_onset) continue;
    if (window_delivery[w] >= kRecoverFrac * baseline) {
      recovery_s = w_end - last_onset;
      recovered = 1.0;
      break;
    }
  }

  exp::Metrics m;
  m.emplace_back("goal_attain",
                 goal_sum / static_cast<double>(window_delivery.size()));
  m.emplace_back("pre_fault_delivery", baseline);
  m.emplace_back("recovered", recovered);
  m.emplace_back("recovery_s", recovery_s);
  m.emplace_back("faults", static_cast<double>(inj.injected()));
  return {std::move(m)};
}

// -- e13.multicore: transient core failures + DVFS caps, degradation -------

constexpr double kMcEpoch = 0.5;
constexpr double kMcHorizon = 120.0;

fault::FaultPlan mc_plan(const std::string& spec, std::uint64_t seed) {
  fault::FaultPlan plan =
      spec.empty()
          ? fault::FaultPlan::parse(
                "core-fail:rate=0.08,dur=8,burst=2,start=30,end=90;"
                "freq-cap:rate=0.03,dur=12,mag=0,start=30,end=90")
          : fault::FaultPlan::parse(spec);
  if (plan.seed == 0) plan.seed = seed;
  return plan;
}

exp::TaskOutput run_multicore(multicore::Manager::Variant variant,
                              const std::string& plan_spec,
                              const exp::TaskContext& ctx) {
  const std::uint64_t seed = ctx.seed;
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 2),
                               seed);
  platform.set_workload(30.0, 0.4, 0.6);

  multicore::Manager::Params mp;
  mp.variant = variant;
  mp.seed = seed;
  mp.epoch_s = kMcEpoch;
  if (ctx.telemetry != nullptr) mp.telemetry = ctx.telemetry;
  if (ctx.tracer != nullptr) mp.tracer = ctx.tracer;
  multicore::Manager mgr(platform, mp);

  sim::Engine engine;
  mgr.bind(engine, kMcEpoch);

  fault::Injector inj;
  fault::bind_platform(inj, platform);
  if (ctx.telemetry != nullptr) inj.set_telemetry(ctx.telemetry);
  const fault::FaultPlan plan = mc_plan(plan_spec, seed);
  inj.bind(engine, plan);

  // The self-aware variant watches the injector through its KB and sheds
  // awareness levels under fault pressure (deterministic trigger: the
  // fault.active counter, never wall-clock).
  core::AgentRuntime rt(engine);
  std::unique_ptr<core::DegradationPolicy> policy;
  if (variant == multicore::Manager::Variant::SelfAware) {
    fault::feed_agent(inj, mgr.agent());
    core::DegradationPolicy::Params dp;
    dp.fault_active_breach = 2.0;
    dp.breach_updates = 2;
    dp.recover_updates = 4;
    policy = std::make_unique<core::DegradationPolicy>(mgr.agent(), dp);
    rt.schedule_degradation(*policy, kMcEpoch);
  }

  // Served cell: /status reports this agent's active levels and ladder
  // position, /control can inject extra faults mid-run.
  if (ctx.serve_bind) {
    exp::ServeHooks hooks;
    hooks.engine = &engine;
    hooks.agents = {&mgr.agent()};
    if (policy) hooks.ladders = {policy.get()};
    hooks.injector = &inj;
    ctx.serve_bind(hooks);
  }

  engine.run_until(kMcHorizon);

  exp::Metrics m;
  m.emplace_back("goal_attain", mgr.utility().mean());
  m.emplace_back("throughput", mgr.throughput().mean());
  m.emplace_back("faults", static_cast<double>(inj.injected()));
  m.emplace_back("degraded_dwell_s",
                 policy ? policy->degraded_dwell() : 0.0);
  m.emplace_back("degradations",
                 policy ? static_cast<double>(policy->degradations()) : 0.0);
  m.emplace_back("recoveries",
                 policy ? static_cast<double>(policy->recoveries()) : 0.0);

  std::string note;
  if (policy != nullptr) {
    // Surface the most recent degradation/recovery explanation — the
    // transition-rendering path of Explanation::render().
    const auto all = mgr.agent().explainer().all();
    for (auto it = all.rbegin(); it != all.rend(); ++it) {
      if (!it->from_mode.empty()) {
        note = it->render();
        break;
      }
    }
  }
  return {std::move(m), std::move(note)};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e13_faults", argc, argv);
  const std::string plan_spec = h.options().fault_plan;
  std::cout << "E13: deterministic fault injection — recovery and graceful "
               "degradation.\nGrid 1: permanent link losses vs routing "
               "self-awareness (CPN). Grid 2:\ntransient core failures + "
               "DVFS caps vs a degradation-aware manager (multicore).\n"
            << h.seeds_for(kSeeds).size() << " seeds";
  if (!plan_spec.empty()) std::cout << "; fault plan: " << plan_spec;
  std::cout << ".\n\n";

  exp::Grid g1;
  g1.name = "e13.cpn";
  g1.variants = {"static", "self-aware (q-routing)"};
  g1.seeds = kSeeds;
  g1.task = [&plan_spec](const exp::TaskContext& ctx) {
    return run_cpn(ctx.variant == 0 ? cpn::PacketNetwork::Router::Static
                                    : cpn::PacketNetwork::Router::QRouting,
                   plan_spec, ctx);
  };
  const auto r1 = h.run(std::move(g1));

  sim::Table t1("E13.1  permanent link loss: delivery recovery (CPN)",
                {"router", "goal_attain", "pre_fault", "recovered",
                 "recovery_s", "faults"});
  for (std::size_t v = 0; v < r1.variants.size(); ++v) {
    t1.add_row({r1.variants[v], r1.mean(v, "goal_attain"),
                r1.mean(v, "pre_fault_delivery"), r1.mean(v, "recovered"),
                r1.mean(v, "recovery_s"), r1.mean(v, "faults")});
  }
  t1.print(std::cout);

  exp::Grid g2;
  g2.name = "e13.multicore";
  g2.variants = {"reactive", "self-aware"};
  g2.seeds = kSeeds;
  g2.task = [&plan_spec](const exp::TaskContext& ctx) {
    return run_multicore(ctx.variant == 0
                             ? multicore::Manager::Variant::Reactive
                             : multicore::Manager::Variant::SelfAware,
                         plan_spec, ctx);
  };
  const auto r2 = h.run(std::move(g2));

  sim::Table t2("E13.2  core failures + DVFS caps: graceful degradation",
                {"manager", "goal_attain", "throughput", "faults",
                 "dwell_s", "degr", "recov"});
  for (std::size_t v = 0; v < r2.variants.size(); ++v) {
    t2.add_row({r2.variants[v], r2.mean(v, "goal_attain"),
                r2.mean(v, "throughput"), r2.mean(v, "faults"),
                r2.mean(v, "degraded_dwell_s"), r2.mean(v, "degradations"),
                r2.mean(v, "recoveries")});
  }
  t2.print(std::cout);
  if (!r2.note(1).empty()) {
    std::cout << "\nSample degradation explanation: " << r2.note(1) << "\n";
  }
  return h.finish();
}
