// Console/CSV table reporting used by the benchmark harness.
//
// Every experiment binary prints its results through a Table so that the
// rows recorded in EXPERIMENTS.md are regenerated verbatim by re-running
// the bench target.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace sa::sim {

/// A table cell: text, integer, or floating point (printed with
/// per-column precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned text table with optional CSV export.
class Table {
 public:
  /// `title` is printed as a header banner; `columns` are the header row.
  Table(std::string title, std::vector<std::string> columns);

  /// Sets the number of digits after the decimal point for double cells in
  /// column `col` (default 3).
  Table& precision(std::size_t col, int digits);

  /// Appends a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Renders the aligned table to `os`.
  void print(std::ostream& os) const;
  /// Renders as CSV (header + rows).
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c, std::size_t col) const;
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace sa::sim
