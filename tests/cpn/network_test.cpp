#include "cpn/network.hpp"

#include <gtest/gtest.h>

#include "sim/telemetry.hpp"

namespace sa::cpn {
namespace {

PacketNetwork::Params params_for(PacketNetwork::Router r,
                                 std::uint64_t seed = 3) {
  PacketNetwork::Params p;
  p.router = r;
  p.seed = seed;
  return p;
}

TEST(Topology, GridHasExpectedStructure) {
  const auto t = Topology::grid(3, 4, 0, 1);
  EXPECT_EQ(t.nodes(), 12u);
  // 3*3 horizontal + 2*4 vertical edges.
  EXPECT_EQ(t.links().size(), 17u);
  // Corner has 2 neighbours, interior has 4.
  EXPECT_EQ(t.neighbours(0).size(), 2u);
  EXPECT_EQ(t.neighbours(5).size(), 4u);
}

TEST(Topology, ShortcutsAddChords) {
  const auto plain = Topology::grid(3, 4, 0, 1);
  const auto chorded = Topology::grid(3, 4, 3, 1);
  EXPECT_EQ(chorded.links().size(), plain.links().size() + 3);
}

TEST(Topology, DistancesAreManhattanOnPlainGrid) {
  const auto t = Topology::grid(3, 4, 0, 1);
  EXPECT_DOUBLE_EQ(t.distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 3), 3.0);   // along the top row
  EXPECT_DOUBLE_EQ(t.distance(0, 11), 5.0);  // corner to corner
}

TEST(Topology, NextHopWalksShortestPath) {
  const auto t = Topology::grid(3, 4, 0, 1);
  std::size_t at = 0;
  const std::size_t dst = 11;
  double hops = 0.0;
  while (at != dst) {
    at = t.next_hop(at, dst);
    hops += 1.0;
    ASSERT_LE(hops, 12.0) << "next_hop is cycling";
  }
  EXPECT_DOUBLE_EQ(hops, t.distance(0, dst));
}

TEST(Topology, LinkBetweenFindsBothDirections) {
  const auto t = Topology::grid(2, 2, 0, 1);
  const auto l1 = t.link_between(0, 1);
  const auto l2 = t.link_between(1, 0);
  EXPECT_EQ(l1, l2);
  EXPECT_NE(l1, static_cast<std::size_t>(-1));
  EXPECT_EQ(t.link_between(0, 3), static_cast<std::size_t>(-1));
}

class RouterTest : public ::testing::TestWithParam<PacketNetwork::Router> {};

TEST_P(RouterTest, DeliversPacketsOnQuietNetwork) {
  PacketNetwork net(Topology::grid(4, 6, 2, 7), params_for(GetParam()));
  sim::Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    if (t % 4 == 0) net.inject(0, 23, true);
    net.step();
  }
  const auto s = net.harvest();
  EXPECT_GT(s.delivered, 400u);
  EXPECT_GT(s.delivery_rate(), 0.95);
}

TEST_P(RouterTest, LatencyAtLeastShortestPath) {
  const auto topo = Topology::grid(4, 6, 0, 7);
  const double sp = topo.distance(0, 23);
  PacketNetwork net(topo, params_for(GetParam()));
  for (int t = 0; t < 1500; ++t) {
    if (t % 10 == 0) net.inject(0, 23, true);
    net.step();
  }
  const auto s = net.harvest();
  ASSERT_GT(s.delivered, 0u);
  EXPECT_GE(s.mean_latency, sp);
}

INSTANTIATE_TEST_SUITE_P(BothRouters, RouterTest,
                         ::testing::Values(PacketNetwork::Router::Static,
                                           PacketNetwork::Router::QRouting),
                         [](const auto& info) {
                           return info.param ==
                                          PacketNetwork::Router::Static
                                      ? "static"
                                      : "qrouting";
                         });

TEST(PacketNetwork, StaticFollowsShortestPathExactly) {
  const auto topo = Topology::grid(4, 6, 0, 7);
  PacketNetwork net(topo, params_for(PacketNetwork::Router::Static));
  for (int t = 0; t < 600; ++t) {
    if (t % 20 == 0) net.inject(2, 21, true);
    net.step();
  }
  const auto s = net.harvest();
  ASSERT_GT(s.delivered, 0u);
  EXPECT_NEAR(s.mean_hops, topo.distance(2, 21), 1e-9);
}

TEST(PacketNetwork, SelfInjectionIsIgnored) {
  PacketNetwork net(Topology::grid(2, 2, 0, 1),
                    params_for(PacketNetwork::Router::Static));
  net.inject(1, 1, true);
  net.run(10);
  const auto s = net.harvest();
  EXPECT_EQ(s.injected, 0u);
  EXPECT_EQ(s.delivered, 0u);
}

TEST(PacketNetwork, CongestionInflatesLatency) {
  auto quiet = PacketNetwork(Topology::grid(4, 6, 0, 7),
                             params_for(PacketNetwork::Router::Static));
  auto busy = PacketNetwork(Topology::grid(4, 6, 0, 7),
                            params_for(PacketNetwork::Router::Static));
  for (int t = 0; t < 1500; ++t) {
    if (t % 10 == 0) quiet.inject(0, 23, true);
    if (t % 10 == 0) busy.inject(0, 23, true);
    // Flood traffic sharing the same shortest-path corridor.
    for (int i = 0; i < 4; ++i) busy.inject(0, 23, false);
    quiet.step();
    busy.step();
  }
  EXPECT_GT(busy.harvest().mean_latency, quiet.harvest().mean_latency);
}

TEST(PacketNetwork, TtlDropsLoopingPackets) {
  PacketNetwork::Params p = params_for(PacketNetwork::Router::QRouting);
  p.ttl_hops = 4;
  p.epsilon = 1.0;  // pure random walk: guaranteed to wander past TTL
  PacketNetwork net(Topology::grid(4, 6, 0, 7), p);
  for (int t = 0; t < 1000; ++t) {
    if (t % 5 == 0) net.inject(0, 23, true);  // 10+ hops away
    net.step();
  }
  const auto s = net.harvest();
  EXPECT_GT(s.dropped, 0u);
}

TEST(PacketNetwork, HarvestResetsCounters) {
  PacketNetwork net(Topology::grid(2, 3, 0, 1),
                    params_for(PacketNetwork::Router::Static));
  for (int t = 0; t < 100; ++t) {
    net.inject(0, 5, true);
    net.step();
  }
  net.harvest();
  const auto s = net.harvest();
  EXPECT_EQ(s.injected, 0u);
  EXPECT_EQ(s.delivered, 0u);
}

TEST(PacketNetwork, MeanLoadTracksInFlightPackets) {
  PacketNetwork net(Topology::grid(2, 3, 0, 1),
                    params_for(PacketNetwork::Router::Static));
  EXPECT_DOUBLE_EQ(net.mean_load(), 0.0);
  for (int i = 0; i < 20; ++i) net.inject(0, 5, true);
  EXPECT_GT(net.mean_load(), 0.0);
  EXPECT_EQ(net.in_flight_total(), 20u);
}

TEST(PacketNetwork, BoostExplorationRaisesThenDecays) {
  PacketNetwork::Params p = params_for(PacketNetwork::Router::QRouting);
  p.epsilon = 0.01;
  PacketNetwork net(Topology::grid(2, 3, 0, 1), p);
  net.boost_exploration(0.5, 0.9);
  EXPECT_DOUBLE_EQ(net.epsilon(), 0.5);
  for (int i = 0; i < 200; ++i) net.step();
  EXPECT_NEAR(net.epsilon(), 0.01, 1e-6);  // decayed back to the floor
}

#ifndef SA_TELEMETRY_OFF
TEST(PacketNetwork, TelemetryRecordsDeliveriesAndDrops) {
  sim::TelemetryBus bus;
  PacketNetwork net(Topology::grid(2, 3, 0, 1),
                    params_for(PacketNetwork::Router::Static));
  net.set_telemetry(&bus);
  for (int t = 0; t < 200; ++t) {
    net.inject(0, 5, true);
    net.step();
  }
  const auto s = net.harvest();
  // Every legit delivery shows up as an observation; TTL/buffer losses as
  // failures — together they account for all terminated packets.
  EXPECT_EQ(bus.count(sim::TelemetryBus::kObservation),
            static_cast<std::size_t>(s.delivered));
  EXPECT_GT(bus.count(sim::TelemetryBus::kObservation), 0u);
}
#endif  // SA_TELEMETRY_OFF

TEST(PacketNetwork, QRoutingRoutesAroundCongestion) {
  // 2-row grid: two disjoint-ish corridors between the far corners. Flood
  // the top row; the learner should shift legit traffic and beat Static.
  const auto topo = Topology::grid(2, 8, 0, 9);
  auto run = [&](PacketNetwork::Router r) {
    PacketNetwork net(topo, params_for(r, 9));
    for (int t = 0; t < 6000; ++t) {
      if (t % 8 == 0) net.inject(0, 7, true);  // along the top row
      // Persistent flood on the same corridor.
      net.inject(1, 6, false);
      net.step();
    }
    return net.harvest();
  };
  const auto s_static = run(PacketNetwork::Router::Static);
  const auto s_q = run(PacketNetwork::Router::QRouting);
  ASSERT_GT(s_q.delivered, 100u);
  EXPECT_LT(s_q.mean_latency, s_static.mean_latency);
}

}  // namespace
}  // namespace sa::cpn
