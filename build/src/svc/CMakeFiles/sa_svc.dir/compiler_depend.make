# Empty compiler generated dependencies file for sa_svc.
# This may be replaced when dependencies are built.
