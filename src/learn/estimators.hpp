// Point estimators for scalar signals.
//
// These are the simplest "model building" blocks used by awareness
// processes: exponentially weighted moving averages for recency-weighted
// estimates, and window estimators that also expose dispersion so callers
// can reason about their own confidence (a prerequisite for
// meta-self-awareness: a model that knows how good it is).
#pragma once

#include <cmath>
#include <cstddef>

#include "sim/stats.hpp"

namespace sa::learn {

/// Exponentially weighted moving average with bias correction for the
/// warm-up phase (as in Adam-style estimators).
class Ewma {
 public:
  /// `alpha` in (0,1]: weight of the newest sample. Larger = more reactive.
  explicit Ewma(double alpha = 0.1) : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
    weight_ = alpha_ + (1.0 - alpha_) * weight_;
    ++n_;
  }
  /// Bias-corrected estimate; 0 before any sample.
  [[nodiscard]] double value() const noexcept {
    return weight_ > 0.0 ? value_ / weight_ : 0.0;
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  void reset() noexcept {
    value_ = 0.0;
    weight_ = 0.0;
    n_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  double weight_ = 0.0;
  std::size_t n_ = 0;
};

/// EWMA of value and of squared deviation — gives a recency-weighted
/// mean *and* an uncertainty estimate.
class EwmaVar {
 public:
  explicit EwmaVar(double alpha = 0.1) : mean_(alpha), var_(alpha) {}

  void add(double x) noexcept {
    const double prev = mean_.value();
    mean_.add(x);
    const double d = x - (mean_.count() > 1 ? prev : mean_.value());
    var_.add(d * d);
  }
  [[nodiscard]] double mean() const noexcept { return mean_.value(); }
  [[nodiscard]] double variance() const noexcept { return var_.value(); }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(std::max(0.0, variance()));
  }
  [[nodiscard]] std::size_t count() const noexcept { return mean_.count(); }
  void reset() noexcept {
    mean_.reset();
    var_.reset();
  }

 private:
  Ewma mean_;
  Ewma var_;
};

/// Window estimator: mean over the last N samples plus a normalised
/// confidence in [0,1] that grows with fill level and shrinks with
/// relative dispersion.
class WindowEstimator {
 public:
  explicit WindowEstimator(std::size_t window = 32) : win_(window) {}

  void add(double x) { win_.add(x); }
  [[nodiscard]] double value() const noexcept { return win_.mean(); }
  [[nodiscard]] double stddev() const noexcept { return win_.stddev(); }
  [[nodiscard]] std::size_t count() const noexcept { return win_.size(); }

  /// Heuristic confidence: fill-fraction damped by the coefficient of
  /// variation. Returns 0 with no data, approaches 1 for a full window of
  /// near-constant samples.
  [[nodiscard]] double confidence() const noexcept {
    if (win_.size() == 0) return 0.0;
    const double fill = static_cast<double>(win_.size()) /
                        static_cast<double>(win_.capacity());
    const double m = std::fabs(win_.mean());
    const double cv = m > 1e-12 ? win_.stddev() / m : win_.stddev();
    return fill / (1.0 + cv);
  }
  void reset() { win_.clear(); }

 private:
  sim::SlidingWindow win_;
};

}  // namespace sa::learn
