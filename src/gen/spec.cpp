#include "gen/spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sa::gen {

namespace {

double parse_number(std::string_view text, std::string_view what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: bad number '" + std::string(text) +
                                "' for " + std::string(what));
  }
}

std::size_t parse_count(std::string_view text, std::string_view what) {
  std::size_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("scenario: bad count '" + std::string(text) +
                                "' for " + std::string(what));
  }
  return v;
}

/// Seeds are full-range 64-bit: routing them through a double would
/// silently round above 2^53 and break seed round-tripping.
std::uint64_t parse_seed(std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("scenario: bad number '" + std::string(text) +
                                "' for seed");
  }
  return v;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

std::string format(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

[[noreturn]] void bad_key(std::string_view section, std::string_view key) {
  throw std::invalid_argument("scenario: unknown key '" + std::string(key) +
                              "' in section '" + std::string(section) + "'");
}

/// Applies "key=value,..." pairs to `section` via `apply(key, value)`;
/// `apply` throws bad_key for keys it does not know.
template <typename Apply>
void parse_kvs(std::string_view body, Apply&& apply) {
  for (std::string_view kv : split(body, ',')) {
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("scenario: expected key=value, got '" +
                                  std::string(kv) + "'");
    }
    apply(kv.substr(0, eq), kv.substr(eq + 1));
  }
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("scenario: ") + what);
}

/// Appends ",key=value" for every non-default field `emit` reports.
class SectionWriter {
 public:
  SectionWriter(std::string& out, std::string_view name) : out_(out) {
    if (!out_.empty()) out_ += ';';
    out_ += name;
  }
  void key(std::string_view k, std::string_view v) {
    out_ += first_ ? ':' : ',';
    first_ = false;
    out_ += k;
    out_ += '=';
    out_ += v;
  }
  void num(std::string_view k, double v, double dflt) {
    if (v != dflt) key(k, format(v));
  }
  void count(std::string_view k, std::size_t v, std::size_t dflt) {
    if (v != dflt) key(k, std::to_string(v));
  }

 private:
  std::string& out_;
  bool first_ = true;
};

}  // namespace

ScenarioSpec ScenarioSpec::parse(std::string_view spec) {
  ScenarioSpec out;
  for (std::string_view item : split(spec, ';')) {
    if (item.empty()) continue;
    if (item.rfind("seed=", 0) == 0) {
      out.seed = parse_seed(item.substr(5));
      continue;
    }
    const std::size_t colon = item.find(':');
    const std::string_view name = item.substr(0, colon);
    const std::string_view body =
        colon == std::string_view::npos ? std::string_view{}
                                        : item.substr(colon + 1);
    if (name == "world") {
      parse_kvs(body, [&](std::string_view k, std::string_view v) {
        if (k == "horizon") {
          out.world.horizon = parse_number(v, k);
        } else if (k == "exchange") {
          out.world.exchange_s = parse_number(v, k);
        } else if (k == "step") {
          out.world.step_s = parse_number(v, k);
        } else {
          bad_key(name, k);
        }
      });
    } else if (name == "multicore") {
      out.multicore.enabled = true;
      parse_kvs(body, [&](std::string_view k, std::string_view v) {
        if (k == "nodes") {
          out.multicore.nodes = parse_count(v, k);
        } else if (k == "big") {
          out.multicore.big = parse_count(v, k);
        } else if (k == "little") {
          out.multicore.little = parse_count(v, k);
        } else if (k == "epoch") {
          out.multicore.epoch_s = parse_number(v, k);
        } else if (k == "rate") {
          out.multicore.rate = parse_number(v, k);
        } else if (k == "work") {
          out.multicore.work = parse_number(v, k);
        } else if (k == "deadline") {
          out.multicore.deadline = parse_number(v, k);
        } else if (k == "jitter") {
          out.multicore.jitter = parse_number(v, k);
        } else {
          bad_key(name, k);
        }
      });
    } else if (name == "cameras") {
      out.cameras.enabled = true;
      parse_kvs(body, [&](std::string_view k, std::string_view v) {
        if (k == "count") {
          out.cameras.count = parse_count(v, k);
        } else if (k == "objects") {
          out.cameras.objects = parse_count(v, k);
        } else if (k == "clusters") {
          out.cameras.clusters = parse_count(v, k);
        } else if (k == "districts") {
          out.cameras.districts = parse_count(v, k);
        } else if (k == "epoch") {
          out.cameras.epoch_steps = parse_count(v, k);
        } else if (k == "speed") {
          out.cameras.speed = parse_number(v, k);
        } else {
          bad_key(name, k);
        }
      });
    } else if (name == "cloud") {
      out.cloud.enabled = true;
      parse_kvs(body, [&](std::string_view k, std::string_view v) {
        if (k == "nodes") {
          out.cloud.nodes = parse_count(v, k);
        } else if (k == "epoch") {
          out.cloud.epoch_s = parse_number(v, k);
        } else if (k == "demand") {
          out.cloud.demand = parse_number(v, k);
        } else if (k == "amp") {
          out.cloud.amp = parse_number(v, k);
        } else {
          bad_key(name, k);
        }
      });
    } else if (name == "cpn") {
      out.cpn.enabled = true;
      parse_kvs(body, [&](std::string_view k, std::string_view v) {
        if (k == "rows") {
          out.cpn.rows = parse_count(v, k);
        } else if (k == "cols") {
          out.cpn.cols = parse_count(v, k);
        } else if (k == "shortcuts") {
          out.cpn.shortcuts = parse_count(v, k);
        } else if (k == "flows") {
          out.cpn.flows = parse_count(v, k);
        } else if (k == "grids") {
          out.cpn.grids = parse_count(v, k);
        } else if (k == "rate") {
          out.cpn.rate = parse_number(v, k);
        } else {
          bad_key(name, k);
        }
      });
    } else if (name == "faults") {
      out.faults.enabled = true;
      parse_kvs(body, [&](std::string_view k, std::string_view v) {
        if (k == "pressure") {
          out.faults.pressure = parse_number(v, k);
        } else if (k == "dur") {
          out.faults.dur = parse_number(v, k);
        } else if (k == "start") {
          out.faults.start = parse_number(v, k);
        } else if (k == "end") {
          out.faults.end = parse_number(v, k);
        } else {
          bad_key(name, k);
        }
      });
    } else {
      throw std::invalid_argument("scenario: unknown section '" +
                                  std::string(name) + "'");
    }
  }

  require(out.world.horizon > 0.0, "world horizon must be > 0");
  require(out.world.exchange_s >= 0.0, "world exchange must be >= 0");
  require(out.world.step_s > 0.0, "world step must be > 0");
  if (out.multicore.enabled) {
    require(out.multicore.nodes >= 1, "multicore nodes must be >= 1");
    require(out.multicore.big + out.multicore.little >= 1,
            "multicore needs at least one core");
    require(out.multicore.epoch_s > 0.0, "multicore epoch must be > 0");
    require(out.multicore.rate > 0.0, "multicore rate must be > 0");
    require(out.multicore.work > 0.0, "multicore work must be > 0");
    require(out.multicore.deadline > 0.0, "multicore deadline must be > 0");
    require(out.multicore.jitter >= 0.0 && out.multicore.jitter < 1.0,
            "multicore jitter must be in [0, 1)");
  }
  if (out.cameras.enabled) {
    require(out.cameras.count >= 1, "cameras count must be >= 1");
    require(out.cameras.objects >= 1, "cameras objects must be >= 1");
    require(out.cameras.districts >= 1, "cameras districts must be >= 1");
    require(out.cameras.epoch_steps >= 1, "cameras epoch must be >= 1");
    require(out.cameras.speed > 0.0, "cameras speed must be > 0");
  }
  if (out.cloud.enabled) {
    require(out.cloud.nodes >= 1, "cloud nodes must be >= 1");
    require(out.cloud.epoch_s > 0.0, "cloud epoch must be > 0");
    require(out.cloud.demand >= 0.0, "cloud demand must be >= 0");
    require(out.cloud.amp >= 0.0 && out.cloud.amp <= 1.0,
            "cloud amp must be in [0, 1]");
  }
  if (out.cpn.enabled) {
    require(out.cpn.rows >= 1 && out.cpn.cols >= 1 &&
                out.cpn.rows * out.cpn.cols >= 2,
            "cpn grid needs at least 2 nodes");
    require(out.cpn.flows >= 1, "cpn flows must be >= 1");
    require(out.cpn.grids >= 1, "cpn grids must be >= 1");
    require(out.cpn.rate > 0.0, "cpn rate must be > 0");
  }
  if (out.faults.enabled) {
    require(out.faults.pressure >= 0.0, "faults pressure must be >= 0");
    require(out.faults.start >= 0.0, "faults start must be >= 0");
    require(out.faults.end > out.faults.start,
            "faults end must be > start");
  }
  return out;
}

std::string ScenarioSpec::to_string() const {
  const ScenarioSpec dflt;
  std::string out;
  if (seed != 0) out += "seed=" + std::to_string(seed);
  if (world != dflt.world) {
    SectionWriter w(out, "world");
    w.num("horizon", world.horizon, dflt.world.horizon);
    w.num("exchange", world.exchange_s, dflt.world.exchange_s);
    w.num("step", world.step_s, dflt.world.step_s);
  }
  if (multicore.enabled) {
    SectionWriter w(out, "multicore");
    w.count("nodes", multicore.nodes, dflt.multicore.nodes);
    w.count("big", multicore.big, dflt.multicore.big);
    w.count("little", multicore.little, dflt.multicore.little);
    w.num("epoch", multicore.epoch_s, dflt.multicore.epoch_s);
    w.num("rate", multicore.rate, dflt.multicore.rate);
    w.num("work", multicore.work, dflt.multicore.work);
    w.num("deadline", multicore.deadline, dflt.multicore.deadline);
    w.num("jitter", multicore.jitter, dflt.multicore.jitter);
  }
  if (cameras.enabled) {
    SectionWriter w(out, "cameras");
    w.count("count", cameras.count, dflt.cameras.count);
    w.count("objects", cameras.objects, dflt.cameras.objects);
    w.count("clusters", cameras.clusters, dflt.cameras.clusters);
    w.count("districts", cameras.districts, dflt.cameras.districts);
    w.count("epoch", cameras.epoch_steps, dflt.cameras.epoch_steps);
    w.num("speed", cameras.speed, dflt.cameras.speed);
  }
  if (cloud.enabled) {
    SectionWriter w(out, "cloud");
    w.count("nodes", cloud.nodes, dflt.cloud.nodes);
    w.num("epoch", cloud.epoch_s, dflt.cloud.epoch_s);
    w.num("demand", cloud.demand, dflt.cloud.demand);
    w.num("amp", cloud.amp, dflt.cloud.amp);
  }
  if (cpn.enabled) {
    SectionWriter w(out, "cpn");
    w.count("rows", cpn.rows, dflt.cpn.rows);
    w.count("cols", cpn.cols, dflt.cpn.cols);
    w.count("shortcuts", cpn.shortcuts, dflt.cpn.shortcuts);
    w.count("flows", cpn.flows, dflt.cpn.flows);
    w.count("grids", cpn.grids, dflt.cpn.grids);
    w.num("rate", cpn.rate, dflt.cpn.rate);
  }
  if (faults.enabled) {
    SectionWriter w(out, "faults");
    w.num("pressure", faults.pressure, dflt.faults.pressure);
    w.num("dur", faults.dur, dflt.faults.dur);
    w.num("start", faults.start, dflt.faults.start);
    if (std::isfinite(faults.end)) w.key("end", format(faults.end));
  }
  return out;
}

const char* ScenarioSpec::city_spec() {
  return "multicore:nodes=4;cameras:count=16,objects=32,clusters=3;"
         "cloud:nodes=32;cpn:rows=4,cols=6,shortcuts=6;faults";
}

ScenarioSpec ScenarioSpec::city() { return parse(city_spec()); }

sim::Rng ScenarioSpec::section_stream(std::uint64_t scenario_seed,
                                      std::string_view section) {
  // splitmix64-finalised per-section stream: changing the scenario seed
  // re-rolls every section; two sections never share a stream.
  return sim::Rng(sim::mix64(scenario_seed ^ 0x5CE2'A810'57AE'0001ULL))
      .fork(section);
}

std::vector<svc::CameraSpec> ScenarioSpec::expand_cameras(
    std::uint64_t run_seed, std::size_t district) const {
  std::vector<svc::CameraSpec> specs;
  if (!cameras.enabled) return specs;
  sim::Rng rng = section_stream(scenario_seed(run_seed), "cameras");
  // District 0 consumes the stream exactly as a districts=1 section did;
  // later districts fork by index (fork never advances the parent), so
  // every district's layout is pinned independently of `districts`.
  if (district != 0) rng = rng.fork(district);
  specs.reserve(cameras.count);
  // Dense 4-camera clusters first (the clustered_layout pattern — heavy
  // FoV overlap so Smooth/Passive strategies can pay off), then sparse
  // solo cameras with smaller FoVs until `count` is reached.
  constexpr std::size_t kClusterSize = 4;
  for (std::size_t c = 0; c < clusters_that_fit(); ++c) {
    const svc::Vec2 centre{rng.uniform(0.25, 0.75), rng.uniform(0.25, 0.75)};
    const double spread = rng.uniform(0.05, 0.09);
    for (std::size_t i = 0;
         i < kClusterSize && specs.size() < cameras.count; ++i) {
      const double dx = (i % 2 == 0 ? -spread : spread);
      const double dy = (i / 2 == 0 ? -spread : spread);
      specs.push_back({{centre.x + dx, centre.y + dy},
                       rng.uniform(0.20, 0.26),
                       6});
    }
  }
  while (specs.size() < cameras.count) {
    specs.push_back({{rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95)},
                     rng.uniform(0.13, 0.18),
                     4});
  }
  return specs;
}

std::size_t ScenarioSpec::clusters_that_fit() const {
  // Never let cluster placement consume more cameras than the count
  // allows; partial final clusters are fine.
  return std::min(cameras.clusters, (cameras.count + 3) / 4);
}

std::vector<EdgeWorkload> ScenarioSpec::expand_workloads(
    std::uint64_t run_seed) const {
  std::vector<EdgeWorkload> out;
  if (!multicore.enabled) return out;
  sim::Rng rng = section_stream(scenario_seed(run_seed), "multicore");
  out.reserve(multicore.nodes);
  const double j = multicore.jitter;
  for (std::size_t n = 0; n < multicore.nodes; ++n) {
    EdgeWorkload w;
    w.rate = multicore.rate * rng.uniform(1.0 - j, 1.0 + j);
    w.work = multicore.work * rng.uniform(1.0 - j, 1.0 + j);
    w.deadline = multicore.deadline * rng.uniform(1.0 - 0.5 * j, 1.0 + j);
    out.push_back(w);
  }
  return out;
}

fault::FaultPlan ScenarioSpec::expand_faults(std::uint64_t run_seed) const {
  fault::FaultPlan plan;
  if (!faults.enabled) return plan;
  sim::Rng rng = section_stream(scenario_seed(run_seed), "faults");
  // The plan seed pins the injector's onset schedules; keep it nonzero so
  // downstream "0 = derive" conventions can't re-key it.
  plan.seed = rng() | 1ULL;

  // One randomized process per fault kind applicable to an enabled
  // substrate. All draws happen unconditionally on `pressure` and the
  // rate scaling comes last, so scaling pressure perturbs rates only —
  // never which draws a process sees. Base rates are per sim-second and
  // sized so pressure=1 yields a handful of events per process over the
  // default 600 s horizon.
  struct Proto {
    bool enabled;
    fault::FaultKind kind;
    double rate;     ///< base onsets/s at pressure 1
    double dur;      ///< duration scale relative to faults.dur
    double mag_lo;   ///< magnitude draw range
    double mag_hi;
  };
  const Proto protos[] = {
      {multicore.enabled, fault::FaultKind::CoreFail, 0.010, 1.0, 1.0, 1.0},
      {multicore.enabled, fault::FaultKind::FreqCap, 0.008, 2.0, 0.4, 0.8},
      {cameras.enabled, fault::FaultKind::NodeCrash, 0.008, 1.0, 1.0, 1.0},
      {cameras.enabled, fault::FaultKind::SensorDropout, 0.012, 1.0, 1.0,
       1.0},
      {cameras.enabled, fault::FaultKind::SensorBlur, 0.012, 2.0, 0.3, 0.7},
      {cloud.enabled, fault::FaultKind::VmPreempt, 0.012, 1.5, 1.0, 1.0},
      {cloud.enabled, fault::FaultKind::LatencySpike, 0.008, 2.0, 1.5, 3.0},
      {cpn.enabled, fault::FaultKind::LinkLoss, 0.012, 1.5, 1.0, 1.0},
      {cpn.enabled, fault::FaultKind::LinkReorder, 0.008, 1.5, 2.0, 6.0},
      {cpn.enabled, fault::FaultKind::Partition, 0.003, 0.5, 1.0, 1.0},
      {world.exchange_s > 0.0, fault::FaultKind::ExchangeDrop, 0.004, 3.0,
       1.0, 1.0},
  };
  for (const Proto& proto : protos) {
    // Draw regardless of enablement so toggling one substrate never
    // reshuffles another's processes.
    const double rate_jit = rng.uniform(0.5, 1.5);
    const double dur_jit = rng.uniform(0.6, 1.4);
    const double mag = rng.uniform(proto.mag_lo, proto.mag_hi);
    const bool bursty = rng.chance(0.25);
    if (!proto.enabled) continue;
    fault::FaultProcess p;
    p.kind = proto.kind;
    p.rate = proto.rate * rate_jit * faults.pressure;
    if (p.rate <= 0.0) continue;  // pressure 0: guaranteed-empty plan
    p.duration_mean = faults.dur < 0.0
                          ? -1.0
                          : faults.dur * proto.dur * dur_jit;
    p.magnitude = mag;
    p.burstiness = bursty ? 2.0 : 1.0;
    p.start = faults.start;
    p.end = faults.end;
    plan.processes.push_back(p);
  }
  return plan;
}

}  // namespace sa::gen
