// Tests for the JSONL telemetry sink.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/telemetry_jsonl.hpp"

namespace sa::exp {
namespace {

using sim::TelemetryBus;

// All of these assert that events reach the sink, so they only apply when
// the telemetry hot path is compiled in.
#ifndef SA_TELEMETRY_OFF
TEST(JsonlSink, WritesOneCompactObjectPerEvent) {
  TelemetryBus bus;
  std::ostringstream os;
  JsonlSink sink(os, bus);
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("cpn.network");
  bus.record(12.5, TelemetryBus::kFailure, subj, 3.0, "ttl");
  bus.record(13.0, TelemetryBus::kObservation, subj, 7.25);
  EXPECT_EQ(sink.written(), 2u);
  EXPECT_EQ(os.str(),
            "{\"t\":12.5,\"category\":\"failure\",\"subject\":"
            "\"cpn.network\",\"value\":3.0,\"detail\":\"ttl\"}\n"
            "{\"t\":13.0,\"category\":\"observation\",\"subject\":"
            "\"cpn.network\",\"value\":7.25}\n");
}

TEST(JsonlSink, OutputIsDeterministicAcrossRuns) {
  auto run = [] {
    TelemetryBus bus;
    std::ostringstream os;
    JsonlSink sink(os, bus);
    bus.add_sink(&sink);
    const auto a = bus.intern_subject("a");
    const auto b = bus.intern_subject("b");
    for (int i = 0; i < 50; ++i) {
      bus.record(i * 0.1, TelemetryBus::kDecision, a, i, "act");
      bus.record(i * 0.1, TelemetryBus::kObservation, b, i * 1.5);
    }
    return os.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(JsonlSink, EscapesDetailStrings) {
  TelemetryBus bus;
  std::ostringstream os;
  JsonlSink sink(os, bus);
  bus.add_sink(&sink);
  const auto subj = bus.intern_subject("svc");
  bus.record(0.0, TelemetryBus::kDecision, subj, 0.0, "say \"hi\"\n");
  EXPECT_NE(os.str().find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(os.str().find("\\n"), std::string::npos);
}
#endif  // SA_TELEMETRY_OFF

}  // namespace
}  // namespace sa::exp
