# Empty compiler generated dependencies file for cpn_attack.
# This may be replaced when dependencies are built.
