#include "loadgen/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "serve/prometheus.hpp"  // format_value

namespace sa::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1).
double uniform01(std::uint64_t& rng) noexcept {
  return static_cast<double>(splitmix64(rng) >> 11) * 0x1.0p-53;
}

/// Sleeps ~`seconds`, waking early once `running` clears (checked every
/// 50 ms so stop() is never stuck behind a think pause).
void interruptible_sleep(double seconds, const std::atomic<bool>& running) {
  auto left = std::chrono::duration<double>(seconds);
  while (left.count() > 0 && running.load(std::memory_order_relaxed)) {
    const auto chunk =
        std::min<std::chrono::duration<double>>(left,
                                                std::chrono::milliseconds(50));
    std::this_thread::sleep_for(chunk);
    left -= chunk;
  }
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Connects with the pool's timeouts applied. SO_SNDTIMEO is set *before*
/// connect so a SYN lost in an overloaded accept queue fails over instead
/// of hanging a client thread past stop(); SO_RCVTIMEO is short (250 ms)
/// because readers loop on EAGAIN while checking the running flag.
int connect_to(const std::string& host, std::uint16_t port, long timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval stv{};
  stv.tv_sec = timeout_ms / 1000;
  stv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &stv, sizeof stv);
  timeval rtv{};
  rtv.tv_usec = 250 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rtv, sizeof rtv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    // A signal does not abort a TCP connect: on EINTR the handshake keeps
    // going in the background (connect() is never auto-restarted, even
    // under SA_RESTART), so wait for writability and read the final
    // status instead of tearing the socket down.
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    for (;;) {
      const int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) {  // poll error or connect timeout
        ::close(fd);
        return -1;
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

/// Minimal HTTP/1.1 response reader: status line + headers up to the blank
/// line, then exactly Content-Length body bytes (or to EOF without one).
/// Deliberately independent of serve::HttpParser so the load generator
/// does not validate the server with the server's own code. Returns false
/// on transport failure or deadline; `bytes` accumulates everything read.
bool read_response(int fd, const std::atomic<bool>& running, long timeout_ms,
                   int& status, std::uint64_t& bytes) {
  status = 0;
  std::string head;
  char buf[4096];
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t body_have = 0;
  std::size_t body_want = std::string::npos;  // npos = read to EOF
  bool in_body = false;
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          running.load(std::memory_order_relaxed) &&
          Clock::now() < deadline) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      // EOF: fine only if we were reading an unsized body.
      return in_body && body_want == std::string::npos;
    }
    bytes += static_cast<std::uint64_t>(n);
    if (in_body) {
      body_have += static_cast<std::size_t>(n);
    } else {
      head.append(buf, static_cast<std::size_t>(n));
      const std::size_t end = head.find("\r\n\r\n");
      if (end == std::string::npos) {
        if (head.size() > 64 * 1024) return false;  // runaway header
        continue;
      }
      if (head.compare(0, 9, "HTTP/1.1 ") == 0 && head.size() >= 12) {
        status = std::atoi(head.c_str() + 9);
      }
      const std::size_t cl = head.find("Content-Length: ");
      if (cl != std::string::npos && cl < end) {
        body_want = static_cast<std::size_t>(
            std::strtoul(head.c_str() + cl + 16, nullptr, 10));
      }
      body_have = head.size() - (end + 4);
      in_body = true;
    }
    if (body_want != std::string::npos && body_have >= body_want) {
      return true;
    }
  }
}

}  // namespace

void Report::merge(const Report& other) noexcept {
  for (std::size_t r = 0; r < routes.size(); ++r) {
    routes[r].requests += other.routes[r].requests;
    routes[r].errors += other.routes[r].errors;
    routes[r].latency.merge(other.routes[r].latency);
  }
  connects += other.connects;
  connect_failures += other.connect_failures;
  bytes_received += other.bytes_received;
}

std::string summary_json(const Report& report) {
  using serve::format_value;
  std::string out;
  out.reserve(1024);
  out += "{\"routes\":{";
  for (std::size_t r = 0; r < report.routes.size(); ++r) {
    const RouteReport& route = report.routes[r];
    if (r) out += ',';
    out += '"';
    out += serve::route_label(static_cast<serve::RouteClass>(r));
    out += "\":{\"requests\":";
    out += std::to_string(route.requests);
    out += ",\"errors\":";
    out += std::to_string(route.errors);
    out += ",\"p50_s\":";
    out += format_value(route.latency.quantile(0.50));
    out += ",\"p90_s\":";
    out += format_value(route.latency.quantile(0.90));
    out += ",\"p99_s\":";
    out += format_value(route.latency.quantile(0.99));
    out += ",\"p999_s\":";
    out += format_value(route.latency.quantile(0.999));
    out += ",\"mean_s\":";
    out += format_value(route.latency.count
                            ? route.latency.sum_s() /
                                  static_cast<double>(route.latency.count)
                            : 0.0);
    out += '}';
  }
  out += "},\"connects\":";
  out += std::to_string(report.connects);
  out += ",\"connect_failures\":";
  out += std::to_string(report.connect_failures);
  out += ",\"bytes_received\":";
  out += std::to_string(report.bytes_received);
  out += "}";
  return out;
}

std::string fetch(const std::string& host, std::uint16_t port,
                  const std::string& target, long timeout_ms,
                  int* status_out) {
  if (status_out != nullptr) *status_out = 0;
  const int fd = connect_to(host, port, timeout_ms);
  if (fd < 0) return {};
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\nHost: loadgen\r\n"
                          "Connection: close\r\n\r\n";
  std::string all;
  if (send_all(fd, req)) {
    char buf[4096];
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        break;
      }
      if (n == 0) break;
      all.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  const std::size_t end = all.find("\r\n\r\n");
  if (end == std::string::npos) return {};
  if (status_out != nullptr && all.compare(0, 9, "HTTP/1.1 ") == 0) {
    *status_out = std::atoi(all.c_str() + 9);
  }
  return all.substr(end + 4);
}

/// Per-thread slice of the pool's report. Counters are atomics and the
/// histograms are internally atomic, so report() can read them while the
/// owning thread is still driving load.
struct Pool::ClientState {
  std::array<serve::LatencyHistogram, serve::kRouteClasses> latency{};
  std::array<std::atomic<std::uint64_t>, serve::kRouteClasses> requests{};
  std::array<std::atomic<std::uint64_t>, serve::kRouteClasses> errors{};
  std::atomic<std::uint64_t> connects{0};
  std::atomic<std::uint64_t> connect_failures{0};
  std::atomic<std::uint64_t> bytes{0};
};

Pool::Pool(Options opts) : opts_(std::move(opts)) {}

Pool::~Pool() { stop(); }

void Pool::start() {
  if (running_.exchange(true)) return;
  const unsigned total = clients();
  states_.clear();
  states_.reserve(total);
  threads_.reserve(total);
  for (unsigned i = 0; i < total; ++i) {
    states_.push_back(std::make_unique<ClientState>());
  }
  // Distinct splitmix64 stream per thread, derived from the pool seed and
  // the thread's index — the same (seed, clients) always paces the same.
  unsigned idx = 0;
  for (unsigned i = 0; i < opts_.scrapers; ++i, ++idx) {
    std::uint64_t s = opts_.seed;
    for (unsigned k = 0; k <= idx; ++k) splitmix64(s);
    threads_.emplace_back(
        [this, st = states_[idx].get(), s] { scraper_main(*st, s); });
  }
  for (unsigned i = 0; i < opts_.sse; ++i, ++idx) {
    std::uint64_t s = opts_.seed;
    for (unsigned k = 0; k <= idx; ++k) splitmix64(s);
    threads_.emplace_back(
        [this, st = states_[idx].get(), s] { sse_main(*st, s); });
  }
  for (unsigned i = 0; i < opts_.controllers; ++i, ++idx) {
    std::uint64_t s = opts_.seed;
    for (unsigned k = 0; k <= idx; ++k) splitmix64(s);
    threads_.emplace_back(
        [this, st = states_[idx].get(), s] { control_main(*st, s); });
  }
}

void Pool::stop() {
  if (!running_.exchange(false)) return;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

Report Pool::report() const {
  Report out;
  for (const auto& st : states_) {
    for (std::size_t r = 0; r < serve::kRouteClasses; ++r) {
      out.routes[r].requests +=
          st->requests[r].load(std::memory_order_relaxed);
      out.routes[r].errors += st->errors[r].load(std::memory_order_relaxed);
      out.routes[r].latency.merge(st->latency[r].snapshot());
    }
    out.connects += st->connects.load(std::memory_order_relaxed);
    out.connect_failures +=
        st->connect_failures.load(std::memory_order_relaxed);
    out.bytes_received += st->bytes.load(std::memory_order_relaxed);
  }
  return out;
}

void Pool::scraper_main(ClientState& st, std::uint64_t stream) {
  std::uint64_t rng = stream;
  int fd = -1;
  while (running_.load(std::memory_order_relaxed)) {
    if (fd < 0) {
      fd = connect_to(opts_.host, opts_.port, opts_.timeout_ms);
      if (fd < 0) {
        st.connect_failures.fetch_add(1, std::memory_order_relaxed);
        interruptible_sleep(0.002 + 0.008 * uniform01(rng), running_);
        continue;
      }
      st.connects.fetch_add(1, std::memory_order_relaxed);
    }
    // /metrics twice as often as /status and /healthz — the Prometheus-
    // shaped mix the serve plane is built for.
    const std::uint64_t pick = splitmix64(rng) & 3;
    const char* path =
        pick <= 1 ? "/metrics" : (pick == 2 ? "/status" : "/healthz");
    std::string req = std::string("GET ") + path + " HTTP/1.1\r\nHost: lg\r\n";
    if (!opts_.keep_alive) req += "Connection: close\r\n";
    req += "\r\n";
    const auto t0 = Clock::now();
    int status = 0;
    std::uint64_t bytes = 0;
    const bool ok =
        send_all(fd, req) &&
        read_response(fd, running_, opts_.timeout_ms, status, bytes);
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    st.bytes.fetch_add(bytes, std::memory_order_relaxed);
    const auto route =
        static_cast<std::size_t>(serve::classify_route(path));
    if (ok && status / 100 == 2) {
      st.requests[route].fetch_add(1, std::memory_order_relaxed);
      st.latency[route].record(dt);
    } else if (running_.load(std::memory_order_relaxed)) {
      st.errors[route].fetch_add(1, std::memory_order_relaxed);
    }
    if (!ok || !opts_.keep_alive) {
      ::close(fd);
      fd = -1;
    }
    if (opts_.think_s > 0.0) {
      interruptible_sleep(opts_.think_s * (0.5 + uniform01(rng)), running_);
    }
  }
  if (fd >= 0) ::close(fd);
}

void Pool::sse_main(ClientState& st, std::uint64_t stream) {
  std::uint64_t rng = stream;
  const auto route = static_cast<std::size_t>(serve::RouteClass::Events);
  while (running_.load(std::memory_order_relaxed)) {
    const int fd = connect_to(opts_.host, opts_.port, opts_.timeout_ms);
    if (fd < 0) {
      st.connect_failures.fetch_add(1, std::memory_order_relaxed);
      interruptible_sleep(0.005 + 0.02 * uniform01(rng), running_);
      continue;
    }
    st.connects.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = Clock::now();
    bool got_header = false;
    if (send_all(fd, "GET /events HTTP/1.1\r\nHost: lg\r\n\r\n")) {
      char buf[4096];
      while (running_.load(std::memory_order_relaxed)) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
            continue;  // short RCVTIMEO tick; re-check running
          }
          break;
        }
        if (n == 0) break;
        st.bytes.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
        if (!got_header) {
          // Time to first byte is the stream's latency figure; the tail
          // is open-ended by design.
          got_header = true;
          st.latency[route].record(
              std::chrono::duration<double>(Clock::now() - t0).count());
          st.requests[route].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (!got_header && running_.load(std::memory_order_relaxed)) {
      st.errors[route].fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
  }
}

void Pool::control_main(ClientState& st, std::uint64_t stream) {
  std::uint64_t rng = stream;
  const auto route = static_cast<std::size_t>(serve::RouteClass::Control);
  // cmd=resume is a no-op while the sim is not paused: it exercises the
  // whole control path (parse, auth, pause_mu_, notify) without changing
  // anything the trajectory depends on.
  std::string body = "cmd=resume";
  if (!opts_.control_token.empty()) body += "&token=" + opts_.control_token;
  const std::string req =
      "POST /control HTTP/1.1\r\nHost: lg\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  while (running_.load(std::memory_order_relaxed)) {
    interruptible_sleep(opts_.control_period_s * (0.5 + uniform01(rng)),
                        running_);
    if (!running_.load(std::memory_order_relaxed)) break;
    const int fd = connect_to(opts_.host, opts_.port, opts_.timeout_ms);
    if (fd < 0) {
      st.connect_failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    st.connects.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = Clock::now();
    int status = 0;
    std::uint64_t bytes = 0;
    const bool ok =
        send_all(fd, req) &&
        read_response(fd, running_, opts_.timeout_ms, status, bytes);
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    st.bytes.fetch_add(bytes, std::memory_order_relaxed);
    if (ok && status / 100 == 2) {
      st.requests[route].fetch_add(1, std::memory_order_relaxed);
      st.latency[route].record(dt);
    } else if (running_.load(std::memory_order_relaxed)) {
      st.errors[route].fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
  }
}

}  // namespace sa::loadgen
