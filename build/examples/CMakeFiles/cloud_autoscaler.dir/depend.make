# Empty dependencies file for cloud_autoscaler.
# This may be replaced when dependencies are built.
