// Example: two self-aware subsystems from different domains sharing one
// simulated timeline.
//
// An edge appliance (the multicore platform, controlled every 0.5 s) and a
// volunteer-cloud backend (the autoscaler, controlled every 10 s) run on
// the SAME discrete-event engine: twenty edge control epochs fire for every
// cloud one, and at the coincident instants the event order — substrate
// dynamics, then control, then knowledge exchange — is deterministic. The
// two controllers never call each other; instead the AgentRuntime swaps
// their public knowledge every 30 s, so the cloud agent can see the edge
// box's power draw and the edge agent the cloud's SLA. One telemetry bus
// collects every observation, decision, and failure from both domains.
//
// Each domain also records decision provenance through its OWN tracer,
// with a distinct TraceId namespace (edge = 1, cloud = 2, the high 16
// bits of every id). Stitching the two recorded streams into one is then
// safe: ids stay globally unique even though both counters start at 1 —
// and exp::merge_perfetto() turns the two records into ONE Perfetto file
// with flow arrows drawn across the agent boundary at every knowledge
// exchange.
//
// Run: ./build/examples/cross_domain
//      ./build/examples/cross_domain --merged-trace merged.json
//      ./build/examples/cross_domain --serve 8080   # then curl /metrics
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "core/runtime.hpp"
#include "exp/trace_json.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

#ifdef SA_SERVE_ENABLED
#include "serve/bridge.hpp"
#include "serve/server.hpp"
#endif

int main(int argc, char** argv) {
  using namespace sa;

  // Optional flags: --merged-trace PATH, --serve PORT.
  std::string merged_path;
  int serve_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merged-trace") == 0 && i + 1 < argc) {
      merged_path = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--merged-trace PATH] [--serve PORT]\n",
                   argv[0]);
      return 2;
    }
  }

  sim::Engine engine;
  core::AgentRuntime runtime(engine);
  sim::MetricsRegistry metrics;
  runtime.set_metrics(&metrics);

  // One bus for both domains; keep the last few thousand events around.
  sim::TelemetryBus bus;
  sim::RingBufferSink recent(4096);
  bus.add_sink(&recent);

  // One tracer per domain, namespaced so the merged stream stays unique.
  sim::Tracer edge_tracer(bus, /*enabled=*/true, /*ns=*/1);
  sim::Tracer cloud_tracer(bus, /*enabled=*/true, /*ns=*/2);

  // --- Fast loop: the edge appliance (control epoch 0.5 s) ---------------
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 4),
                               21);
  auto workload = multicore::PhasedWorkload::standard();
  multicore::Manager::Params mp;
  mp.seed = 21;
  mp.telemetry = &bus;
  mp.tracer = &edge_tracer;
  multicore::Manager manager(platform, mp);
  engine.every(
      mp.epoch_s,
      [&] {
        workload.apply(platform);
        return true;
      },
      core::AgentRuntime::kOrderDynamics);
  manager.bind(engine);

  // --- Slow loop: the cloud backend (control epoch 10 s) -----------------
  cloud::Cluster::Params cp;
  cp.nodes = 24;
  cp.seed = 22;
  cloud::Cluster cluster(cp);
  cloud::DemandModel::Params dp;
  dp.base = 60.0;
  dp.diurnal_amp = 0.3;
  cloud::DemandModel demand(dp);
  cloud::Autoscaler::Params ap;
  ap.seed = 22;
  ap.telemetry = &bus;
  ap.tracer = &cloud_tracer;
  cloud::Autoscaler autoscaler(cluster, demand, ap);
  autoscaler.bind(engine);

  // --- Cross-domain knowledge exchange every 30 s ------------------------
  runtime.schedule_exchange({&manager.agent(), &autoscaler.agent()}, 30.0);

  // Mark each exchange round in BOTH provenance streams: a zero-length
  // "exchange" span per tracer (merge_perfetto's default stitch point).
  // Registered after the real exchange at the same engine order, so the
  // marker lands once the knowledge swap at that instant is done.
  const sim::SubjectId x_subject = bus.intern_subject("exchange");
  const sim::NameId edge_xn = edge_tracer.intern_name("exchange");
  const sim::NameId cloud_xn = cloud_tracer.intern_name("exchange");
  engine.every(
      30.0,
      [&] {
        const double t = engine.now();
        edge_tracer.span(t, x_subject, edge_xn).end();
        cloud_tracer.span(t, x_subject, cloud_xn).end();
        return true;
      },
      core::AgentRuntime::kOrderExchange);

#ifdef SA_SERVE_ENABLED
  // Optional live observability: GET /metrics, /status, /events while the
  // run is in flight; POST /control pauses/resumes it.
  serve::SimBridge bridge;
  serve::Server::Options sopts;
  sopts.port = static_cast<std::uint16_t>(serve_port < 0 ? 0 : serve_port);
  serve::Server server(sopts);
  if (serve_port >= 0) {
    bridge.set_metrics(&metrics);
    bridge.set_telemetry(&bus);
    bridge.add_agent(&manager.agent());
    bridge.add_agent(&autoscaler.agent());
    bridge.attach(engine);
    bridge.install(server);
    if (!server.start()) {
      std::fprintf(stderr, "serve: %s\n", server.error().c_str());
      return 2;
    }
    std::printf("serving on 127.0.0.1:%u (try /metrics, /status, /events)\n",
                server.port());
  }
#else
  if (serve_port >= 0) {
    std::fprintf(stderr, "--serve requires a build with -DSA_SERVE=ON\n");
    return 2;
  }
#endif

  engine.run_until(600.0);  // ten simulated minutes

  std::printf("after %.0f s: %zu events executed\n", engine.now(),
              engine.executed());
  std::printf("edge   : utility %.3f, mean power %.2f W over %zu epochs\n",
              manager.utility().mean(), manager.power().mean(),
              manager.utility().count());
  std::printf("cloud  : SLA %.3f, %zu nodes enrolled over %zu epochs\n",
              autoscaler.sla().mean(), autoscaler.target(),
              autoscaler.sla().count());
  std::printf("runtime: %zu knowledge items exchanged\n",
              runtime.items_exchanged());

  std::printf("telemetry: %zu observations, %zu decisions, %zu failures\n",
              bus.count(sim::TelemetryBus::kObservation),
              bus.count(sim::TelemetryBus::kDecision),
              bus.count(sim::TelemetryBus::kFailure));
  std::printf("last %zu events buffered; decision values mean %.2f\n",
              recent.size(), bus.values(sim::TelemetryBus::kDecision).mean());

  // Each agent now holds the other domain's public self-description.
  const auto& cloud_kb = autoscaler.agent().knowledge();
  const auto& edge_kb = manager.agent().knowledge();
  if (cloud_kb.contains("shared.multicore-mgr.power")) {
    std::printf("cloud agent sees edge power: %.2f W\n",
                cloud_kb.number("shared.multicore-mgr.power"));
  }
  if (edge_kb.contains("shared.autoscaler.sla")) {
    std::printf("edge agent sees cloud SLA: %.3f\n",
                edge_kb.number("shared.autoscaler.sla"));
  }

  // Stitch the two domains' trace streams: with per-tracer namespaces in
  // the high bits, ids never collide even though both counters run from 1.
  std::vector<sim::TraceId> stitched;
  for (const auto* tracer : {&edge_tracer, &cloud_tracer}) {
    for (const auto& ev : tracer->events()) {
      if (ev.id != 0) stitched.push_back(ev.id);
    }
  }
  std::sort(stitched.begin(), stitched.end());
  stitched.erase(std::unique(stitched.begin(), stitched.end()),
                 stitched.end());
  std::size_t from_edge = 0, from_cloud = 0;
  for (const sim::TraceId id : stitched) {
    if (sim::trace_namespace_of(id) == 1) ++from_edge;
    if (sim::trace_namespace_of(id) == 2) ++from_cloud;
  }
  std::printf(
      "traces : %zu spans (edge) + %zu spans (cloud); stitched ids "
      "%zu, all unique (%zu edge ns, %zu cloud ns)\n",
      edge_tracer.spans(), cloud_tracer.spans(), stitched.size(), from_edge,
      from_cloud);

  // One Perfetto file for both agents: each tracer becomes its own
  // process track, and flow arrows are synthesized between consecutive
  // "exchange" spans of different tracers — the knowledge hand-overs.
  exp::MergeStats ms;
  const exp::Json merged =
      exp::merge_perfetto({&edge_tracer, &cloud_tracer}, {}, &ms);
  std::printf(
      "merged : %zu tracers, %zu events, %zu exchange points, "
      "%zu cross-agent flow links\n",
      ms.tracers, ms.events, ms.stitch_points, ms.stitches);
  if (!merged_path.empty()) {
    std::ofstream os(merged_path);
    merged.dump(os, /*indent=*/-1);
    os << "\n";
    std::printf("merged trace written to %s (open in ui.perfetto.dev)\n",
                merged_path.c_str());
  }

#ifdef SA_SERVE_ENABLED
  server.stop();
#endif
  return 0;
}
