#include "learn/rls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(Rls, RecoversExactLinearModel) {
  Rls rls(3, 1.0);
  sim::Rng rng(1);
  const double w[] = {2.0, -1.5, 0.7};  // last weight acts as intercept
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1), 1.0};
    const double y = w[0] * x[0] + w[1] * x[1] + w[2] * x[2];
    rls.observe(x, y);
  }
  // The covariance prior (p0) leaves a small regularisation bias.
  EXPECT_NEAR(rls.weights()[0], 2.0, 1e-3);
  EXPECT_NEAR(rls.weights()[1], -1.5, 1e-3);
  EXPECT_NEAR(rls.weights()[2], 0.7, 1e-3);
}

TEST(Rls, PredictsUnseenInputs) {
  Rls rls(2, 1.0);
  sim::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x{rng.uniform(0, 10), 1.0};
    rls.observe(x, 3.0 * x[0] + 5.0);
  }
  EXPECT_NEAR(rls.predict({4.0, 1.0}), 17.0, 1e-2);
}

TEST(Rls, HandlesNoisyObservations) {
  Rls rls(2, 1.0);
  sim::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const std::vector<double> x{rng.uniform(-2, 2), 1.0};
    rls.observe(x, 4.0 * x[0] - 1.0 + rng.normal(0.0, 0.5));
  }
  EXPECT_NEAR(rls.weights()[0], 4.0, 0.1);
  EXPECT_NEAR(rls.weights()[1], -1.0, 0.1);
}

TEST(Rls, ForgettingTracksDriftingModel) {
  Rls adaptive(2, 0.95);
  Rls rigid(2, 1.0);
  sim::Rng rng(4);
  // Slope drifts from 1 to 5 halfway through.
  for (int phase = 0; phase < 2; ++phase) {
    const double slope = phase == 0 ? 1.0 : 5.0;
    for (int i = 0; i < 400; ++i) {
      const std::vector<double> x{rng.uniform(-1, 1), 1.0};
      const double y = slope * x[0];
      adaptive.observe(x, y);
      rigid.observe(x, y);
    }
  }
  const double err_adaptive = std::fabs(adaptive.weights()[0] - 5.0);
  const double err_rigid = std::fabs(rigid.weights()[0] - 5.0);
  EXPECT_LT(err_adaptive, 0.2);
  EXPECT_LT(err_adaptive, err_rigid);
}

TEST(Rls, CountsObservations) {
  Rls rls(1);
  EXPECT_EQ(rls.count(), 0u);
  rls.observe({1.0}, 2.0);
  EXPECT_EQ(rls.count(), 1u);
  EXPECT_EQ(rls.dim(), 1u);
}

TEST(Rls, ZeroObservationsPredictZero) {
  Rls rls(2);
  EXPECT_DOUBLE_EQ(rls.predict({1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace sa::learn
