// Camera fleets: homogeneous baselines vs per-camera strategy learning.
//
// In Homogeneous mode every camera runs one fixed strategy (the designer's
// one-size-fits-all choice). In Learning mode each camera is its own
// SelfAwareAgent: a bandit over the three strategies, rewarded with the
// camera's *local* epoch utility. No camera sees the global picture — the
// collective outcome (coverage, message economy, heterogeneity) emerges,
// which is precisely the claim of Lewis et al. [13] reproduced in E2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "svc/network.hpp"

namespace sa::svc {

class CameraFleet {
 public:
  enum class Mode { Homogeneous, Learning };

  struct Params {
    Mode mode = Mode::Learning;
    Strategy fixed = Strategy::Broadcast;  ///< Homogeneous only
    std::size_t epoch_steps = 25;
    core::LevelSet levels = core::LevelSet::full();
    std::uint64_t seed = 31;
    /// Optional telemetry bus: wired into every camera agent and the
    /// network. Non-owning; must outlive the fleet.
    sim::TelemetryBus* telemetry = nullptr;
    /// Optional tracer: wired into every camera agent (ODA spans + flow
    /// chains); the fleet itself emits one "epoch" span per epoch under
    /// subject "svc.fleet". Non-owning; must outlive the fleet.
    sim::Tracer* tracer = nullptr;
  };

  CameraFleet(Network& net, Params p);

  /// Runs one epoch of world steps, then lets every camera (re)choose its
  /// strategy. Returns the network epoch record.
  NetworkEpoch run_epoch();

  /// Event-driven equivalent of calling run_epoch() in a loop: schedules
  /// one world step every `step_period` (order 0 = dynamics); every
  /// epoch_steps-th step the epoch work (harvest, agent steps, rewards)
  /// runs in the same event, so the trajectory is identical to the
  /// synchronous loop. `on_epoch`, if set, receives each epoch record.
  void bind(sim::Engine& engine, double step_period = 1.0,
            std::function<void(const NetworkEpoch&)> on_epoch = {});

  /// Normalised Shannon entropy of the current strategy assignment in
  /// [0,1]: 0 = all cameras identical, 1 = uniform over strategies.
  [[nodiscard]] double diversity() const;
  /// Count of cameras per strategy.
  [[nodiscard]] std::vector<std::size_t> strategy_histogram() const;

  [[nodiscard]] core::SelfAwareAgent& agent(std::size_t cam) {
    return *agents_[cam];
  }
  [[nodiscard]] std::size_t cameras() const noexcept {
    return net_.cameras();
  }

  // Whole-run aggregates (per-epoch samples).
  [[nodiscard]] const sim::RunningStats& coverage() const noexcept {
    return coverage_;
  }
  [[nodiscard]] const sim::RunningStats& messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] const sim::RunningStats& global_utility() const noexcept {
    return global_utility_;
  }

 private:
  /// The post-world-steps half of run_epoch(): harvest, agent steps,
  /// rewards, aggregate updates.
  NetworkEpoch finish_epoch();

  Network& net_;
  Params p_;
  std::vector<std::unique_ptr<core::SelfAwareAgent>> agents_;
  std::vector<CameraEpoch> last_;
  std::size_t epoch_ = 0;
  std::size_t bound_steps_ = 0;
  sim::RunningStats coverage_, messages_, global_utility_;
  sim::SubjectId trace_subject_ = 0;  ///< "svc.fleet" when tracing
  sim::NameId n_epoch_ = 0, k_coverage_ = 0, k_messages_ = 0, k_utility_ = 0;
};

}  // namespace sa::svc
