#include "core/knowledge.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sa::core {

const std::deque<KnowledgeItem> KnowledgeBase::empty_{};

std::string to_string(const Value& v) {
  std::ostringstream os;
  if (const auto* b = std::get_if<bool>(&v)) {
    os << (*b ? "true" : "false");
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    os << *d;
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    os << *s;
  } else {
    const auto& vec = std::get<std::vector<double>>(v);
    os << '[';
    for (std::size_t i = 0; i < vec.size(); ++i) os << (i ? "," : "") << vec[i];
    os << ']';
  }
  return os.str();
}

void KnowledgeBase::put(const std::string& key, KnowledgeItem item) {
  // Items that declared no shelf life inherit the base's default.
  if (std::isinf(item.ttl)) item.ttl = default_ttl_;
  auto& hist = store_[key];
  hist.push_back(std::move(item));
  if (hist.size() > history_limit_) hist.pop_front();
  for (const auto& [handle, l] : listeners_) {
    (void)handle;
    l(key, hist.back());
  }
}

void KnowledgeBase::put_number(const std::string& key, double value,
                               double time, double confidence, Scope scope,
                               std::string source) {
  put(key, KnowledgeItem{Value{value}, time, confidence, scope,
                         std::move(source)});
}

std::optional<KnowledgeItem> KnowledgeBase::latest(
    const std::string& key) const {
  const auto it = store_.find(key);
  if (it == store_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

double KnowledgeBase::number(const std::string& key, double fallback) const {
  const auto it = store_.find(key);
  if (it == store_.end() || it->second.empty()) return fallback;
  return as_number(it->second.back().value, fallback);
}

double KnowledgeBase::confidence(const std::string& key) const {
  const auto it = store_.find(key);
  if (it == store_.end() || it->second.empty()) return 0.0;
  return it->second.back().confidence;
}

const std::deque<KnowledgeItem>& KnowledgeBase::history(
    const std::string& key) const {
  const auto it = store_.find(key);
  return it == store_.end() ? empty_ : it->second;
}

bool KnowledgeBase::contains(const std::string& key) const {
  return store_.count(key) != 0;
}

bool KnowledgeBase::fresh(const std::string& key, double now) const {
  const auto it = store_.find(key);
  if (it == store_.end() || it->second.empty()) return false;
  const KnowledgeItem& item = it->second.back();
  return now - item.time <= item.ttl;
}

std::vector<std::string> KnowledgeBase::stale_keys(const std::string& prefix,
                                                   double now) const {
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.empty()) continue;
    const KnowledgeItem& item = it->second.back();
    if (now - item.time > item.ttl) out.push_back(it->first);
  }
  return out;
}

std::vector<std::string> KnowledgeBase::keys() const {
  std::vector<std::string> out;
  out.reserve(store_.size());
  for (const auto& [k, v] : store_) {
    (void)v;
    out.push_back(k);
  }
  return out;
}

std::vector<std::string> KnowledgeBase::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::vector<std::pair<std::string, KnowledgeItem>>
KnowledgeBase::public_snapshot() const {
  std::vector<std::pair<std::string, KnowledgeItem>> out;
  for (const auto& [k, hist] : store_) {
    if (!hist.empty() && hist.back().scope == Scope::Public) {
      out.emplace_back(k, hist.back());
    }
  }
  return out;
}

std::size_t KnowledgeBase::subscribe(Listener l) {
  listeners_.emplace_back(next_handle_, std::move(l));
  return next_handle_++;
}

void KnowledgeBase::unsubscribe(std::size_t handle) {
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [handle](const auto& p) { return p.first == handle; }),
      listeners_.end());
}

void KnowledgeBase::clear() { store_.clear(); }

}  // namespace sa::core
