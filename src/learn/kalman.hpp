// Scalar Kalman filters.
//
// The minimal "optimal" self-model for a noisy scalar signal: a
// steady-state level filter, and a constant-velocity variant whose state
// (level, rate) supports short-horizon prediction — an alternative to the
// Holt family with explicit uncertainty that awareness processes can
// surface as confidence.
#pragma once

#include <cmath>
#include <cstddef>

namespace sa::learn {

/// 1-D Kalman filter tracking a (possibly drifting) level.
/// Model: x_{t+1} = x_t + w (process var q);  z_t = x_t + v (obs var r).
class KalmanLevel {
 public:
  KalmanLevel(double q = 1e-3, double r = 1e-1) : q_(q), r_(r) {}

  void observe(double z) {
    if (n_ == 0) {
      x_ = z;
      p_ = r_;
    } else {
      p_ += q_;                       // predict
      const double k = p_ / (p_ + r_);  // gain
      x_ += k * (z - x_);             // update
      p_ *= (1.0 - k);
    }
    ++n_;
  }
  [[nodiscard]] double value() const noexcept { return x_; }
  /// Posterior standard deviation — the filter's own uncertainty.
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(p_); }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  void reset() noexcept {
    x_ = p_ = 0.0;
    n_ = 0;
  }

 private:
  double q_, r_;
  double x_ = 0.0, p_ = 0.0;
  std::size_t n_ = 0;
};

/// 2-state (level, rate) Kalman filter with unit time steps.
/// Supports h-step prediction: x(t+h) ≈ level + h·rate.
class KalmanTrend {
 public:
  KalmanTrend(double q = 1e-4, double r = 1e-1) : q_(q), r_(r) {}

  void observe(double z) {
    if (n_ == 0) {
      level_ = z;
      p00_ = r_;
      p11_ = 1.0;
    } else {
      // Predict: level += rate; covariance propagates through F=[[1,1],[0,1]].
      level_ += rate_;
      const double n00 = p00_ + 2.0 * p01_ + p11_ + q_;
      const double n01 = p01_ + p11_;
      const double n11 = p11_ + q_;
      p00_ = n00;
      p01_ = n01;
      p11_ = n11;
      // Update with observation of the level only.
      const double s = p00_ + r_;
      const double k0 = p00_ / s;
      const double k1 = p01_ / s;
      const double innovation = z - level_;
      level_ += k0 * innovation;
      rate_ += k1 * innovation;
      const double p00 = p00_, p01 = p01_;
      p00_ -= k0 * p00;
      p01_ -= k0 * p01;
      p11_ -= k1 * p01;
    }
    ++n_;
  }
  [[nodiscard]] double level() const noexcept { return level_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double predict(std::size_t h = 1) const noexcept {
    return level_ + static_cast<double>(h) * rate_;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(std::fabs(p00_));
  }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  void reset() noexcept { *this = KalmanTrend(q_, r_); }

 private:
  double q_, r_;
  double level_ = 0.0, rate_ = 0.0;
  double p00_ = 0.0, p01_ = 0.0, p11_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace sa::learn
