// Umbrella header for the selfaware library.
//
// Pull in everything:      #include "sa.hpp"
// or per layer:            #include "core/agent.hpp"   (the framework)
//                          #include "learn/bandit.hpp" (learning blocks)
//                          #include "sim/engine.hpp"   (simulation kernel)
// or per substrate:        #include "svc/fleet.hpp", "cloud/autoscaler.hpp",
//                          "multicore/manager.hpp", "cpn/network.hpp"
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-reproduction map.
#pragma once

// Simulation kernel.
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

// Online learning substrate.
#include "learn/bandit.hpp"
#include "learn/drift.hpp"
#include "learn/estimators.hpp"
#include "learn/forecast.hpp"
#include "learn/kalman.hpp"
#include "learn/markov.hpp"
#include "learn/qlearn.hpp"
#include "learn/rls.hpp"

// The computational self-awareness framework (the paper's contribution).
#include "core/agent.hpp"
#include "core/attention.hpp"
#include "core/collective.hpp"
#include "core/explain.hpp"
#include "core/goal.hpp"
#include "core/goal_awareness.hpp"
#include "core/interaction.hpp"
#include "core/knowledge.hpp"
#include "core/levels.hpp"
#include "core/meta.hpp"
#include "core/pareto.hpp"
#include "core/policy.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"
#include "core/sharing.hpp"
#include "core/stimulus.hpp"
#include "core/time_awareness.hpp"

// Case-study substrates.
#include "cloud/autoscaler.hpp"
#include "cloud/cluster.hpp"
#include "cpn/network.hpp"
#include "cpn/supervisor.hpp"
#include "cpn/traffic.hpp"
#include "multicore/manager.hpp"
#include "multicore/platform.hpp"
#include "multicore/workload.hpp"
#include "svc/fleet.hpp"
#include "svc/network.hpp"
