// Checkpoint/restore overhead (sa::ckpt).
//
// Pins the cost of the checkpoint machinery against the E15 smart-city
// composite at mid-run, the worst case the harness actually takes
// snapshots of: serializing every component section into a sealed image
// (save), the atomic durable write with fsync + .prev rotation
// (save_file), parsing + byte-attesting a rebuilt world against the
// image (parse_verify), and the run-time overhead of replaying a
// control journal into the trajectory (journal entries are engine
// events; the interesting number is how close the overhead is to zero).
//
// Timing metrics are wall-clock derived and not bitwise deterministic;
// image_bytes and journal_entries are exact. `--json BENCH_ckpt.json`
// publishes the numbers for EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/state.hpp"
#include "exp/harness.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "sim/report.hpp"

namespace {

using namespace sa;
using Clock = std::chrono::steady_clock;

const std::vector<std::uint64_t> kSeeds{61, 62, 63};
constexpr double kCheckpointT = 40.0;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// An 8-entry control stream spread over the run, the journal-replay
/// worst case the crash-recovery lane exercises.
std::vector<ckpt::JournalEntry> demo_journal() {
  std::vector<ckpt::JournalEntry> entries;
  for (int i = 0; i < 8; ++i) {
    ckpt::JournalEntry e;
    e.t = 8.0 + 8.0 * i;
    e.cmd.kind = ckpt::ControlCommand::Kind::kInject;
    e.cmd.fault_kind = fault::FaultKind::LinkLoss;
    e.cmd.unit = static_cast<std::size_t>(i % 4);
    e.cmd.magnitude = 1.5;
    e.cmd.duration = 4.0;
    entries.push_back(e);
  }
  return entries;
}

exp::TaskOutput run_costs(const gen::ScenarioSpec& spec,
                          const exp::TaskContext& ctx) {
  gen::Scenario::Options opts;
  opts.self_aware = true;

  // A world at mid-run: the state a supervisor snapshot actually sees.
  gen::Scenario world(spec, ctx.seed, opts);
  world.run_until(kCheckpointT);
  ckpt::WorldCheckpoint wc;
  world.register_checkpoint(wc);
  ckpt::WorldCheckpoint::Meta meta;
  meta.t = kCheckpointT;
  meta.seed = ctx.seed;
  meta.recipe = spec.to_string();
  meta.fault_plan = world.fault_plan().to_string();

  // save: serialize all component sections into a sealed image.
  constexpr int kSaveIters = 50;
  std::string image;
  auto t0 = Clock::now();
  for (int i = 0; i < kSaveIters; ++i) {
    image.clear();
    if (!wc.save(meta, image).ok()) throw std::runtime_error("save failed");
  }
  const double save_ms = ms_since(t0) / kSaveIters;

  // save_file: the durable path (tmp + fsync + rotate + rename).
  const std::string path =
      "BENCH_ckpt_probe_" + std::to_string(ctx.seed) + ".sackpt";
  constexpr int kFileIters = 10;
  t0 = Clock::now();
  for (int i = 0; i < kFileIters; ++i) {
    if (!wc.save_file(meta, path).ok())
      throw std::runtime_error("save_file failed");
  }
  const double save_file_ms = ms_since(t0) / kFileIters;
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  // parse + verify: the restore-side attestation against a rebuilt world.
  gen::Scenario rebuilt(spec, ctx.seed, opts);
  rebuilt.run_until(kCheckpointT);
  ckpt::WorldCheckpoint wr;
  rebuilt.register_checkpoint(wr);
  constexpr int kVerifyIters = 50;
  t0 = Clock::now();
  for (int i = 0; i < kVerifyIters; ++i) {
    ckpt::Reader r;
    if (!ckpt::Reader::parse(image, r).ok() || !wr.verify(r).ok())
      throw std::runtime_error("verify failed");
  }
  const double verify_ms = ms_since(t0) / kVerifyIters;

  // Journal replay overhead: full run with vs without a control stream.
  const auto journal = demo_journal();
  t0 = Clock::now();
  {
    gen::Scenario plain(spec, ctx.seed, opts);
    plain.run();
  }
  const double plain_ms = ms_since(t0);
  t0 = Clock::now();
  {
    gen::Scenario replayed(spec, ctx.seed, opts);
    ckpt::schedule_replay(replayed.engine(), journal, /*order=*/1000,
                          &replayed.injector(), nullptr);
    replayed.run();
  }
  const double replay_ms = ms_since(t0);

  exp::Metrics m;
  m.emplace_back("save_ms", save_ms);
  m.emplace_back("save_file_ms", save_file_ms);
  m.emplace_back("parse_verify_ms", verify_ms);
  m.emplace_back("image_kb", static_cast<double>(image.size()) / 1024.0);
  m.emplace_back("run_plain_ms", plain_ms);
  m.emplace_back("run_replay_ms", replay_ms);
  m.emplace_back("replay_overhead_pct",
                 plain_ms > 0.0 ? 100.0 * (replay_ms - plain_ms) / plain_ms
                                : 0.0);
  m.emplace_back("journal_entries", static_cast<double>(journal.size()));
  return {std::move(m)};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("ckpt", argc, argv);

  gen::ScenarioSpec spec;
  try {
    spec = gen::ScenarioSpec::parse(h.options().scenario.empty()
                                        ? gen::ScenarioSpec::city_spec()
                                        : h.options().scenario);
  } catch (const std::exception& e) {
    std::cerr << "bench_ckpt: " << e.what() << "\n";
    return 2;
  }

  std::cout << "ckpt: checkpoint/restore overhead on the smart-city "
               "composite at t=" << kCheckpointT << ".\nScenario: "
            << spec.to_string() << "\n\n";

  exp::Grid g;
  g.name = "ckpt.cost";
  g.variants = {"city"};
  g.seeds = kSeeds;
  g.task = [&spec](const exp::TaskContext& ctx) {
    return run_costs(spec, ctx);
  };
  const auto r = h.run(std::move(g));

  sim::Table t("CKPT  save/verify cost and journal-replay overhead",
               {"world", "save_ms", "file_ms", "verify_ms", "image_kb",
                "overhead_%"});
  t.add_row({r.variants[0], r.mean(0, "save_ms"),
             r.mean(0, "save_file_ms"), r.mean(0, "parse_verify_ms"),
             r.mean(0, "image_kb"), r.mean(0, "replay_overhead_pct")});
  t.print(std::cout);
  return h.finish();
}
