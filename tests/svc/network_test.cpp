#include "svc/network.hpp"

#include <gtest/gtest.h>

namespace sa::svc {
namespace {

NetworkParams quiet_params() {
  NetworkParams p;
  p.objects = 10;
  p.seed = 2;
  return p;
}

TEST(Vec2, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(StrategyNames, Stable) {
  EXPECT_STREQ(strategy_name(Strategy::Broadcast), "broadcast");
  EXPECT_STREQ(strategy_name(Strategy::Smooth), "smooth");
  EXPECT_STREQ(strategy_name(Strategy::Passive), "passive");
}

TEST(Network, ClusteredLayoutHasDenseAndSparseRegions) {
  auto net = Network::clustered_layout(quiet_params());
  ASSERT_EQ(net.cameras(), 12u);
  // The four cluster cameras overlap heavily; the ring cameras are lonely.
  EXPECT_GE(net.neighbours(0).size(), 3u);
  std::size_t min_neighbours = 99;
  for (std::size_t c = 4; c < net.cameras(); ++c) {
    min_neighbours = std::min(min_neighbours, net.neighbours(c).size());
  }
  EXPECT_LE(min_neighbours, 1u);
}

TEST(Network, VisibilityPeaksAtCentreAndVanishesAtRim) {
  Network net({{{0.5, 0.5}, 0.2, 4}}, quiet_params());
  // Object positions are random; test the geometry helper directly by
  // finding an owned arrangement: use spec access + visibility of object 0
  // after forcing positions via steps is awkward, so check bounds instead.
  for (std::size_t o = 0; o < net.objects(); ++o) {
    const double v = net.visibility(0, o);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Network, StepKeepsOwnershipConsistent) {
  auto net = Network::clustered_layout(quiet_params());
  net.run(200);
  for (std::size_t o = 0; o < net.objects(); ++o) {
    const auto owner = net.owner(o);
    if (owner != static_cast<std::size_t>(-1)) {
      EXPECT_LT(owner, net.cameras());
    }
  }
}

TEST(Network, ObjectsGetClaimedOverTime) {
  auto net = Network::clustered_layout(quiet_params());
  net.run(100);
  std::size_t owned = 0;
  for (std::size_t o = 0; o < net.objects(); ++o) {
    owned += net.owner(o) != static_cast<std::size_t>(-1) ? 1 : 0;
  }
  EXPECT_GT(owned, 0u);
}

TEST(Network, CoverageAndMessagesAccumulate) {
  auto net = Network::clustered_layout(quiet_params());
  net.run(300);
  const auto e = net.harvest_network();
  EXPECT_DOUBLE_EQ(e.steps, 300.0);
  EXPECT_GT(e.coverage, 0.1);
  EXPECT_LE(e.coverage, 1.0);
  EXPECT_GE(e.messages, 0.0);
}

TEST(Network, HarvestNetworkResets) {
  auto net = Network::clustered_layout(quiet_params());
  net.run(50);
  net.harvest_network();
  const auto e = net.harvest_network();
  EXPECT_DOUBLE_EQ(e.steps, 0.0);
}

TEST(Network, BroadcastOutMessagesSmooth) {
  // Identical worlds; all-broadcast must send at least as many messages as
  // all-smooth (broadcast audience is a superset).
  auto a = Network::clustered_layout(quiet_params());
  auto b = Network::clustered_layout(quiet_params());
  for (std::size_t c = 0; c < a.cameras(); ++c) {
    a.set_strategy(c, Strategy::Broadcast);
    b.set_strategy(c, Strategy::Smooth);
  }
  a.run(400);
  b.run(400);
  EXPECT_GE(a.harvest_network().messages, b.harvest_network().messages);
}

TEST(Network, PassiveSendsNoMessages) {
  auto net = Network::clustered_layout(quiet_params());
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, Strategy::Passive);
  }
  net.run(400);
  EXPECT_DOUBLE_EQ(net.harvest_network().messages, 0.0);
}

TEST(Network, BroadcastCoversBetterThanPassive) {
  auto a = Network::clustered_layout(quiet_params());
  auto b = Network::clustered_layout(quiet_params());
  for (std::size_t c = 0; c < a.cameras(); ++c) {
    a.set_strategy(c, Strategy::Broadcast);
    b.set_strategy(c, Strategy::Passive);
  }
  a.run(600);
  b.run(600);
  EXPECT_GT(a.harvest_network().coverage, b.harvest_network().coverage);
}

TEST(Network, CameraEpochUtilityBlendsComponents) {
  CameraEpoch e;
  e.tracking = 10.0;
  e.messages = 20.0;
  e.handovers = 2.0;
  EXPECT_DOUBLE_EQ(e.utility(0.1, 0.5), 10.0 + 1.0 - 2.0);
}

TEST(Network, HarvestCameraResetsCounters) {
  auto net = Network::clustered_layout(quiet_params());
  net.run(100);
  net.harvest_camera(0);
  const auto e = net.harvest_camera(0);
  EXPECT_DOUBLE_EQ(e.tracking, 0.0);
  EXPECT_DOUBLE_EQ(e.messages, 0.0);
}

TEST(Network, StrategiesPersistAcrossSteps) {
  auto net = Network::clustered_layout(quiet_params());
  net.set_strategy(3, Strategy::Smooth);
  net.run(10);
  EXPECT_EQ(net.strategy(3), Strategy::Smooth);
}

TEST(Network, DeterministicGivenSeed) {
  auto a = Network::clustered_layout(quiet_params());
  auto b = Network::clustered_layout(quiet_params());
  a.run(200);
  b.run(200);
  EXPECT_DOUBLE_EQ(a.harvest_network().coverage,
                   b.harvest_network().coverage);
}

}  // namespace
}  // namespace sa::svc
