// E8 — self-explanation from self-models (paper Sections III & VI;
// Schubert [25]; Cox [28]).
//
// Claims operationalised:
//   (a) because decisions are taken from explicit self-models, a complete
//       explanation (chosen action, alternatives with scores, evidence
//       with confidence, goal state) is available for *every* decision —
//       coverage 1.0 by construction;
//   (b) recording explanations costs little: we measure the control-loop
//       rate with the explainer on vs off;
//   (c) the explanations are substantive — a sample is printed.
//
// The "seeds" of this grid are repeat indices (the simulation itself is
// fixed at seed 81): repeats exist only to take a best-of wall-clock
// measurement, exactly like the serial best-of-3 this replaces. The rate
// metrics are wall-clock derived and therefore the one part of the suite
// that is *not* bitwise deterministic; coverage and stored counts are.
#include <chrono>
#include <iostream>
#include <string>

#include "exp/harness.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/report.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 2000;
const std::vector<std::uint64_t> kRepeats{1, 2, 3};

exp::TaskOutput run(bool explain, const exp::TaskContext& ctx) {
  Platform platform(PlatformConfig::big_little(2, 4), 81);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = Manager::Variant::SelfAware;
  p.seed = 81;
  // Under --trace the designated cell ("on", first repeat) runs with a
  // tracer, and its rendered explanations cite trace ids resolvable in
  // the exported file.
  p.telemetry = ctx.telemetry;
  p.tracer = ctx.tracer;
  Manager mgr(platform, p);
  mgr.agent().explainer().set_enabled(explain);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    mgr.run_epoch();
  }
  const auto stop = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(stop - start).count();

  exp::TaskOutput out;
  out.metrics = {
      {"epochs_per_s", kEpochs / secs},
      {"coverage", mgr.agent().explainer().coverage()},
      {"stored", static_cast<double>(mgr.agent().explainer().size())}};
  if (explain) out.note = mgr.agent().explainer().why_last();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e8_explain", argc, argv);
  std::cout << "E8: self-explanation coverage and overhead on the multicore "
               "control loop (" << kEpochs << " epochs).\n\n";

  // Best-of-N repeats to damp scheduler noise: the loop is
  // simulation-dominated, so the explainer's cost is small relative to
  // run-to-run variance.
  exp::Grid g;
  g.name = "e8";
  g.variants = {"off", "on"};
  g.seeds = kRepeats;
  g.task = [](const exp::TaskContext& ctx) {
    return run(ctx.variant == 1, ctx);
  };
  const auto res = h.run(std::move(g));

  const double off_rate = res.stats(0, "epochs_per_s").max();
  const double on_rate = res.stats(1, "epochs_per_s").max();

  sim::Table t("E8.1  explainer on vs off",
               {"explainer", "epochs/s", "coverage", "stored"});
  t.precision(1, 0);
  t.add_row({std::string("off"), off_rate, res.mean(0, "coverage"),
             static_cast<std::int64_t>(res.mean(0, "stored"))});
  t.add_row({std::string("on"), on_rate, res.mean(1, "coverage"),
             static_cast<std::int64_t>(res.mean(1, "stored"))});
  t.print(std::cout);

  const double overhead = (off_rate / on_rate - 1.0) * 100.0;
  std::cout << "E8.2  overhead: " << overhead
            << "% (values within a few percent of zero are measurement "
               "noise).\n\n";
  std::cout << "E8.3  sample explanation of the final decision:\n  "
            << res.note(1) << "\n";
  return h.finish();
}
