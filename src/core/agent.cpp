#include "core/agent.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iomanip>
#include <sstream>

namespace sa::core {

SelfAwareAgent::SelfAwareAgent(std::string id, AgentConfig cfg)
    : id_(std::move(id)),
      cfg_(cfg),
      active_levels_(cfg.levels),
      rng_(sim::mix64(cfg.seed) ^ std::hash<std::string>{}(id_)),
      kb_(cfg.history_limit),
      explainer_(cfg.explain),
      attention_(cfg.attention_strategy, cfg.attention_budget) {
  if (cfg_.telemetry != nullptr) {
    subject_ = cfg_.telemetry->intern_subject(id_);
  }
  if (cfg_.tracer != nullptr) {
    // Subjects intern on the tracer's own bus, so a tracer can be used
    // with or without sharing the telemetry bus above.
    trace_subject_ = cfg_.tracer->bus().intern_subject(id_);
    n_step_ = cfg_.tracer->intern_name("step");
    n_observe_ = cfg_.tracer->intern_name("observe");
    n_knowledge_ = cfg_.tracer->intern_name("knowledge");
    n_decide_ = cfg_.tracer->intern_name("decide");
    n_act_ = cfg_.tracer->intern_name("act");
    n_outcome_ = cfg_.tracer->intern_name("outcome");
    n_flow_obs_ = cfg_.tracer->intern_name("observation");
    n_flow_stim_ = cfg_.tracer->intern_name("stimulus");
    n_flow_decision_ = cfg_.tracer->intern_name("decision");
    k_signals_ = cfg_.tracer->intern_name("signals");
    k_action_ = cfg_.tracer->intern_name("action_index");
    k_reward_ = cfg_.tracer->intern_name("reward");
  }
  if (cfg_.levels.has(Level::Stimulus)) {
    stimulus_ = std::make_unique<StimulusAwareness>(cfg_.stimulus);
  }
  if (cfg_.levels.has(Level::Interaction)) {
    interaction_ = std::make_unique<InteractionAwareness>(cfg_.interaction);
  }
  if (cfg_.levels.has(Level::Time)) {
    time_ = std::make_unique<TimeAwareness>(cfg_.time);
  }
  if (cfg_.levels.has(Level::Meta)) {
    meta_ = std::make_unique<MetaSelfAwareness>(cfg_.meta);
    if (stimulus_) meta_->watch(*stimulus_);
    if (interaction_) meta_->watch(*interaction_);
    if (time_) meta_->watch(*time_);
    // When the world shifts under the models, learned action values are
    // stale too: the meta level resets the policy alongside the processes.
    meta_->on_drift("policy-reset", [this] {
      if (policy_) policy_->reset();
    });
  }
}

void SelfAwareAgent::add_sensor(const std::string& name,
                                std::function<double()> read) {
  sensors_.emplace_back(name, std::move(read));
  attention_.register_signal(name);
}

void SelfAwareAgent::add_action(const std::string& name,
                                std::function<void()> act) {
  action_names_.push_back(name);
  actuators_.push_back(std::move(act));
}

void SelfAwareAgent::set_policy(std::unique_ptr<Policy> policy) {
  policy_ = std::move(policy);
}

void SelfAwareAgent::set_goal_metrics(std::vector<std::string> metrics) {
  if (!cfg_.levels.has(Level::Goal)) return;
  goal_aware_ = std::make_unique<GoalAwareness>(goals_, std::move(metrics));
  if (meta_) meta_->watch(*goal_aware_);
}

Observation SelfAwareAgent::observe() {
  Observation obs;
  const auto chosen = attention_.select(rng_);
  for (const auto& [name, read] : sensors_) {
    // With no budget (All) `chosen` holds every signal; otherwise sample
    // only the attended subset.
    if (std::find(chosen.begin(), chosen.end(), name) == chosen.end()) {
      continue;
    }
    const double v = read();
    // A NaN read is a dropped-out sensor (the fault surface): skip it so
    // the key simply stops updating and its knowledge ages out.
    if (std::isnan(v)) {
      ++sensor_gaps_;
      continue;
    }
    obs[name] = v;
    attention_.feed(name, v);
  }
  return obs;
}

void SelfAwareAgent::run_processes(double t, const Observation& obs) {
  // Order matters and mirrors the levels: raw stimuli first, then models
  // over them, goals over those, and the meta level last so it sees this
  // step's goal.utility.
  // Degradation (set_active_levels) pauses a constructed process without
  // destroying it: skipped here, state intact, resumes on reactivation.
  if (stimulus_ && active_levels_.has(Level::Stimulus)) {
    stimulus_->update(t, obs, kb_);
  }
  if (interaction_ && active_levels_.has(Level::Interaction)) {
    interaction_->update(t, obs, kb_);
  }
  if (time_ && active_levels_.has(Level::Time)) {
    time_->update(t, obs, kb_);
  }
  if (goal_aware_ && active_levels_.has(Level::Goal)) {
    goal_aware_->update(t, obs, kb_);
  }
  if (meta_ && active_levels_.has(Level::Meta)) {
    meta_->update(t, obs, kb_);
  }
}

Decision SelfAwareAgent::step(double t) {
  ++steps_;
  last_step_t_ = t;
  sim::Tracer* tr = active_tracer();
  auto s_step = tr ? tr->span(t, trace_subject_, n_step_)
                   : sim::Tracer::Span{};

  // Observe: the attention-filtered sensor sweep opens the causal chain.
  sim::TraceId obs_id = 0;
  Observation obs;
  {
    auto s_obs = tr ? tr->span(t, trace_subject_, n_observe_)
                    : sim::Tracer::Span{};
    obs = observe();
    if (tr) {
      s_obs.arg(k_signals_, static_cast<double>(obs.size()));
      obs_id = s_obs.id();
      tr->flow(t, sim::FlowPhase::Begin, obs_id, trace_subject_, n_flow_obs_);
    }
  }
  if (cfg_.telemetry != nullptr && cfg_.telemetry->enabled()) {
    std::string sampled;
    for (const auto& [sig, v] : obs) {
      (void)v;
      if (!sampled.empty()) sampled += ',';
      sampled += sig;
    }
    cfg_.telemetry->record(t, sim::TelemetryBus::kObservation, subject_,
                           static_cast<double>(obs.size()), sampled);
  }
  // Without stimulus awareness (disabled at construction or degraded away)
  // nothing else mirrors raw readings into the KB; do it here so higher
  // levels and policies can still see them.
  if (!stimulus_ || !active_levels_.has(Level::Stimulus)) {
    for (const auto& [sig, v] : obs) {
      kb_.put_number(sig, v, t, 1.0, Scope::Public, "sensor");
    }
  }

  // Knowledge: awareness processes fold the observation into the KB; the
  // observation chain passes through here, and each novel stimulus opens
  // its own chain (its id is stamped onto the StimulusEvent).
  std::vector<sim::TraceId> cited;
  {
    auto s_know = tr ? tr->span(t, trace_subject_, n_knowledge_)
                     : sim::Tracer::Span{};
    run_processes(t, obs);
    if (tr) {
      tr->flow(t, sim::FlowPhase::Step, obs_id, trace_subject_, n_flow_obs_);
      cited.push_back(obs_id);
      if (stimulus_ && active_levels_.has(Level::Stimulus)) {
        for (StimulusEvent& sev : stimulus_->events()) {
          sev.trace_id = tr->next_id();
          tr->flow(t, sim::FlowPhase::Begin, sev.trace_id, trace_subject_,
                   n_flow_stim_);
          cited.push_back(sev.trace_id);
        }
      }
    }
  }

  Decision d;
  d.action_index = static_cast<std::size_t>(-1);
  if (policy_ && !action_names_.empty()) {
    // Decide: evidence chains terminate here; the decision chain opens.
    {
      auto s_dec = tr ? tr->span(t, trace_subject_, n_decide_)
                      : sim::Tracer::Span{};
      d = policy_->decide(t, kb_, action_names_, rng_);
      if (tr) {
        d.trace_id = s_dec.id();
        s_dec.arg(k_action_, static_cast<double>(d.action_index));
        for (const sim::TraceId id : cited) {
          tr->flow(t, sim::FlowPhase::End, id, trace_subject_,
                   id == obs_id ? n_flow_obs_ : n_flow_stim_);
        }
        tr->flow(t, sim::FlowPhase::Begin, d.trace_id, trace_subject_,
                 n_flow_decision_);
      }
    }
    // Act: the chosen actuator fires inside the decision chain.
    if (d.action_index < actuators_.size()) {
      auto s_act = tr ? tr->span(t, trace_subject_, n_act_)
                      : sim::Tracer::Span{};
      actuators_[d.action_index]();
      if (tr) {
        tr->flow(t, sim::FlowPhase::Step, d.trace_id, trace_subject_,
                 n_flow_decision_);
      }
    }
    if (cfg_.telemetry != nullptr && cfg_.telemetry->enabled()) {
      cfg_.telemetry->record(t, sim::TelemetryBus::kDecision, subject_,
                             static_cast<double>(d.action_index),
                             d.action + ": " + d.rationale);
    }
    pending_outcome_ = d.trace_id;
    explain_decision(t, d, std::move(cited));
  }
  return d;
}

void SelfAwareAgent::explain_decision(double t, const Decision& d,
                                      std::vector<sim::TraceId> cited) {
  if (!explainer_.enabled()) {
    explainer_.note_unexplained();
    return;
  }
  Explanation e;
  e.t = t;
  e.agent = id_;
  e.decision = d;
  e.trace_id = d.trace_id;
  e.cited = std::move(cited);
  for (const auto& key : d.evidence) {
    if (const auto item = kb_.latest(key)) {
      e.evidence.push_back(
          {key, as_number(item->value), item->confidence});
    }
  }
  if (goal_aware_) {
    e.goal_utility = goal_aware_->current_utility();
    e.has_goal = true;
  }
  explainer_.record(std::move(e));
}

void SelfAwareAgent::reward(double r) {
  if (policy_) policy_->feedback(r);
  // Outcome: reward settles the pending decision chain. The span sits at
  // the deciding step's time (reward arrives between sim events).
  sim::Tracer* tr = active_tracer();
  if (tr != nullptr && pending_outcome_ != 0) {
    auto s = tr->span(last_step_t_, trace_subject_, n_outcome_);
    s.arg(k_reward_, r);
    tr->flow(last_step_t_, sim::FlowPhase::End, pending_outcome_,
             trace_subject_, n_flow_decision_);
    pending_outcome_ = 0;
  }
}

void SelfAwareAgent::set_active_levels(LevelSet levels) {
  // Clamp to the constructor-time capability set: degradation can only
  // pause processes that exist, never conjure new ones.
  for (const Level l : {Level::Stimulus, Level::Interaction, Level::Time,
                        Level::Goal, Level::Meta}) {
    if (!cfg_.levels.has(l)) levels.unset(l);
  }
  active_levels_ = levels;
}

void SelfAwareAgent::record_interaction(const std::string& peer, bool success,
                                        double value) {
  if (interaction_) interaction_->record_interaction(peer, success, value);
}

std::string SelfAwareAgent::describe() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "Agent '" << id_ << "': levels " << cfg_.levels.to_string() << "; "
     << sensors_.size() << " sensor" << (sensors_.size() == 1 ? "" : "s");
  if (!sensors_.empty()) {
    os << " (";
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
      os << (i ? ", " : "") << sensors_[i].first;
    }
    os << ")";
  }
  os << "; " << action_names_.size() << " action"
     << (action_names_.size() == 1 ? "" : "s") << "; policy "
     << (policy_ ? policy_->name() : "none") << "; goals: "
     << goals_.objectives() << " objective"
     << (goals_.objectives() == 1 ? "" : "s") << ", " << goals_.constraints()
     << " constraint" << (goals_.constraints() == 1 ? "" : "s")
     << "; knowledge: " << kb_.size() << " keys.";

  std::vector<const AwarenessProcess*> procs;
  if (stimulus_) procs.push_back(stimulus_.get());
  if (interaction_) procs.push_back(interaction_.get());
  if (time_) procs.push_back(time_.get());
  if (goal_aware_) procs.push_back(goal_aware_.get());
  if (meta_) procs.push_back(meta_.get());
  if (!procs.empty()) {
    os << " Process quality:";
    for (const auto* p : procs) {
      os << ' ' << p->name() << "=" << p->quality();
    }
    os << ".";
  }
  os << " Decisions taken: " << explainer_.decisions() << " (explained "
     << static_cast<int>(explainer_.coverage() * 100.0) << "%).";
  return os.str();
}

double SelfAwareAgent::current_utility() const {
  return goal_aware_ ? goal_aware_->current_utility() : 0.0;
}

}  // namespace sa::core
