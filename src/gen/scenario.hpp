// Scenario: a ScenarioSpec expanded into a running world.
//
// One sim::Engine hosts every substrate the spec enables, wired the way
// the hand-written benches wire them (manager/fleet/autoscaler bind()
// adapters, fault::Injector surfaces, AgentRuntime knowledge exchange) —
// plus the cross-substrate couplings that make the composite a *city*
// rather than four co-resident silos:
//
//   cameras -> cpn    each camera epoch, tracked-object reports become
//                     packets injected at stream-chosen gateway nodes;
//   cpn -> cloud      each cloud epoch, the delivery rate upstream
//                     modulates the backend demand base (reports that
//                     never arrive are not analysed);
//   cloud -> edge     each cloud epoch, backend utilisation re-targets
//                     the edge platforms' workload rates (overflow
//                     analytics are offloaded to the edge nodes).
//
// Every coupling reads only harvested epoch aggregates at epoch
// boundaries and draws only from the scenario's own forked streams, so
// the whole composite stays byte-deterministic in (spec, seed) — the
// property the metamorphic suites in tests/gen assert.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "cloud/cluster.hpp"
#include "core/degrade.hpp"
#include "core/runtime.hpp"
#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "fault/fault.hpp"
#include "gen/spec.hpp"
#include "multicore/manager.hpp"
#include "multicore/platform.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"
#include "svc/fleet.hpp"
#include "svc/network.hpp"

namespace sa::ckpt {
class WorldCheckpoint;
}  // namespace sa::ckpt

namespace sa::gen {

class Scenario {
 public:
  struct Options {
    /// false = design-time baselines everywhere (static manager,
    /// homogeneous fleet, static autoscaler/router, no exchange, no
    /// degradation ladder); true = the paper's self-aware stack.
    bool self_aware = true;
    /// Optional observability; all non-owning, null disables. Attaching
    /// any of these never perturbs the trajectory (asserted by
    /// tests/gen).
    sim::TelemetryBus* telemetry = nullptr;
    sim::Tracer* tracer = nullptr;
    sim::MetricsRegistry* metrics = nullptr;
  };

  /// Expands `spec` under `run_seed` and wires the world. Throws
  /// std::invalid_argument if the spec enables no substrate.
  Scenario(const ScenarioSpec& spec, std::uint64_t run_seed, Options opts);
  Scenario(const ScenarioSpec& spec, std::uint64_t run_seed)
      : Scenario(spec, run_seed, Options{}) {}
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs to the spec's world horizon (resumable: run_until beyond).
  void run();
  void run_until(double t);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] core::AgentRuntime& runtime() noexcept { return runtime_; }
  [[nodiscard]] fault::Injector& injector() noexcept { return injector_; }
  [[nodiscard]] const fault::FaultPlan& fault_plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  /// Every agent alive in the world (edge managers, camera agents when
  /// learning, the autoscaler) — e.g. for serve::SimBridge.
  [[nodiscard]] std::vector<core::SelfAwareAgent*> agents();

  // Substrate access (null when the section is disabled).
  [[nodiscard]] std::size_t edge_nodes() const noexcept {
    return managers_.size();
  }
  [[nodiscard]] multicore::Manager* edge_manager(std::size_t i) {
    return managers_[i].get();
  }
  [[nodiscard]] svc::CameraFleet* fleet() noexcept { return fleet_.get(); }
  [[nodiscard]] cloud::Autoscaler* autoscaler() noexcept {
    return autoscaler_.get();
  }
  [[nodiscard]] cpn::PacketNetwork* packet_network() noexcept {
    return cpnnet_.get();
  }

  /// Registers this world's checkpointable components on `wc`: per-agent
  /// knowledge bases, runtime counters, the fault injector, every
  /// degradation ladder, and — last, per the restore protocol — the
  /// engine timeline. A scenario is restored by *replay* (rebuild from
  /// the same (spec, seed), re-apply the control journal, run_until the
  /// checkpoint's t — agent/learner internals are reproduced by
  /// re-execution, not serialized), then attested byte-for-byte with
  /// WorldCheckpoint::verify(); the registered restore lambdas serve the
  /// direct-import layer tests.
  void register_checkpoint(ckpt::WorldCheckpoint& wc);

  /// Deterministic whole-run metrics in a fixed order (rows depend only
  /// on which sections are enabled, so same-spec runs byte-compare).
  /// Includes the headline "goal" — the mean of each enabled substrate's
  /// normalised health — plus per-substrate aggregates and fault/exchange
  /// counters.
  [[nodiscard]] std::vector<std::pair<std::string, double>> summary() const;

 private:
  void build_edge();
  void build_cameras();
  void build_cloud();
  void build_cpn();
  void wire_couplings();
  void wire_faults();

  ScenarioSpec spec_;
  std::uint64_t seed_;
  Options opts_;

  sim::Engine engine_;
  core::AgentRuntime runtime_;
  fault::Injector injector_;
  fault::FaultPlan plan_;

  // Edge: one platform + manager per node.
  std::vector<std::unique_ptr<multicore::Platform>> platforms_;
  std::vector<std::unique_ptr<multicore::Manager>> managers_;
  std::vector<std::unique_ptr<core::DegradationPolicy>> degradations_;
  std::vector<EdgeWorkload> workloads_;

  // Cameras.
  std::unique_ptr<svc::Network> camnet_;
  std::unique_ptr<svc::CameraFleet> fleet_;

  // Cloud.
  std::unique_ptr<cloud::Cluster> cluster_;
  std::unique_ptr<cloud::DemandModel> demand_;
  std::unique_ptr<cloud::Autoscaler> autoscaler_;

  // CPN.
  std::unique_ptr<cpn::PacketNetwork> cpnnet_;
  std::unique_ptr<cpn::TrafficGenerator> traffic_;
  std::vector<std::size_t> gateways_;  ///< camera-report entry nodes
  std::size_t backend_node_ = 0;       ///< cloud-gateway node

  // Coupling state (scenario-owned streams; substrates never see them).
  sim::Rng couple_rng_;
  double pending_reports_ = 0.0;  ///< camera reports awaiting injection

  // Whole-run aggregates the summary reports (substrates keep their own;
  // these cover the couplings and the CPN harvest windows).
  sim::RunningStats cpn_delivery_, cpn_latency_;
  sim::RunningStats cloud_sla_, cloud_cost_;
  std::size_t reports_injected_ = 0;
  std::size_t cpn_delivered_ = 0, cpn_dropped_ = 0;
};

}  // namespace sa::gen
