#include "core/knowledge.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace sa::core {

std::string to_string(const Value& v) {
  std::ostringstream os;
  if (const auto* b = std::get_if<bool>(&v)) {
    os << (*b ? "true" : "false");
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    os << *d;
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    os << *s;
  } else {
    const auto& vec = std::get<std::vector<double>>(v);
    os << '[';
    for (std::size_t i = 0; i < vec.size(); ++i) os << (i ? "," : "") << vec[i];
    os << ']';
  }
  return os.str();
}

KnowledgeBase::KeyId KnowledgeBase::intern(std::string_view key) {
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const KeyId id = static_cast<KeyId>(entries_.size());
  key_names_.emplace_back(key);  // deque: stable address for the view below
  index_.emplace(std::string_view(key_names_.back()), id);
  entries_.emplace_back();
  entries_.back().ring.reserve(std::min<std::size_t>(history_limit_, 8));
  // Keep the id list sorted by key name so iteration stays deterministic
  // (ascending key order, as the std::map store used to give for free).
  const auto pos = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [this](KeyId a, std::string_view k) { return key_names_[a] < k; });
  sorted_.insert(pos, id);
  return id;
}

void KnowledgeBase::put(std::string_view key, KnowledgeItem item) {
  // Items that declared no shelf life inherit the base's default.
  if (std::isinf(item.ttl)) item.ttl = default_ttl_;
  const KeyId id = intern(key);
  KeyEntry& e = entries_[id];
  if (history_limit_ == 0) {
    // Degenerate store: the key exists but retains nothing.
    const std::string& bare = key_names_[id];
    for (const auto& [handle, l] : listeners_) {
      (void)handle;
      l(bare, item);
    }
    return;
  }
  const KnowledgeItem* stored = nullptr;
  if (e.ring.size() < history_limit_) {
    e.ring.push_back(std::move(item));
    stored = &e.ring.back();
  } else {
    // Ring is warm: overwrite the oldest slot in place, no allocation.
    e.ring[e.head] = std::move(item);
    stored = &e.ring[e.head];
    e.head = (e.head + 1) % e.ring.size();
  }
  const std::string& name = key_names_[id];
  for (const auto& [handle, l] : listeners_) {
    (void)handle;
    l(name, *stored);
  }
}

void KnowledgeBase::put_number(std::string_view key, double value, double time,
                               double confidence, Scope scope,
                               std::string source) {
  put(key, KnowledgeItem{Value{value}, time, confidence, scope,
                         std::move(source)});
}

std::optional<KnowledgeItem> KnowledgeBase::latest(std::string_view key) const {
  const KeyId id = find(key);
  if (id == kNoKey) return std::nullopt;
  const KnowledgeItem* item = latest_item(id);
  if (!item) return std::nullopt;
  return *item;
}

double KnowledgeBase::number(std::string_view key, double fallback) const {
  const KeyId id = find(key);
  if (id == kNoKey) return fallback;
  const KnowledgeItem* item = latest_item(id);
  return item ? as_number(item->value, fallback) : fallback;
}

double KnowledgeBase::confidence(std::string_view key) const {
  const KeyId id = find(key);
  if (id == kNoKey) return 0.0;
  const KnowledgeItem* item = latest_item(id);
  return item ? item->confidence : 0.0;
}

KnowledgeBase::HistoryView KnowledgeBase::history(std::string_view key) const {
  const KeyId id = find(key);
  if (id == kNoKey) return {};
  const KeyEntry& e = entries_[id];
  if (e.ring.empty()) return {};
  return HistoryView(e.ring.data(), e.head, e.ring.size(), e.ring.size());
}

bool KnowledgeBase::contains(std::string_view key) const {
  return find(key) != kNoKey;
}

bool KnowledgeBase::fresh(std::string_view key, double now) const {
  const KeyId id = find(key);
  if (id == kNoKey) return false;
  const KnowledgeItem* item = latest_item(id);
  return item != nullptr && now - item->time <= item->ttl;
}

std::vector<std::string> KnowledgeBase::stale_keys(std::string_view prefix,
                                                   double now) const {
  std::vector<std::string> out;
  for (const KeyId id : sorted_) {
    const std::string& name = key_names_[id];
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const KnowledgeItem* item = latest_item(id);
    if (item && now - item->time > item->ttl) out.push_back(name);
  }
  return out;
}

std::vector<std::string> KnowledgeBase::keys() const {
  std::vector<std::string> out;
  out.reserve(sorted_.size());
  for (const KeyId id : sorted_) out.push_back(key_names_[id]);
  return out;
}

std::vector<std::string> KnowledgeBase::keys_with_prefix(
    std::string_view prefix) const {
  std::vector<std::string> out;
  for (const KeyId id : sorted_) {
    const std::string& name = key_names_[id];
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

std::vector<std::pair<std::string, KnowledgeItem>>
KnowledgeBase::public_snapshot() const {
  std::vector<std::pair<std::string, KnowledgeItem>> out;
  for (const KeyId id : sorted_) {
    const KnowledgeItem* item = latest_item(id);
    if (item && item->scope == Scope::Public) {
      out.emplace_back(key_names_[id], *item);
    }
  }
  return out;
}

std::size_t KnowledgeBase::subscribe(Listener l) {
  listeners_.emplace_back(next_handle_, std::move(l));
  return next_handle_++;
}

void KnowledgeBase::unsubscribe(std::size_t handle) {
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [handle](const auto& p) { return p.first == handle; }),
      listeners_.end());
}

void KnowledgeBase::restore_key(std::string_view key,
                                std::vector<KnowledgeItem> items) {
  const KeyId id = intern(key);
  KeyEntry& e = entries_[id];
  if (items.size() > history_limit_) {
    items.erase(items.begin(),
                items.begin() +
                    static_cast<std::ptrdiff_t>(items.size() - history_limit_));
  }
  e.ring = std::move(items);
  e.head = 0;  // linearized oldest-first: reads are layout-agnostic
}

void KnowledgeBase::clear() {
  index_.clear();     // views point into key_names_: drop them first
  key_names_.clear();
  entries_.clear();
  sorted_.clear();
}

}  // namespace sa::core
