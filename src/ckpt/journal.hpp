// Control-stream record/replay (sa::ckpt).
//
// Every state-mutating POST /control command the serve bridge *applies*
// (inject, histogram — pause/resume/shutdown mutate nothing the sim
// reads) is appended here with the sim-time stamp at which it landed.
// Replaying the journal against a rebuilt world schedules each command at
// its original (t, order) through the engine, so a served run — whose
// perturbations arrived from live HTTP clients — becomes reproducible
// offline: rebuild, replay, byte-identical trajectory.
//
// Entries have three interchangeable representations:
//   * structured (ControlCommand) — what record/replay operate on,
//   * a canonical form body ("cmd=inject&kind=…") — the same syntax the
//     HTTP handler accepts, used in the human-editable --control-journal
//     spec ("T body; T body"),
//   * a checkpoint section (save/load via Buffer/Cursor) with exact f64
//     bit patterns.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/format.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/telemetry.hpp"

namespace sa::ckpt {

/// One mailbox command, structurally. Mirrors the serve bridge's mailbox:
/// only commands that mutate sim-thread state are journaled.
struct ControlCommand {
  enum class Kind : std::uint8_t { kInject = 0, kHistogram = 1 };
  Kind kind = Kind::kInject;
  // kInject:
  fault::FaultKind fault_kind = fault::FaultKind::LinkLoss;
  std::size_t unit = 0;
  double magnitude = 1.0;
  double duration = 0.0;
  // kHistogram:
  std::string category;
  double lo = 0.0, hi = 1.0;
  std::size_t bins = 20;

  /// Canonical x-www-form-urlencoded body (doubles printed round-trip).
  [[nodiscard]] std::string to_form() const;
  /// Parses a canonical/handler-style form body. kMalformed with a
  /// human-readable reason on unknown cmd, bad kind, or bad numbers.
  [[nodiscard]] static Status parse_form(std::string_view body,
                                         ControlCommand& out);
};

struct JournalEntry {
  double t = 0.0;
  ControlCommand cmd;
};

/// Thread-safe append log of applied control commands. The sim thread
/// records at drain time; the harness's checkpoint supervisor snapshots
/// concurrently.
class ControlJournal {
 public:
  void record(double t, ControlCommand cmd) {
    const std::scoped_lock lk(mu_);
    entries_.push_back(JournalEntry{t, std::move(cmd)});
  }
  [[nodiscard]] std::vector<JournalEntry> snapshot() const {
    const std::scoped_lock lk(mu_);
    return entries_;
  }
  void set_entries(std::vector<JournalEntry> entries) {
    const std::scoped_lock lk(mu_);
    entries_ = std::move(entries);
  }
  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lk(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<JournalEntry> entries_;
};

/// Parses a journal spec: entries separated by ';', each "T form-body",
/// e.g. "0.7 cmd=inject&kind=link-loss&unit=1&mag=1&dur=3". Whitespace
/// around entries is ignored; empty items are skipped.
[[nodiscard]] Status parse_journal_spec(std::string_view spec,
                                        std::vector<JournalEntry>& out);
/// Renders entries back to the spec syntax (round-trips via %.17g).
[[nodiscard]] std::string journal_spec(const std::vector<JournalEntry>& in);

/// Checkpoint-section (de)serialization.
void save_journal(const std::vector<JournalEntry>& in, Buffer& out);
[[nodiscard]] Status load_journal(Cursor& in, std::vector<JournalEntry>& out);

/// Schedules every entry on `engine` at its recorded sim time and `order`
/// (use the bridge's event order, 1000, so replayed commands land after
/// everything else at the same instant — exactly where a drained mailbox
/// command landed originally). Inject commands need `injector`; histogram
/// commands need `bus`; entries whose target is absent are skipped, same
/// as the bridge's drain.
void schedule_replay(sim::Engine& engine, std::vector<JournalEntry> entries,
                     int order, fault::Injector* injector,
                     sim::TelemetryBus* bus);

}  // namespace sa::ckpt
