#include "core/collective.hpp"

#include <algorithm>
#include <cmath>

namespace sa::core {

double CollectiveAggregator::max_error(double truth) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < nodes(); ++i) {
    if (!alive(i)) continue;
    worst = std::max(worst, std::fabs(estimate(i) - truth));
  }
  return worst;
}

double CollectiveAggregator::mean_error(double truth) const {
  double acc = 0.0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < nodes(); ++i) {
    if (!alive(i)) continue;
    acc += std::fabs(estimate(i) - truth);
    ++live;
  }
  return live ? acc / static_cast<double>(live) : 0.0;
}

// ---------------------------------------------------------------- central --

CentralAggregator::CentralAggregator(std::size_t n)
    : value_(n, 0.0), estimate_(n, 0.0), alive_(n, true) {}

void CentralAggregator::reset(const std::vector<double>& values) {
  value_ = values;
  estimate_.assign(values.size(), 0.0);
  alive_.assign(values.size(), true);
}

std::size_t CentralAggregator::round(sim::Rng&) {
  if (!alive_[0]) return 0;  // coordinator down: nothing happens
  double acc = 0.0;
  std::size_t reporting = 0, messages = 0;
  for (std::size_t i = 0; i < value_.size(); ++i) {
    if (!alive_[i]) continue;
    acc += value_[i];
    ++reporting;
    if (i != 0) ++messages;  // report to coordinator
  }
  const double mean = reporting ? acc / static_cast<double>(reporting) : 0.0;
  for (std::size_t i = 0; i < value_.size(); ++i) {
    if (!alive_[i]) continue;
    estimate_[i] = mean;
    if (i != 0) ++messages;  // broadcast back
  }
  return messages;
}

double CentralAggregator::estimate(std::size_t node) const {
  return estimate_[node];
}

void CentralAggregator::fail_node(std::size_t node) { alive_[node] = false; }

// ----------------------------------------------------------------- gossip --

GossipAggregator::GossipAggregator(std::size_t n)
    : sum_(n, 0.0), weight_(n, 1.0), alive_(n, true) {}

void GossipAggregator::reset(const std::vector<double>& values) {
  sum_ = values;
  weight_.assign(values.size(), 1.0);
  alive_.assign(values.size(), true);
}

std::size_t GossipAggregator::round(sim::Rng& rng) {
  std::size_t messages = 0;
  // Snapshot of shares pushed this round (synchronous push-sum).
  std::vector<double> add_sum(sum_.size(), 0.0), add_w(sum_.size(), 0.0);
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    if (!alive_[i]) continue;
    // Choose a random live peer other than self.
    std::size_t peer = i;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto cand = static_cast<std::size_t>(rng.below(sum_.size()));
      if (cand != i && alive_[cand]) {
        peer = cand;
        break;
      }
    }
    if (peer == i) continue;  // no live peer found
    const double half_s = sum_[i] / 2.0, half_w = weight_[i] / 2.0;
    sum_[i] = half_s;
    weight_[i] = half_w;
    add_sum[peer] += half_s;
    add_w[peer] += half_w;
    ++messages;
  }
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    sum_[i] += add_sum[i];
    weight_[i] += add_w[i];
  }
  return messages;
}

double GossipAggregator::estimate(std::size_t node) const {
  return weight_[node] > 1e-12 ? sum_[node] / weight_[node] : 0.0;
}

void GossipAggregator::fail_node(std::size_t node) { alive_[node] = false; }

// -------------------------------------------------------------- hierarchy --

HierarchyAggregator::HierarchyAggregator(std::size_t n, std::size_t arity)
    : arity_(std::max<std::size_t>(2, arity)),
      value_(n, 0.0),
      estimate_(n, 0.0),
      alive_(n, true) {}

void HierarchyAggregator::reset(const std::vector<double>& values) {
  value_ = values;
  estimate_.assign(values.size(), 0.0);
  alive_.assign(values.size(), true);
}

bool HierarchyAggregator::path_to_root_alive(std::size_t node) const {
  while (node != 0) {
    if (!alive_[node]) return false;
    node = (node - 1) / arity_;
  }
  return alive_[0];
}

std::size_t HierarchyAggregator::round(sim::Rng&) {
  // One full up-sweep + down-sweep. Nodes whose path to the root crosses a
  // failed node neither contribute nor receive.
  double acc = 0.0;
  std::size_t contributing = 0, messages = 0;
  for (std::size_t i = 0; i < value_.size(); ++i) {
    if (!path_to_root_alive(i)) continue;
    acc += value_[i];
    ++contributing;
    if (i != 0) ++messages;  // aggregated up edge-by-edge (amortised 1/node)
  }
  const double mean =
      contributing ? acc / static_cast<double>(contributing) : 0.0;
  for (std::size_t i = 0; i < value_.size(); ++i) {
    if (!path_to_root_alive(i)) continue;
    estimate_[i] = mean;
    if (i != 0) ++messages;  // broadcast down
  }
  return messages;
}

double HierarchyAggregator::estimate(std::size_t node) const {
  return estimate_[node];
}

void HierarchyAggregator::fail_node(std::size_t node) {
  alive_[node] = false;
}

std::size_t HierarchyAggregator::depth() const {
  std::size_t d = 0, span = 1, covered = 1;
  while (covered < value_.size()) {
    span *= arity_;
    covered += span;
    ++d;
  }
  return d;
}

}  // namespace sa::core
