file(REMOVE_RECURSE
  "CMakeFiles/multicore_tests.dir/multicore/manager_test.cpp.o"
  "CMakeFiles/multicore_tests.dir/multicore/manager_test.cpp.o.d"
  "CMakeFiles/multicore_tests.dir/multicore/platform_test.cpp.o"
  "CMakeFiles/multicore_tests.dir/multicore/platform_test.cpp.o.d"
  "CMakeFiles/multicore_tests.dir/multicore/thermal_manager_test.cpp.o"
  "CMakeFiles/multicore_tests.dir/multicore/thermal_manager_test.cpp.o.d"
  "CMakeFiles/multicore_tests.dir/multicore/thermal_test.cpp.o"
  "CMakeFiles/multicore_tests.dir/multicore/thermal_test.cpp.o.d"
  "CMakeFiles/multicore_tests.dir/multicore/workload_test.cpp.o"
  "CMakeFiles/multicore_tests.dir/multicore/workload_test.cpp.o.d"
  "multicore_tests"
  "multicore_tests.pdb"
  "multicore_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
