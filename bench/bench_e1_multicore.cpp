// E1 — H0 on the heterogeneous multicore (paper Sections II & III).
//
// Claim operationalised: a self-aware run-time manager better manages the
// throughput / tail-latency / power trade-off than a design-time-fixed
// configuration or a model-free reactive controller, when the workload
// changes phase during operation.
//
// Table 1: whole-run metrics per manager variant (3 seeds each), plus a
//          brute-forced "oracle" that re-picks the best fixed action per
//          phase (upper bound).
// Table 2: mean utility per workload phase for the key variants — shows
//          *where* the self-aware manager earns its advantage.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 960;  // 8 full workload cycles at 0.5 s epochs
const std::vector<std::uint64_t> kSeeds{11, 12, 13};

struct RunResult {
  sim::RunningStats utility, power, latency;
  double cap_violation = 0.0;
  std::map<std::string, sim::RunningStats> per_phase;
};

RunResult run_variant(Manager::Variant v, std::uint64_t seed,
                      std::size_t static_action = 3) {
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = v;
  p.seed = seed;
  p.static_action = static_action;
  Manager mgr(platform, p);
  RunResult r;
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    const double u = mgr.run_epoch();
    r.utility.add(u);
    r.power.add(mgr.last_stats().mean_power);
    r.latency.add(mgr.last_stats().p95_latency);
    r.per_phase[workload.current(platform.now() - 0.25).name].add(u);
  }
  r.cap_violation = mgr.cap_violation_rate();
  return r;
}

/// Oracle: for each phase, pre-computes the best fixed action by sweeping,
/// then replays the run switching to the per-phase winner (an upper bound a
/// real system cannot have at design time, because it requires knowing the
/// phases and their timing).
std::vector<std::size_t> best_action_per_phase() {
  auto workload = PhasedWorkload::standard();
  Platform probe(PlatformConfig::big_little(2, 4), 1);
  const auto actions = default_actions(probe);
  std::vector<std::size_t> best;
  for (const auto& phase : workload.phases()) {
    double best_u = -1.0;
    std::size_t best_a = 0;
    for (std::size_t a = 0; a < actions.size(); ++a) {
      Platform p(PlatformConfig::big_little(2, 4), 99);
      Manager::Params mp;
      mp.variant = Manager::Variant::Static;
      mp.static_action = a;
      Manager mgr(p, mp);
      p.set_workload(phase.rate, phase.mean_work, phase.deadline_s);
      double total = 0.0;
      int n = 0;
      for (int e = 0; e < 60; ++e) {
        const double u = mgr.run_epoch();
        if (e >= 20) {
          total += u;
          ++n;
        }
      }
      if (total / n > best_u) {
        best_u = total / n;
        best_a = a;
      }
    }
    best.push_back(best_a);
  }
  return best;
}

RunResult run_oracle(std::uint64_t seed,
                     const std::vector<std::size_t>& phase_actions) {
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = Manager::Variant::Static;
  p.seed = seed;
  Manager mgr(platform, p);
  const auto actions = default_actions(platform);
  RunResult r;
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    const std::size_t ph = workload.phase_index(platform.now());
    const auto& a = actions[phase_actions[ph]];
    platform.set_all_freq(a.freq_level);
    platform.set_mapping(a.mapping);
    const double u = mgr.run_epoch();
    // run_epoch's own (static) decision re-applies a fixed config; override
    // again so the oracle's choice governs the next epoch.
    platform.set_all_freq(a.freq_level);
    platform.set_mapping(a.mapping);
    r.utility.add(u);
    r.power.add(mgr.last_stats().mean_power);
    r.latency.add(mgr.last_stats().p95_latency);
    r.per_phase[workload.current(platform.now() - 0.25).name].add(u);
  }
  r.cap_violation = mgr.cap_violation_rate();
  return r;
}

}  // namespace

int main() {
  std::cout << "E1: self-aware vs static vs reactive run-time management of "
               "a big.LITTLE platform\nWorkload: "
            << kEpochs << " epochs x 0.5 s, phases steady/burst/interactive, "
            << kSeeds.size() << " seeds.\n\n";

  const auto oracle_actions = best_action_per_phase();

  struct Row {
    std::string name;
    std::vector<RunResult> runs;
  };
  std::vector<Row> rows;
  rows.push_back({"static (design-time)", {}});
  rows.push_back({"reactive (rules)", {}});
  rows.push_back({"self-aware", {}});
  rows.push_back({"oracle (per-phase best)", {}});
  for (const auto seed : kSeeds) {
    rows[0].runs.push_back(run_variant(Manager::Variant::Static, seed));
    rows[1].runs.push_back(run_variant(Manager::Variant::Reactive, seed));
    rows[2].runs.push_back(run_variant(Manager::Variant::SelfAware, seed));
    rows[3].runs.push_back(run_oracle(seed, oracle_actions));
  }

  sim::Table t1("E1.1  whole-run comparison (mean over seeds)",
                {"manager", "utility", "power_w", "p95_s", "cap_viol"});
  for (const auto& row : rows) {
    sim::RunningStats u, p, l, v;
    for (const auto& r : row.runs) {
      u.add(r.utility.mean());
      p.add(r.power.mean());
      l.add(r.latency.mean());
      v.add(r.cap_violation);
    }
    t1.add_row({row.name, u.mean(), p.mean(), l.mean(), v.mean()});
  }
  t1.print(std::cout);

  sim::Table t2("E1.2  mean utility by workload phase",
                {"manager", "steady", "burst", "interactive"});
  for (const auto& row : rows) {
    sim::RunningStats s, b, i;
    for (const auto& r : row.runs) {
      s.add(r.per_phase.at("steady").mean());
      b.add(r.per_phase.at("burst").mean());
      i.add(r.per_phase.at("interactive").mean());
    }
    t2.add_row({row.name, s.mean(), b.mean(), i.mean()});
  }
  t2.print(std::cout);
  return 0;
}
