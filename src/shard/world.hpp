// ShardedWorld: one generated world, N engine shards, byte-identical to
// the single-engine run.
//
// Topology. The world's units (camera districts, CPN grids, edge nodes —
// see shard::partition_world) are placed on N worker-owned sim::Engines
// via gen::Scenario::Options::Placement. Everything that couples units or
// substrates stays on one *coordinator* engine (the Scenario's own):
// cross-substrate coupling windows, the cloud backend + autoscaler,
// knowledge exchange and its retries, the whole fault injector, control
// journal replay and the serve bridge. Shard-local events therefore never
// read or write another shard's state, and every cross-shard interaction
// executes on the coordinator.
//
// Protocol (conservative, lookahead-windowed). The gap to the
// coordinator's next event (t, o) is the lookahead window: every shard
// may safely advance through all events strictly before (t, o) because no
// cross-shard effect can occur inside the window. The loop is
//
//   while coordinator has an event (t, o) <= horizon:
//     barrier: every shard runs run_until_before(t, o) on its worker
//     drain + merge the inter-shard mailboxes (shard::merge_remote)
//     coordinator executes the one event at (t, o)
//   barrier: every shard runs run_until(horizon); coordinator follows.
//
// Why byte-equality holds. Within one engine, ties at (t, order) resolve
// by scheduling sequence exactly as in the monolithic world (the same
// build code runs in the same order). Across the coordinator/shard split,
// a tie at (t, order) is always "long-period coordinator stream vs
// short-period shard stream" (coupling window vs substrate step at order
// 0, autoscaler vs manager/degradation epoch at order 1): in the
// monolithic engine the longer-period stream was armed further in the
// past, carries the older sequence number, and runs *first* — which is
// precisely what the barrier loop reproduces by running the coordinator
// event before releasing the shards into (t, order). validate() rejects
// the spec configurations where that dominance argument would not hold
// (window not strictly longer than the step period; manager epochs longer
// than the autoscaler's). Mailbox traffic is re-ordered by the global
// (t, order, origin unit, per-origin seq) key, which is independent of
// the unit-to-shard packing. Hence the trajectory — and every downstream
// summary byte — matches the single-engine run for any shard count
// (tests/support/metamorphic.hpp: shard_count_invariant).
//
// Observability. Shard-owned components run off the coordinator thread,
// so they are built without telemetry/tracer hooks; coordinator-owned
// components (cloud, injector, exchange, bridge) keep them. Options
// deliberately has no tracer seam, and checkpointing a sharded run is a
// typed error (the exp harness rejects --checkpoint with --shards > 1
// before construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "shard/mailbox.hpp"
#include "shard/partition.hpp"
#include "sim/engine.hpp"
#include "sim/telemetry.hpp"

namespace sa::shard {

/// Typed configuration error: the spec or options cannot be sharded
/// deterministically (never a silently-different trajectory).
class ShardError : public std::runtime_error {
 public:
  explicit ShardError(const std::string& what) : std::runtime_error(what) {}
};

class ShardedWorld {
 public:
  struct Options {
    std::size_t shards = 1;
    bool self_aware = true;
    /// Coordinator-side observability only (cloud, injector, exchange);
    /// shard-owned substrates run bare. Never perturbs the trajectory.
    /// There is deliberately no tracer or metrics seam: both would be
    /// written from shard threads (agent spans, degradation timings).
    sim::TelemetryBus* telemetry = nullptr;
  };

  /// Validates, partitions, builds the world across the shard engines and
  /// starts one worker thread per shard. Throws ShardError on specs whose
  /// sharded execution could not be proven byte-identical (see
  /// validate()), std::invalid_argument on spec expansion errors.
  ShardedWorld(const gen::ScenarioSpec& spec, std::uint64_t run_seed,
               Options opts);
  ~ShardedWorld();

  ShardedWorld(const ShardedWorld&) = delete;
  ShardedWorld& operator=(const ShardedWorld&) = delete;

  /// Runs to the spec's world horizon. Resumable: run_until beyond.
  void run();
  void run_until(double t);

  [[nodiscard]] gen::Scenario& world() noexcept { return *world_; }
  [[nodiscard]] const Partition& partition() const noexcept { return part_; }
  [[nodiscard]] std::size_t shards() const noexcept {
    return shard_engines_.size();
  }

  /// Events executed per shard engine so far (index = shard id; the last
  /// entry is the coordinator). Safe to call between runs, and from
  /// coordinator-side events (e.g. the serve bridge's publish event)
  /// while the shards are barrier-paused.
  [[nodiscard]] std::vector<std::uint64_t> shard_events() const;
  /// Cumulative wall-clock seconds the coordinator spent waiting at
  /// barriers — the sharding overhead signal behind sa_shard_lag_seconds.
  [[nodiscard]] double lag_seconds() const noexcept { return lag_seconds_; }

  /// Checks `spec`/`opts` against the byte-equality preconditions and
  /// throws ShardError naming the first violated one. Called by the
  /// constructor; public so callers can pre-flight a spec.
  static void validate(const gen::ScenarioSpec& spec, const Options& opts);

 private:
  struct Job {
    double t = 0.0;
    int order = 0;
    bool before = false;  ///< true: run_until_before(t, order); else run_until(t)
  };

  void pump(double horizon);
  void release_and_wait(const Job& job);
  void apply_mailboxes();
  void worker_loop(std::size_t shard);

  gen::ScenarioSpec spec_;
  Partition part_;
  std::vector<std::unique_ptr<sim::Engine>> shard_engines_;
  std::vector<std::unique_ptr<Outbox>> outboxes_;  // one per shard
  gen::Scenario::Options::Placement placement_;
  std::unique_ptr<gen::Scenario> world_;  // owns the coordinator engine

  double lag_seconds_ = 0.0;

  // Worker pool: one thread per shard, generation-counted barrier.
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace sa::shard
