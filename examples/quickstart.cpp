// Quickstart: a minimal self-aware agent in ~60 lines.
//
// The agent controls a trivial "heater": the action space is {off, low,
// high}, the environment is a room whose temperature drifts towards an
// outside temperature that changes halfway through the run. The agent
//   * senses temperature and power,
//   * holds an explicit goal model (comfort band vs energy),
//   * learns action values with a bandit,
//   * and can explain every decision it takes.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/agent.hpp"
#include "learn/bandit.hpp"

int main() {
  using namespace sa;

  // --- A tiny environment -------------------------------------------------
  double temperature = 12.0, outside = 5.0, heat = 0.0;
  auto env_step = [&] {
    temperature += 0.2 * (outside - temperature) + 2.0 * heat;
  };

  // --- The self-aware agent ----------------------------------------------
  core::AgentConfig cfg;
  cfg.seed = 2026;
  core::SelfAwareAgent agent("thermostat", cfg);

  agent.add_sensor("temperature", [&] { return temperature; });
  agent.add_sensor("power", [&] { return heat; });

  agent.add_action("off", [&] { heat = 0.0; });
  agent.add_action("low", [&] { heat = 0.5; });
  agent.add_action("high", [&] { heat = 1.0; });

  // Stakeholder goals: 21 C +/- 3, using as little power as possible.
  agent.goals().add_objective(
      {"temperature", core::utility::target(21.0, 3.0), 2.0});
  agent.goals().add_objective(
      {"power", core::utility::falling(0.0, 1.0), 1.0});
  agent.set_goal_metrics({"temperature", "power"});

  agent.set_policy(std::make_unique<core::BanditPolicy>(
      std::make_unique<learn::DiscountedUcb>(3)));

  // --- Run: observe-decide-act, with a mid-run environment change ---------
  for (int t = 0; t < 600; ++t) {
    if (t == 300) outside = 18.0;  // spring arrives
    agent.step(t);
    env_step();
    agent.reward(agent.current_utility());
    if ((t + 1) % 100 == 0) {
      std::printf("t=%3d outside=%4.1f temp=%5.2f utility=%.2f\n", t + 1,
                  outside, temperature, agent.current_utility());
    }
  }

  // --- Introspection: what does the agent know, and why did it act? -------
  std::printf("\nThe agent's self-knowledge (selected):\n");
  for (const auto& key :
       {"temperature", "forecast.temperature", "goal.utility",
        "stimulus.temperature.baseline"}) {
    std::printf("  %-30s = %7.3f (confidence %.2f)\n", key,
                agent.knowledge().number(key),
                agent.knowledge().confidence(key));
  }
  std::printf("\nThe agent describes itself:\n  %s\n",
              agent.describe().c_str());
  std::printf("\nWhy it just acted:\n  %s\n",
              agent.explainer().why_last().c_str());
  std::printf("\nDecisions explained: %zu of %zu (coverage %.0f%%)\n",
              agent.explainer().size(), agent.explainer().decisions(),
              agent.explainer().coverage() * 100.0);
  return 0;
}
