// Tests for the agent's structured tracing (AgentConfig::trace).
#include <gtest/gtest.h>

#include <memory>

#include "core/agent.hpp"

namespace sa::core {
namespace {

TEST(AgentTrace, RecordsObserveAndDecidePerStep) {
  sim::Trace trace;
  AgentConfig cfg;
  cfg.trace = &trace;
  SelfAwareAgent agent("traced", cfg);
  agent.add_sensor("x", [] { return 1.0; });
  agent.add_action("go", [] {});
  agent.set_policy(std::make_unique<FixedPolicy>(0));
  for (int i = 0; i < 5; ++i) agent.step(i);
  EXPECT_EQ(trace.by_category("observe").size(), 5u);
  EXPECT_EQ(trace.by_category("decide").size(), 5u);
  EXPECT_EQ(trace.by_subject("traced").size(), 10u);
}

TEST(AgentTrace, ObserveRecordListsSampledSignals) {
  sim::Trace trace;
  AgentConfig cfg;
  cfg.trace = &trace;
  SelfAwareAgent agent("traced", cfg);
  agent.add_sensor("alpha", [] { return 1.0; });
  agent.add_sensor("beta", [] { return 2.0; });
  agent.step(0.0);
  const auto obs = trace.by_category("observe");
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0]->detail, "alpha,beta");
}

TEST(AgentTrace, DecideRecordCarriesActionAndRationale) {
  sim::Trace trace;
  AgentConfig cfg;
  cfg.trace = &trace;
  SelfAwareAgent agent("traced", cfg);
  agent.add_action("launch", [] {});
  agent.set_policy(std::make_unique<FixedPolicy>(0));
  agent.step(2.5);
  const auto decides = trace.by_category("decide");
  ASSERT_EQ(decides.size(), 1u);
  EXPECT_DOUBLE_EQ(decides[0]->t, 2.5);
  EXPECT_NE(decides[0]->detail.find("launch"), std::string::npos);
  EXPECT_NE(decides[0]->detail.find("fixed design-time choice"),
            std::string::npos);
}

TEST(AgentTrace, NoTraceMeansNoRecordsAndNoCrash) {
  SelfAwareAgent agent("untraced", {});
  agent.add_sensor("x", [] { return 1.0; });
  agent.step(0.0);
  SUCCEED();
}

TEST(AgentTrace, NoDecisionMeansNoDecideRecord) {
  sim::Trace trace;
  AgentConfig cfg;
  cfg.trace = &trace;
  SelfAwareAgent agent("sensor-only", cfg);
  agent.add_sensor("x", [] { return 1.0; });
  agent.step(0.0);
  EXPECT_EQ(trace.by_category("observe").size(), 1u);
  EXPECT_TRUE(trace.by_category("decide").empty());
}

TEST(AgentTrace, AttentionBudgetVisibleInObserveRecords) {
  sim::Trace trace;
  AgentConfig cfg;
  cfg.trace = &trace;
  cfg.attention_budget = 1;
  cfg.attention_strategy = AttentionManager::Strategy::RoundRobin;
  SelfAwareAgent agent("focused", cfg);
  agent.add_sensor("a", [] { return 0.0; });
  agent.add_sensor("b", [] { return 0.0; });
  agent.step(0.0);
  agent.step(1.0);
  const auto obs = trace.by_category("observe");
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0]->detail, "a");
  EXPECT_EQ(obs[1]->detail, "b");
}

}  // namespace
}  // namespace sa::core
