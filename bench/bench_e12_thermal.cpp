// E12 — thermal self-awareness: sprint vs. sustain.
//
// The paper's platform-level case studies (Agne et al. [47]) run on real
// chips where "run everything at maximum" is self-defeating: the silicon
// heats past its envelope and hardware throttling clamps it to the minimum
// frequency until it cools — a dynamic entirely invisible to a manager
// that does not model its own thermals. The self-aware manager's
// self-model predicts the throttle duty cycle for every candidate
// configuration from the chip's datasheet constants and therefore chooses
// a *sustainable* operating point.
//
// Scenario: a heavy, saturating workload for 120 s on the thermal-enabled
// big.LITTLE chip.
//
// Table: utility, sustained throughput, time throttled, peak temperature
//        for static-sprint / static-mid / reactive / self-aware.
#include <iostream>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "multicore/manager.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 240;  // 120 s at 0.5 s epochs
const std::vector<std::uint64_t> kSeeds{121, 122, 123};

exp::TaskOutput run(Manager::Variant variant, std::size_t static_action,
                    std::uint64_t seed) {
  auto cfg = PlatformConfig::big_little(2, 4);
  cfg.thermal = true;
  Platform platform(cfg, seed);
  // 6 giga-ops/s: sustainable at mid frequency without throttling,
  // but beyond what a throttle-oscillating sprinter can average.
  platform.set_workload(40.0, 0.15, 0.5);
  Manager::Params p;
  p.variant = variant;
  p.static_action = static_action;
  p.seed = seed;
  Manager mgr(platform, p);
  sim::RunningStats u, thr, throttle, temp;
  for (int e = 0; e < kEpochs; ++e) {
    u.add(mgr.run_epoch());
    thr.add(mgr.last_stats().throughput);
    throttle.add(mgr.last_stats().throttle_frac);
    temp.add(mgr.last_stats().max_temp_c);
  }
  return {{{"utility", u.mean()},
           {"sustained_thr", thr.mean()},
           {"throttled", throttle.mean()},
           {"peak_temp", temp.max()}}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e12_thermal", argc, argv);
  std::cout << "E12: managing a thermally limited chip under saturating "
               "load (" << kEpochs << " epochs, "
            << h.seeds_for(kSeeds).size()
            << " seeds). Throttling clamps a hot core to f_min until it "
               "cools 25 C.\n\n";

  struct Row {
    std::string name;
    Manager::Variant variant;
    std::size_t static_action;
  };
  const std::vector<Row> rows{
      {"static sprint (f3/balanced)", Manager::Variant::Static, 9},
      {"static mid (f1/balanced)", Manager::Variant::Static, 3},
      {"reactive (rules)", Manager::Variant::Reactive, 0},
      {"self-aware (thermal model)", Manager::Variant::SelfAware, 0},
  };

  exp::Grid g;
  g.name = "e12";
  for (const auto& row : rows) g.variants.push_back(row.name);
  g.seeds = kSeeds;
  g.task = [&rows](const exp::TaskContext& ctx) {
    const auto& row = rows[ctx.variant];
    return run(row.variant, row.static_action, ctx.seed);
  };
  const auto res = h.run(std::move(g));

  sim::Table t("E12.1  sprint vs sustain under the thermal envelope",
               {"manager", "utility", "sustained_thr", "throttled",
                "peak_temp"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t.add_row({res.variants[v], res.mean(v, "utility"),
               res.mean(v, "sustained_thr"), res.mean(v, "throttled"),
               res.mean(v, "peak_temp")});
  }
  t.print(std::cout);
  std::cout
      << "The self-aware manager matches the best statically chosen\n"
         "configuration (which required offline search) without knowing\n"
         "the workload, and beats naive sprinting and reactive rules.\n"
         "Note its non-zero throttle fraction is *planned* duty-cycling:\n"
         "the self-model works out that briefly sprinting the big cores\n"
         "and letting the hardware clamp them yields more sustained\n"
         "capacity than never crossing the envelope.\n";
  return h.finish();
}
