file(REMOVE_RECURSE
  "CMakeFiles/exp_tests.dir/exp/aggregate_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/aggregate_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/args_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/args_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/json_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/json_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/runner_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/runner_test.cpp.o.d"
  "exp_tests"
  "exp_tests.pdb"
  "exp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
