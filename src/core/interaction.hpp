// Interaction awareness: models of the entities the agent deals with.
//
// Covers Neisser's interpersonal self: who do I interact with, how reliable
// are they, what do they tend to do next? Substrates report interactions
// explicitly (record_interaction); the process distils them into per-peer
// reliability and behaviour models and publishes them to the knowledge base
// so policies can, e.g., prefer dependable volunteer nodes (paper,
// Section II, volunteer clouds [14][15]).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "learn/estimators.hpp"
#include "learn/markov.hpp"

namespace sa::core {

class InteractionAwareness final : public AwarenessProcess {
 public:
  struct Params {
    double alpha = 0.1;          ///< EWMA reactivity of reliability estimate
    std::size_t peer_states = 0; ///< >0 enables Markov behaviour model
  };

  InteractionAwareness() : InteractionAwareness(Params{}) {}
  explicit InteractionAwareness(Params p) : p_(p) {}

  [[nodiscard]] Level level() const override { return Level::Interaction; }
  [[nodiscard]] std::string name() const override { return "interaction"; }

  /// Records the outcome of one interaction with `peer`.
  /// `success` — did the peer do what was expected; `value` — optional
  /// payoff of the interaction (e.g. response time contribution).
  void record_interaction(const std::string& peer, bool success,
                          double value = 0.0);
  /// Records a discrete behavioural state of `peer` (feeds Markov model).
  void record_peer_state(const std::string& peer, std::size_t state);

  /// Publishes "peer.<id>.reliability", ".interactions", ".value" and, if
  /// enabled, ".predicted_state" for every known peer.
  void update(double t, const Observation& obs, KnowledgeBase& kb) override;

  [[nodiscard]] double reliability(const std::string& peer) const;
  [[nodiscard]] std::size_t interactions(const std::string& peer) const;
  [[nodiscard]] std::vector<std::string> peers() const;
  /// Mean reliability-estimate confidence across peers.
  [[nodiscard]] double quality() const override;
  void reconfigure() override;

 private:
  struct PeerModel {
    learn::Ewma reliability;
    learn::Ewma value;
    std::size_t count = 0;
    learn::MarkovPredictor behaviour;
    PeerModel(double alpha, std::size_t states)
        : reliability(alpha), value(alpha),
          behaviour(states == 0 ? 1 : states) {}
  };
  PeerModel& model_for(const std::string& peer);

  Params p_;
  std::map<std::string, PeerModel> peers_;
};

}  // namespace sa::core
