#include "cpn/supervisor.hpp"

namespace sa::cpn {

Supervisor::Supervisor(PacketNetwork& net, Params p) : net_(net), p_(p) {
  if (p_.telemetry != nullptr) net_.set_telemetry(p_.telemetry);
  if (p_.tracer != nullptr) {
    trace_subject_ = p_.tracer->bus().intern_subject("cpn.supervisor");
    n_epoch_ = p_.tracer->intern_name("epoch");
    k_delivery_ = p_.tracer->intern_name("delivery");
    k_latency_ = p_.tracer->intern_name("mean_latency");
  }
  core::AgentConfig cfg;
  cfg.seed = p_.seed;
  cfg.telemetry = p_.telemetry;
  cfg.tracer = p_.tracer;
  cfg.levels = core::LevelSet{core::Level::Stimulus, core::Level::Time,
                              core::Level::Goal, core::Level::Meta};
  cfg.meta = p_.meta;
  agent_ = std::make_unique<core::SelfAwareAgent>("cpn-supervisor", cfg);

  agent_->add_sensor("delivery", [this] { return last_.delivery_rate(); });
  agent_->add_sensor("latency", [this] { return last_.mean_latency; });
  agent_->add_sensor("load", [this] { return net_.mean_load(); });

  auto& goals = agent_->goals();
  goals.add_objective({"delivery", core::utility::rising(0.5, 1.0), 2.0});
  goals.add_objective(
      {"latency", core::utility::falling(0.0, p_.latency_scale), 1.0});
  agent_->set_goal_metrics({"delivery", "latency"});

  // The meta level's drift signal is wired to the routers' exploration:
  // when the supervisor's own utility model says the world has shifted,
  // the network re-explores.
  if (agent_->meta() != nullptr) {
    agent_->meta()->on_drift("boost-exploration", [this] {
      net_.boost_exploration(p_.boost_eps, p_.boost_decay);
      ++boosts_;
    });
  }
}

void Supervisor::bind(sim::Engine& engine, double period) {
  if (period <= 0.0) period = p_.epoch_ticks;
  engine.every_tagged(
      sim::event_tag("sa.cpn.supervisor"), period,
      [this] { observe_epoch(); return true; }, /*order=*/1);
}

double Supervisor::observe_epoch() {
  auto span = (p_.tracer != nullptr && p_.tracer->enabled())
                  ? p_.tracer->span(net_.now(), trace_subject_, n_epoch_)
                  : sim::Tracer::Span{};
  last_ = net_.harvest();
  agent_->step(net_.now());
  if (span) {
    span.arg(k_delivery_, last_.delivery_rate());
    span.arg(k_latency_, last_.mean_latency);
  }
  return last_.delivery_rate();
}

}  // namespace sa::cpn
