#include "learn/markov.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(MarkovPredictor, EmptyModelIsUniform) {
  MarkovPredictor m(4);
  EXPECT_DOUBLE_EQ(m.probability(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.probability(2, 3), 0.25);
}

TEST(MarkovPredictor, LearnsDeterministicCycle) {
  MarkovPredictor m(3);
  for (int i = 0; i < 60; ++i) m.observe(static_cast<std::size_t>(i % 3));
  EXPECT_EQ(m.predict(0), 1u);
  EXPECT_EQ(m.predict(1), 2u);
  EXPECT_EQ(m.predict(2), 0u);
  EXPECT_GT(m.probability(0, 1), 0.8);
  EXPECT_LT(m.probability(0, 2), 0.1);
}

TEST(MarkovPredictor, PredictNextUsesLatestState) {
  MarkovPredictor m(3);
  for (int i = 0; i < 30; ++i) m.observe(static_cast<std::size_t>(i % 3));
  // Last observed state is (29 % 3) = 2, whose successor is 0.
  EXPECT_EQ(m.predict_next(), 0u);
}

TEST(MarkovPredictor, ProbabilityRowsSumToOne) {
  MarkovPredictor m(5);
  sim::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    m.observe(static_cast<std::size_t>(rng.below(5)));
  }
  for (std::size_t from = 0; from < 5; ++from) {
    double total = 0.0;
    for (std::size_t to = 0; to < 5; ++to) total += m.probability(from, to);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(MarkovPredictor, SampleFollowsLearnedDistribution) {
  MarkovPredictor m(2);
  // 0 -> 1 always; 1 -> 0 always.
  for (int i = 0; i < 100; ++i) m.observe(static_cast<std::size_t>(i % 2));
  sim::Rng rng(2);
  std::size_t ones = 0;
  for (int i = 0; i < 1000; ++i) ones += m.sample(0, rng);
  EXPECT_GT(ones, 900u);  // Laplace smoothing leaves a small residue
}

TEST(MarkovPredictor, LearnsStochasticTransitions) {
  MarkovPredictor m(2);
  sim::Rng rng(3);
  std::size_t state = 0;
  for (int i = 0; i < 20000; ++i) {
    m.observe(state);
    // From 0: 80% stay. From 1: 50/50.
    state = state == 0 ? (rng.chance(0.8) ? 0 : 1)
                       : (rng.chance(0.5) ? 0 : 1);
  }
  EXPECT_NEAR(m.probability(0, 0), 0.8, 0.03);
  EXPECT_NEAR(m.probability(1, 0), 0.5, 0.05);
  EXPECT_EQ(m.predict(0), 0u);
}

TEST(MarkovPredictor, ResetForgets) {
  MarkovPredictor m(2);
  m.observe(0);
  m.observe(1);
  m.reset();
  EXPECT_EQ(m.observations(), 0u);
  EXPECT_DOUBLE_EQ(m.probability(0, 1), 0.5);
}

TEST(MarkovPredictor, StatesAccessor) {
  EXPECT_EQ(MarkovPredictor(7).states(), 7u);
}

}  // namespace
}  // namespace sa::learn
