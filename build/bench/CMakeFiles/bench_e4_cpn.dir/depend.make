# Empty dependencies file for bench_e4_cpn.
# This may be replaced when dependencies are built.
