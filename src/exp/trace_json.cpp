#include "exp/trace_json.hpp"

#include <algorithm>
#include <ostream>

namespace sa::exp {

namespace {

Json meta_event(int pid, int tid, const char* field,
                const std::string& value) {
  Json m = Json::object();
  m["ph"] = "M";
  m["pid"] = pid;
  m["tid"] = tid;
  m["name"] = field;
  m["args"]["name"] = value;
  return m;
}

Json meta_event(int tid, const char* field, const std::string& value) {
  return meta_event(1, tid, field, value);
}

/// Appends one tracer's events to `events` under process id `pid`.
/// Factored out of chrome_trace so the merger reuses the exact same
/// event mapping.
void append_tracer_events(Json& events, const sim::Tracer& tracer, int pid) {
  using Kind = sim::Tracer::Event::Kind;
  for (const sim::Tracer::Event& e : tracer.events()) {
    Json j = Json::object();
    switch (e.kind) {
      case Kind::Begin: {
        j["name"] = tracer.name(e.name);
        j["cat"] = "span";
        j["ph"] = "B";
        j["ts"] = e.t * 1e6;
        j["pid"] = pid;
        j["tid"] = static_cast<int>(e.subject);
        Json& args = j["args"] = Json::object();
        args["trace_id"] = static_cast<std::int64_t>(e.id);
        for (const auto& [key, value] : e.args) {
          args[tracer.name(key)] = value;
        }
        break;
      }
      case Kind::End:
        j["ph"] = "E";
        j["ts"] = e.t * 1e6;
        j["pid"] = pid;
        j["tid"] = static_cast<int>(e.subject);
        break;
      case Kind::Flow:
        j["name"] = tracer.name(e.name);
        j["cat"] = "flow";
        j["ph"] = e.phase == sim::FlowPhase::Begin  ? "s"
                  : e.phase == sim::FlowPhase::Step ? "t"
                                                    : "f";
        j["id"] = static_cast<std::int64_t>(e.id);
        j["ts"] = e.t * 1e6;
        j["pid"] = pid;
        j["tid"] = static_cast<int>(e.subject);
        // Bind the terminating point to the enclosing slice, matching
        // how the chain's earlier points attach.
        if (e.phase == sim::FlowPhase::End) j["bp"] = "e";
        break;
    }
    events.push_back(std::move(j));
  }
}

}  // namespace

Json chrome_trace(const sim::Tracer& tracer) {
  const sim::TelemetryBus& bus = tracer.bus();
  Json doc = Json::object();
  doc["displayTimeUnit"] = "ms";
  Json& events = doc["traceEvents"] = Json::array();

  events.push_back(meta_event(0, "process_name", "sa-sim"));
  for (sim::SubjectId s = 0; s < bus.subjects(); ++s) {
    events.push_back(
        meta_event(static_cast<int>(s), "thread_name", bus.subject_name(s)));
  }

  append_tracer_events(events, tracer, /*pid=*/1);
  return doc;
}

void write_chrome_trace(std::ostream& os, const sim::Tracer& tracer) {
  chrome_trace(tracer).dump(os, /*indent=*/-1);
  os << "\n";
}

Json merge_perfetto(const std::vector<const sim::Tracer*>& tracers,
                    const MergeOptions& opts, MergeStats* stats) {
  Json doc = Json::object();
  doc["displayTimeUnit"] = "ms";
  Json& events = doc["traceEvents"] = Json::array();

  MergeStats local;
  local.tracers = tracers.size();

  /// One stitch-span instance (a Begin event named opts.stitch_span).
  struct StitchPoint {
    double t = 0.0;
    std::size_t tracer = 0;  ///< index into `tracers`
    std::size_t event = 0;   ///< emission index within that tracer
    int pid = 0;
    int tid = 0;
  };
  std::vector<StitchPoint> points;

  for (std::size_t i = 0; i < tracers.size(); ++i) {
    const sim::Tracer& tracer = *tracers[i];
    const int pid = static_cast<int>(i) + 1;
    const sim::TelemetryBus& bus = tracer.bus();
    events.push_back(meta_event(
        pid, 0, "process_name",
        "sa-sim ns" + std::to_string(tracer.trace_namespace())));
    for (sim::SubjectId s = 0; s < bus.subjects(); ++s) {
      events.push_back(meta_event(pid, static_cast<int>(s), "thread_name",
                                  bus.subject_name(s)));
    }
    append_tracer_events(events, tracer, pid);
    local.events += tracer.events().size();

    for (std::size_t e = 0; e < tracer.events().size(); ++e) {
      const sim::Tracer::Event& ev = tracer.events()[e];
      if (ev.kind != sim::Tracer::Event::Kind::Begin) continue;
      if (tracer.name(ev.name) != opts.stitch_span) continue;
      points.push_back(
          {ev.t, i, e, pid, static_cast<int>(ev.subject)});
    }
  }
  local.stitch_points = points.size();

  // Deterministic global order: sim time, then tracer index, then emission
  // order — no wall clock, no pointer values.
  std::stable_sort(points.begin(), points.end(),
                   [](const StitchPoint& a, const StitchPoint& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.tracer != b.tracer) return a.tracer < b.tracer;
                     return a.event < b.event;
                   });

  // Link each stitch point to the next one from a *different* tracer:
  // exchange rounds interleave across agents, so consecutive cross-tracer
  // points are exactly the "knowledge left agent A, next handled by agent
  // B" hops. Ids live in the reserved 0xffff namespace.
  sim::TraceId stitch_counter = 0;
  for (std::size_t a = 0; a + 1 < points.size(); ++a) {
    const StitchPoint& from = points[a];
    const StitchPoint* to = nullptr;
    for (std::size_t b = a + 1; b < points.size(); ++b) {
      if (points[b].tracer != from.tracer) {
        to = &points[b];
        break;
      }
    }
    if (to == nullptr) break;
    const sim::TraceId id =
        (sim::TraceId{0xffff} << sim::kTraceNamespaceShift) |
        (++stitch_counter & sim::kTraceCounterMask);
    Json s = Json::object();
    s["name"] = "stitch";
    s["cat"] = "stitch";
    s["ph"] = "s";
    s["id"] = static_cast<std::int64_t>(id);
    s["ts"] = from.t * 1e6;
    s["pid"] = from.pid;
    s["tid"] = from.tid;
    events.push_back(std::move(s));
    Json f = Json::object();
    f["name"] = "stitch";
    f["cat"] = "stitch";
    f["ph"] = "f";
    f["id"] = static_cast<std::int64_t>(id);
    f["ts"] = to->t * 1e6;
    f["pid"] = to->pid;
    f["tid"] = to->tid;
    f["bp"] = "e";
    events.push_back(std::move(f));
    ++local.stitches;
  }

  if (stats != nullptr) *stats = local;
  return doc;
}

void write_merged_trace(std::ostream& os,
                        const std::vector<const sim::Tracer*>& tracers,
                        const MergeOptions& opts) {
  merge_perfetto(tracers, opts).dump(os, /*indent=*/-1);
  os << "\n";
}

}  // namespace sa::exp
