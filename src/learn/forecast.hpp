// One-step-ahead forecasters for time-awareness.
//
// Time-awareness in the framework (Section IV of the paper, level T) is the
// capability to use knowledge of history to anticipate the future. These
// forecasters share a minimal interface so the meta-self-awareness layer
// can race them against each other and switch at run time.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace sa::learn {

/// Interface: incremental one-step-ahead scalar forecaster.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Feed the next observed value.
  virtual void observe(double x) = 0;
  /// Predict the next value (h=1) or h steps ahead.
  [[nodiscard]] virtual double forecast(std::size_t h = 1) const = 0;
  /// Identifier for explanation traces.
  [[nodiscard]] virtual std::string name() const = 0;
  /// Observations consumed so far.
  [[nodiscard]] virtual std::size_t count() const = 0;
};

/// Predicts the last observed value (random-walk baseline).
class NaiveForecaster final : public Forecaster {
 public:
  void observe(double x) override {
    last_ = x;
    ++n_;
  }
  [[nodiscard]] double forecast(std::size_t = 1) const override {
    return last_;
  }
  [[nodiscard]] std::string name() const override { return "naive"; }
  [[nodiscard]] std::size_t count() const override { return n_; }

 private:
  double last_ = 0.0;
  std::size_t n_ = 0;
};

/// Simple exponential smoothing (level only).
class SesForecaster final : public Forecaster {
 public:
  explicit SesForecaster(double alpha = 0.3) : alpha_(alpha) {}
  void observe(double x) override {
    level_ = n_ == 0 ? x : alpha_ * x + (1.0 - alpha_) * level_;
    ++n_;
  }
  [[nodiscard]] double forecast(std::size_t = 1) const override {
    return level_;
  }
  [[nodiscard]] std::string name() const override { return "ses"; }
  [[nodiscard]] std::size_t count() const override { return n_; }

 private:
  double alpha_;
  double level_ = 0.0;
  std::size_t n_ = 0;
};

/// Holt's linear trend method (level + trend).
class HoltForecaster final : public Forecaster {
 public:
  HoltForecaster(double alpha = 0.3, double beta = 0.1)
      : alpha_(alpha), beta_(beta) {}
  void observe(double x) override {
    if (n_ == 0) {
      level_ = x;
    } else if (n_ == 1) {
      trend_ = x - level_;
      level_ = x;
    } else {
      const double prev_level = level_;
      level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    ++n_;
  }
  [[nodiscard]] double forecast(std::size_t h = 1) const override {
    return level_ + static_cast<double>(h) * trend_;
  }
  [[nodiscard]] std::string name() const override { return "holt"; }
  [[nodiscard]] std::size_t count() const override { return n_; }

 private:
  double alpha_, beta_;
  double level_ = 0.0, trend_ = 0.0;
  std::size_t n_ = 0;
};

/// Holt-Winters additive seasonal method with fixed period.
class HoltWintersForecaster final : public Forecaster {
 public:
  HoltWintersForecaster(std::size_t period, double alpha = 0.3,
                        double beta = 0.05, double gamma = 0.1)
      : period_(period), alpha_(alpha), beta_(beta), gamma_(gamma),
        seasonal_(period, 0.0) {}

  void observe(double x) override {
    const std::size_t s = n_ % period_;
    if (n_ < period_) {
      // Warm-up: accumulate one full season before smoothing.
      seasonal_[s] = x;
      warm_sum_ += x;
      if (n_ + 1 == period_) {
        level_ = warm_sum_ / static_cast<double>(period_);
        for (auto& v : seasonal_) v -= level_;
      }
    } else {
      const double prev_level = level_;
      level_ = alpha_ * (x - seasonal_[s]) +
               (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
      seasonal_[s] = gamma_ * (x - level_) + (1.0 - gamma_) * seasonal_[s];
    }
    ++n_;
  }
  [[nodiscard]] double forecast(std::size_t h = 1) const override {
    if (n_ < period_) return n_ ? seasonal_[(n_ - 1) % period_] : 0.0;
    const std::size_t s = (n_ + h - 1) % period_;
    return level_ + static_cast<double>(h) * trend_ + seasonal_[s];
  }
  [[nodiscard]] std::string name() const override { return "holt-winters"; }
  [[nodiscard]] std::size_t count() const override { return n_; }
  [[nodiscard]] std::size_t period() const noexcept { return period_; }

 private:
  std::size_t period_;
  double alpha_, beta_, gamma_;
  std::vector<double> seasonal_;
  double level_ = 0.0, trend_ = 0.0, warm_sum_ = 0.0;
  std::size_t n_ = 0;
};

/// Tracks a forecaster's own mean absolute error — the self-assessment
/// hook used by meta-self-awareness to compare competing models.
///
/// `horizon` sets which h-step-ahead prediction is scored: a consumer that
/// acts on forecast(2) (e.g. an autoscaler with provisioning lag) should
/// rank models by their 2-step error, where trend/seasonal models beat the
/// naive lag that usually wins at h=1.
class ScoredForecaster {
 public:
  explicit ScoredForecaster(std::unique_ptr<Forecaster> f,
                            std::size_t horizon = 1)
      : f_(std::move(f)), horizon_(horizon == 0 ? 1 : horizon) {}

  /// Scores the prediction issued `horizon` observations ago against `x`,
  /// then feeds `x` and queues a fresh prediction.
  void observe(double x) {
    if (pending_.size() == horizon_) {
      mae_sum_ += std::fabs(pending_.front() - x);
      ++scored_;
      pending_.pop_front();
    }
    f_->observe(x);
    pending_.push_back(f_->forecast(horizon_));
  }
  [[nodiscard]] double forecast(std::size_t h = 1) const {
    return f_->forecast(h);
  }
  [[nodiscard]] double mae() const noexcept {
    return scored_ ? mae_sum_ / static_cast<double>(scored_) : 0.0;
  }
  [[nodiscard]] std::size_t scored() const noexcept { return scored_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }
  [[nodiscard]] const Forecaster& model() const noexcept { return *f_; }

 private:
  std::unique_ptr<Forecaster> f_;
  std::size_t horizon_;
  std::deque<double> pending_;
  double mae_sum_ = 0.0;
  std::size_t scored_ = 0;
};

}  // namespace sa::learn
