#include "core/sharing.hpp"

#include <gtest/gtest.h>

namespace sa::core {
namespace {

TEST(KnowledgeExchange, ImportsOnlyPublicKnowledge) {
  KnowledgeBase from, into;
  from.put_number("position", 4.0, 1.0, 1.0, Scope::Public);
  from.put_number("secret", 9.0, 1.0, 1.0, Scope::Private);
  KnowledgeExchange ex;
  EXPECT_EQ(ex.import(from, "peerA", into), 1u);
  EXPECT_TRUE(into.contains("shared.peerA.position"));
  EXPECT_FALSE(into.contains("shared.peerA.secret"));
  EXPECT_DOUBLE_EQ(into.number("shared.peerA.position"), 4.0);
}

TEST(KnowledgeExchange, DiscountsConfidence) {
  KnowledgeBase from, into;
  from.put_number("x", 1.0, 0.0, 0.9, Scope::Public);
  KnowledgeExchange::Params p;
  p.confidence_decay = 0.5;
  KnowledgeExchange ex(p);
  ex.import(from, "p", into);
  EXPECT_DOUBLE_EQ(into.confidence("shared.p.x"), 0.45);
}

TEST(KnowledgeExchange, ImportedKnowledgeIsPrivate) {
  // No transitive gossip: what I learned about peer A is not part of MY
  // public self, so it will not be re-exported to peer B.
  KnowledgeBase a, b, c;
  a.put_number("x", 1.0, 0.0, 1.0, Scope::Public);
  KnowledgeExchange ex;
  ex.import(a, "a", b);
  EXPECT_EQ(ex.import(b, "b", c), 0u);  // b has no public items of its own
  EXPECT_FALSE(c.contains("shared.b.shared.a.x"));
}

TEST(KnowledgeExchange, NewerLocalCopyIsKept) {
  KnowledgeBase from, into;
  from.put_number("x", 1.0, /*time=*/5.0, 1.0, Scope::Public);
  into.put_number("shared.p.x", 99.0, /*time=*/7.0);
  KnowledgeExchange ex;
  EXPECT_EQ(ex.import(from, "p", into), 0u);
  EXPECT_DOUBLE_EQ(into.number("shared.p.x"), 99.0);
}

TEST(KnowledgeExchange, FresherRemoteReplacesStaleLocal) {
  KnowledgeBase from, into;
  into.put_number("shared.p.x", 1.0, /*time=*/1.0);
  from.put_number("x", 2.0, /*time=*/3.0, 1.0, Scope::Public);
  KnowledgeExchange ex;
  EXPECT_EQ(ex.import(from, "p", into), 1u);
  EXPECT_DOUBLE_EQ(into.number("shared.p.x"), 2.0);
}

TEST(KnowledgeExchange, ProvenanceNamesThePeer) {
  KnowledgeBase from, into;
  from.put_number("x", 1.0, 0.0, 1.0, Scope::Public);
  KnowledgeExchange ex;
  ex.import(from, "cam7", into);
  const auto item = into.latest("shared.cam7.x");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->source, "shared:cam7");
}

TEST(KnowledgeExchange, SharedKeyHelper) {
  KnowledgeExchange ex;
  EXPECT_EQ(ex.shared_key("p1", "load"), "shared.p1.load");
  KnowledgeExchange::Params p;
  p.prefix = "peerview";
  EXPECT_EQ(KnowledgeExchange(p).shared_key("a", "b"), "peerview.a.b");
}

}  // namespace
}  // namespace sa::core
