// The sa::serve acceptance contract: attaching the live control plane to a
// running experiment — with a busy scraper hammering /metrics + /status
// and an SSE subscriber draining /events throughout — leaves the
// trajectory BYTE-identical to an unserved run. Reduced E1 (multicore)
// and E4 (CPN) grids, serialised through the timing-free JSON form, as in
// parallel_determinism_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "exp/harness.hpp"
#include "exp/runner.hpp"
#include "loadgen/loadgen.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "serve/bridge.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"
#include "../serve/test_client.hpp"

namespace {

using namespace sa;
namespace client = sa::serve::testing;

std::string timing_free_json(const exp::GridResult& result) {
  return exp::to_json(result, /*include_timing=*/false).dump();
}

/// Background load: one thread alternating GET /metrics and /status as
/// fast as responses come back, one thread holding an SSE stream open.
class ScrapeLoad {
 public:
  void start(unsigned short port) {
    scraper_ = std::thread([this, port] {
      while (!stop_.load()) {
        (void)client::http_get(port, "/metrics");
        (void)client::http_get(port, "/status");
      }
    });
    sse_ = std::thread([this, port] {
      const int fd = client::connect_loopback(port);
      if (fd < 0) return;
      timeval tv{};
      tv.tv_usec = 100 * 1000;  // poll the stop flag every 100 ms
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      const std::string req = "GET /events HTTP/1.1\r\n\r\n";
      ::send(fd, req.data(), req.size(), 0);
      char buf[4096];
      while (!stop_.load()) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) bytes_ += static_cast<std::size_t>(n);
        if (n == 0) break;  // server closed
      }
      ::close(fd);
    });
  }
  void finish() {
    stop_.store(true);
    if (scraper_.joinable()) scraper_.join();
    if (sse_.joinable()) sse_.join();
  }
  [[nodiscard]] std::size_t sse_bytes() const { return bytes_; }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> bytes_{0};
  std::thread scraper_, sse_;
};

/// A bridge tuned to publish often and drop SSE events aggressively (tiny
/// queue): maximum server-side churn while the designated cell runs.
serve::SimBridge::Options churn_options() {
  serve::SimBridge::Options opts;
  opts.publish_period = 0.05;
  opts.sse_queue = 16;
  return opts;
}

/// Reduced E4: static vs self-aware routing through a short DoS window,
/// engine-driven. When `bridge` is non-null the (self-aware, seed 41) cell
/// runs served: telemetry flows to the bridge's fanout and the bridge's
/// publish/drain event rides the engine.
exp::Grid cpn_grid(serve::SimBridge* bridge, sim::TelemetryBus* bus) {
  exp::Grid g;
  g.name = "e4.served";
  g.variants = {"static", "self-aware"};
  g.seeds = {41, 42};
  g.task = [bridge, bus](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const bool served =
        bridge != nullptr && ctx.variant == 1 && ctx.seed == 41;
    const auto topo = cpn::Topology::grid(4, 6, 4, ctx.seed);
    cpn::PacketNetwork::Params np;
    np.router = ctx.variant == 0 ? cpn::PacketNetwork::Router::Static
                                 : cpn::PacketNetwork::Router::QRouting;
    np.dos_defence = ctx.variant == 1;
    np.seed = ctx.seed;
    cpn::PacketNetwork net(topo, np);
    if (served) net.set_telemetry(bus);
    cpn::TrafficParams tp;
    tp.flows = 8;
    tp.legit_rate = 2.0;
    tp.attack_start = 300;
    tp.attack_end = 600;
    tp.attack_rate = 25.0;
    tp.attackers = 3;
    tp.seed = ctx.seed;
    cpn::TrafficGenerator gen(topo, tp);

    sim::Engine engine;
    gen.bind(engine, net);
    net.bind(engine);
    if (served) bridge->attach(engine);

    exp::Metrics m;
    double horizon = 0.0;
    for (const char* window : {"before", "during", "after"}) {
      horizon += 300.0;
      engine.run_until(horizon);
      const auto s = net.harvest();
      const std::string prefix = std::string(window) + ".";
      m.emplace_back(prefix + "delivery", s.delivery_rate());
      m.emplace_back(prefix + "mean_lat", s.mean_latency);
      m.emplace_back(prefix + "p95_lat", s.p95_latency);
    }
    return {std::move(m)};
  };
  return g;
}

/// Reduced E1: static vs self-aware multicore management, engine-driven.
/// The served cell additionally reports its agent through /status.
exp::Grid multicore_grid(serve::SimBridge* bridge, sim::TelemetryBus* bus) {
  exp::Grid g;
  g.name = "e1.served";
  g.variants = {"static", "self-aware"};
  g.seeds = {11, 12};
  g.task = [bridge, bus](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const bool served =
        bridge != nullptr && ctx.variant == 1 && ctx.seed == 11;
    multicore::Platform platform(
        multicore::PlatformConfig::big_little(2, 4), ctx.seed);
    auto workload = multicore::PhasedWorkload::standard();
    multicore::Manager::Params p;
    p.variant = ctx.variant == 0 ? multicore::Manager::Variant::Static
                                 : multicore::Manager::Variant::SelfAware;
    p.seed = ctx.seed;
    if (served) p.telemetry = bus;
    multicore::Manager mgr(platform, p);

    sim::Engine engine;
    engine.every(p.epoch_s,
                 [&] {
                   workload.apply(platform);
                   return true;
                 },
                 0);
    sim::RunningStats utility, power, latency;
    mgr.bind(engine, 0.0, [&](double u) {
      utility.add(u);
      power.add(mgr.last_stats().mean_power);
      latency.add(mgr.last_stats().p95_latency);
    });
    if (served) {
      bridge->add_agent(&mgr.agent());
      bridge->attach(engine);
    }
    engine.run_until(120 * p.epoch_s);
    return {{{"utility", utility.mean()},
             {"power_w", power.mean()},
             {"p95_s", latency.mean()},
             {"cap_viol", mgr.cap_violation_rate()}}};
  };
  return g;
}

using GridFactory = exp::Grid (*)(serve::SimBridge*, sim::TelemetryBus*);

/// Runs `factory` unserved, then served under full scrape load, and
/// requires byte-identical timing-free JSON.
void expect_served_run_identical(GridFactory factory) {
  const auto baseline =
      exp::Runner(1).run("serve-determinism", factory(nullptr, nullptr));
  ASSERT_EQ(baseline.errors(), 0u);

  sim::TelemetryBus bus;
  serve::SimBridge bridge(churn_options());
  bridge.set_telemetry(&bus);
  serve::Server::Options sopts;
  sopts.workers = 3;
  sopts.read_timeout_ms = 500;
  serve::Server server(sopts);
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  ScrapeLoad load;
  load.start(server.port());
  const auto served =
      exp::Runner(1).run("serve-determinism", factory(&bridge, &bus));
  load.finish();
  ASSERT_EQ(served.errors(), 0u);

  // The load was real: the scraper got responses while the grid ran.
  EXPECT_GT(server.requests(), 0u);

  EXPECT_EQ(timing_free_json(baseline), timing_free_json(served));
  server.stop();
}

TEST(ServeDeterminism, CpnTrajectoryIsByteIdenticalUnderScrapeLoad) {
  expect_served_run_identical(&cpn_grid);
}

TEST(ServeDeterminism, MulticoreTrajectoryIsByteIdenticalUnderScrapeLoad) {
  expect_served_run_identical(&multicore_grid);
}

TEST(ServeDeterminism, TrajectorySurvivesAThousandLoadgenClientMix) {
  // The loadgen-driven variant of the acceptance contract: the reduced E1
  // grid under a large mixed client population (scrapers + SSE streams +
  // control POSTs, >= 256 concurrent) stays byte-identical to the quiet
  // run. Generous think time keeps a 1-core host from starving the sim
  // while still cycling every client through the small worker pool.
  const auto baseline =
      exp::Runner(1).run("serve-loadgen", multicore_grid(nullptr, nullptr));
  ASSERT_EQ(baseline.errors(), 0u);

  sim::TelemetryBus bus;
  serve::SimBridge bridge(churn_options());
  bridge.set_telemetry(&bus);
  serve::Server::Options sopts;
  sopts.workers = 8;
  sopts.listen_backlog = 512;
  sopts.read_timeout_ms = 500;
  serve::Server server(sopts);
  bridge.install(server);
  ASSERT_TRUE(server.start()) << server.error();

  loadgen::Options lopts;
  lopts.port = server.port();
  lopts.scrapers = 250;
  lopts.sse = 4;
  lopts.controllers = 2;
  lopts.control_period_s = 0.2;
  lopts.think_s = 0.25;      // mostly-idle clients: concurrency, not rps
  lopts.keep_alive = false;  // every request re-runs accept + queue-wait
  lopts.seed = 7;
  loadgen::Pool pool(lopts);
  ASSERT_GE(pool.clients(), 256u);
  pool.start();
  const auto served =
      exp::Runner(1).run("serve-loadgen", multicore_grid(&bridge, &bus));
  pool.stop();
  ASSERT_EQ(served.errors(), 0u);

  EXPECT_EQ(timing_free_json(baseline), timing_free_json(served));

  // The load was real, and both sides of the observability seam agree
  // that it happened: the clients completed requests and the server's
  // self-model saw at least as many per scraped route.
  const loadgen::Report report = pool.report();
  std::uint64_t client_total = 0;
  for (const auto& r : report.routes) client_total += r.requests;
  EXPECT_GT(client_total, 0u);
  const serve::ServerStats::Snapshot self = server.stats().snapshot();
  for (const auto route : {serve::RouteClass::Metrics,
                           serve::RouteClass::Status,
                           serve::RouteClass::Healthz}) {
    const auto r = static_cast<std::size_t>(route);
    EXPECT_GE(self.routes[r].count, report.routes[r].requests)
        << serve::route_label(route);
  }
  EXPECT_GT(self.queue_wait.count, 0u);
  server.stop();
}

TEST(ServeDeterminism, ServedCellRepeatsByteIdenticallyAcrossServedRuns) {
  // Two served runs (fresh bridge + server each) also agree with each
  // other: serving is not just "harmless once", it is reproducible.
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    sim::TelemetryBus bus;
    serve::SimBridge bridge(churn_options());
    bridge.set_telemetry(&bus);
    serve::Server server;
    bridge.install(server);
    ASSERT_TRUE(server.start()) << server.error();
    ScrapeLoad load;
    load.start(server.port());
    const auto result =
        exp::Runner(1).run("serve-determinism", cpn_grid(&bridge, &bus));
    load.finish();
    ASSERT_EQ(result.errors(), 0u);
    *out = timing_free_json(result);
    server.stop();
  }
  EXPECT_EQ(first, second);
}

}  // namespace
