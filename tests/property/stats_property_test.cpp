// Property tests: statistics accumulators agree with naive reference
// computations on random data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace sa::sim {
namespace {

class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<double> random_data(sim::Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) {
    // Mixed scales and signs stress numerical stability.
    x = rng.normal(rng.uniform(-100.0, 100.0), rng.uniform(0.1, 50.0));
  }
  return v;
}

TEST_P(StatsPropertyTest, WelfordMatchesTwoPassReference) {
  sim::Rng rng(GetParam());
  const auto data = random_data(rng, 1 + rng.below(3000));
  RunningStats s;
  for (double x : data) s.add(x);

  const double n = static_cast<double>(data.size());
  const double mean = std::accumulate(data.begin(), data.end(), 0.0) / n;
  double m2 = 0.0;
  for (double x : data) m2 += (x - mean) * (x - mean);
  const double var = data.size() > 1 ? m2 / (n - 1.0) : 0.0;

  EXPECT_NEAR(s.mean(), mean, 1e-9 * (1.0 + std::fabs(mean)));
  EXPECT_NEAR(s.variance(), var, 1e-6 * (1.0 + var));
  EXPECT_DOUBLE_EQ(s.min(), *std::min_element(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(s.max(), *std::max_element(data.begin(), data.end()));
}

TEST_P(StatsPropertyTest, MergeIsOrderInsensitive) {
  sim::Rng rng(GetParam() ^ 0x9999);
  const auto data = random_data(rng, 500);
  // Split into three random parts, merge in two different orders.
  RunningStats a, b, c;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(data[i]);
  }
  RunningStats ab = a;
  ab.merge(b);
  ab.merge(c);
  RunningStats cb = c;
  cb.merge(b);
  cb.merge(a);
  EXPECT_NEAR(ab.mean(), cb.mean(), 1e-9);
  EXPECT_NEAR(ab.variance(), cb.variance(), 1e-6);
  EXPECT_EQ(ab.count(), cb.count());
}

TEST_P(StatsPropertyTest, HistogramQuantileWithinOneBinOfExact) {
  sim::Rng rng(GetParam() ^ 0x7777);
  const double lo = 0.0, hi = 100.0;
  const std::size_t bins = 200;
  Histogram h(lo, hi, bins);
  std::vector<double> data;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(lo, hi);
    data.push_back(x);
    h.add(x);
  }
  std::sort(data.begin(), data.end());
  const double bin_width = (hi - lo) / static_cast<double>(bins);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact =
        data[static_cast<std::size_t>(q * (data.size() - 1))];
    EXPECT_NEAR(h.quantile(q), exact, 2.0 * bin_width) << "q=" << q;
  }
}

TEST_P(StatsPropertyTest, TimeWeightedMatchesNumericIntegration) {
  sim::Rng rng(GetParam() ^ 0x5555);
  TimeWeighted tw;
  double t = 0.0, integral = 0.0, value = rng.uniform(-10.0, 10.0);
  tw.set(t, value);
  for (int i = 0; i < 300; ++i) {
    const double dt = rng.uniform(0.01, 2.0);
    integral += value * dt;
    t += dt;
    value = rng.uniform(-10.0, 10.0);
    tw.set(t, value);
  }
  const double tail = rng.uniform(0.01, 5.0);
  integral += value * tail;
  t += tail;
  EXPECT_NEAR(tw.mean(t), integral / t, 1e-9 * (1.0 + std::fabs(integral)));
}

TEST_P(StatsPropertyTest, SlidingWindowEqualsTailOfStream) {
  sim::Rng rng(GetParam() ^ 0x3333);
  const std::size_t cap = 1 + rng.below(64);
  SlidingWindow w(cap);
  std::vector<double> stream;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    stream.push_back(x);
    w.add(x);
    const std::size_t k = std::min(stream.size(), cap);
    double sum = 0.0;
    for (std::size_t j = stream.size() - k; j < stream.size(); ++j) {
      sum += stream[j];
    }
    ASSERT_NEAR(w.mean(), sum / static_cast<double>(k), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace sa::sim
