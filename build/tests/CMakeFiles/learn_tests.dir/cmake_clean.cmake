file(REMOVE_RECURSE
  "CMakeFiles/learn_tests.dir/learn/bandit_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/bandit_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/drift_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/drift_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/estimators_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/estimators_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/forecast_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/forecast_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/horizon_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/horizon_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/kalman_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/kalman_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/markov_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/markov_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/qlearn_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/qlearn_test.cpp.o.d"
  "CMakeFiles/learn_tests.dir/learn/rls_test.cpp.o"
  "CMakeFiles/learn_tests.dir/learn/rls_test.cpp.o.d"
  "learn_tests"
  "learn_tests.pdb"
  "learn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
