file(REMOVE_RECURSE
  "CMakeFiles/sa_exp.dir/aggregate.cpp.o"
  "CMakeFiles/sa_exp.dir/aggregate.cpp.o.d"
  "CMakeFiles/sa_exp.dir/args.cpp.o"
  "CMakeFiles/sa_exp.dir/args.cpp.o.d"
  "CMakeFiles/sa_exp.dir/harness.cpp.o"
  "CMakeFiles/sa_exp.dir/harness.cpp.o.d"
  "CMakeFiles/sa_exp.dir/json.cpp.o"
  "CMakeFiles/sa_exp.dir/json.cpp.o.d"
  "CMakeFiles/sa_exp.dir/runner.cpp.o"
  "CMakeFiles/sa_exp.dir/runner.cpp.o.d"
  "libsa_exp.a"
  "libsa_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
