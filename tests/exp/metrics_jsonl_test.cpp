// Tests for the metrics JSONL export: header/rows/footer layout and the
// per-kind summary entries.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/metrics_jsonl.hpp"

namespace sa::exp {
namespace {

using sim::MetricsRegistry;

std::vector<std::string> lines_of(const MetricsRegistry& reg) {
  std::ostringstream os;
  write_metrics_jsonl(os, reg);
  std::vector<std::string> lines;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

TEST(MetricsJsonl, EmptyRegistryWritesHeaderAndFooterOnly) {
  MetricsRegistry reg;
  const auto lines = lines_of(reg);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"schema\":1,\"kind\":\"metrics\",\"names\":[],\"kinds\":[]}");
  EXPECT_EQ(lines[1], "{\"summary\":{}}");
}

TEST(MetricsJsonl, HeaderListsNamesAndKindsInRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("ops");
  reg.gauge("level");
  reg.timer("step.ms");
  reg.histogram("lat", 0.0, 1.0, 8);
  const auto lines = lines_of(reg);
  EXPECT_NE(lines[0].find("\"names\":[\"ops\",\"level\",\"step.ms\",\"lat\"]"),
            std::string::npos);
  EXPECT_NE(lines[0].find(
                "\"kinds\":[\"counter\",\"gauge\",\"timer\",\"histogram\"]"),
            std::string::npos);
}

TEST(MetricsJsonl, SnapshotsBecomeOneRowPerLine) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  reg.add(c, 3.0);
  reg.snapshot(1.0);
  reg.add(c);
  reg.snapshot(2.5);
  const auto lines = lines_of(reg);
  ASSERT_EQ(lines.size(), 4u);  // header + 2 rows + footer
  EXPECT_EQ(lines[1], "{\"t\":1.0,\"v\":[3.0]}");
  EXPECT_EQ(lines[2], "{\"t\":2.5,\"v\":[4.0]}");
}

TEST(MetricsJsonl, SummaryReportsValueOrObservationStatsByKind) {
  MetricsRegistry reg;
  const auto c = reg.counter("ops");
  const auto t = reg.timer("ms");
  reg.add(c, 7.0);
  reg.observe(t, 2.0);
  reg.observe(t, 4.0);
  const auto lines = lines_of(reg);
  const std::string& footer = lines.back();
  EXPECT_NE(footer.find("\"ops\":{\"kind\":\"counter\",\"value\":7.0}"),
            std::string::npos);
  EXPECT_NE(footer.find("\"ms\":{\"kind\":\"timer\",\"count\":2"),
            std::string::npos);
  EXPECT_NE(footer.find("\"mean\":3.0"), std::string::npos);
  EXPECT_NE(footer.find("\"min\":2.0"), std::string::npos);
  EXPECT_NE(footer.find("\"max\":4.0"), std::string::npos);
}

TEST(MetricsJsonl, OutputIsDeterministicForFixedInputs) {
  auto run = [] {
    MetricsRegistry reg;
    const auto g = reg.gauge("x");
    for (int i = 0; i < 10; ++i) {
      reg.set(g, i * 0.25);
      reg.snapshot(i);
    }
    std::ostringstream os;
    write_metrics_jsonl(os, reg);
    return os.str();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sa::exp
