#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace sa::sim {
namespace {

TEST(Trace, RecordsInOrder) {
  Trace tr;
  tr.record(1.0, "decision", "agent1", "chose A");
  tr.record(2.0, "observation", "agent1", "saw B");
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_DOUBLE_EQ(tr.at(0).t, 1.0);
  EXPECT_EQ(tr.at(0).category, "decision");
  EXPECT_EQ(tr.at(1).subject, "agent1");
  EXPECT_EQ(tr.at(1).detail, "saw B");
}

TEST(Trace, DisabledRecordsNothing) {
  Trace tr(false);
  tr.record(1.0, "x", "y", "z");
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_FALSE(tr.enabled());
}

TEST(Trace, CanBeToggled) {
  Trace tr(false);
  tr.set_enabled(true);
  tr.record(1.0, "x", "y", "z");
  EXPECT_EQ(tr.size(), 1u);
  tr.set_enabled(false);
  tr.record(2.0, "x", "y", "z");
  EXPECT_EQ(tr.size(), 1u);
}

TEST(Trace, ByCategoryFilters) {
  Trace tr;
  tr.record(1.0, "a", "s1", "1");
  tr.record(2.0, "b", "s1", "2");
  tr.record(3.0, "a", "s2", "3");
  const auto as = tr.by_category("a");
  ASSERT_EQ(as.size(), 2u);
  EXPECT_EQ(as[0]->detail, "1");
  EXPECT_EQ(as[1]->detail, "3");
  EXPECT_TRUE(tr.by_category("missing").empty());
}

TEST(Trace, BySubjectFilters) {
  Trace tr;
  tr.record(1.0, "a", "s1", "1");
  tr.record(2.0, "b", "s2", "2");
  const auto s2 = tr.by_subject("s2");
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0]->category, "b");
}

TEST(Trace, ClearEmpties) {
  Trace tr;
  tr.record(1.0, "a", "s", "d");
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
}

}  // namespace
}  // namespace sa::sim
