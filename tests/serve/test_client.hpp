// Minimal blocking loopback HTTP client for the serve test suites. Talks
// to 127.0.0.1:<port> only; one request per connection unless the caller
// reuses the fd. Deliberately independent of serve::HttpParser so the
// tests do not validate the server with the very code under test.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace sa::serve::testing {

/// Connects to 127.0.0.1:port; returns the fd or -1.
inline int connect_loopback(unsigned short port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

/// Sends `raw` and reads until the peer closes (or the 5 s read timeout
/// fires). Returns everything received — status line, headers and body.
inline std::string raw_request(unsigned short port, const std::string& raw) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  ::send(fd, raw.data(), raw.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// One-shot GET with Connection: close; returns the full response.
inline std::string http_get(unsigned short port, const std::string& target) {
  return raw_request(port, "GET " + target +
                               " HTTP/1.1\r\nHost: t\r\n"
                               "Connection: close\r\n\r\n");
}

/// One-shot POST (form body) with Connection: close.
inline std::string http_post(unsigned short port, const std::string& target,
                             const std::string& body) {
  return raw_request(port, "POST " + target +
                               " HTTP/1.1\r\nHost: t\r\n"
                               "Content-Type: application/"
                               "x-www-form-urlencoded\r\nContent-Length: " +
                               std::to_string(body.size()) +
                               "\r\nConnection: close\r\n\r\n" + body);
}

/// The body part of a response (after the first blank line).
inline std::string body_of(const std::string& response) {
  const std::size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

/// The integer status code of a response ("HTTP/1.1 200 OK" -> 200).
inline int status_of(const std::string& response) {
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

}  // namespace sa::serve::testing
