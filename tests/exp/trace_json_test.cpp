// Tests for the Chrome/Perfetto trace-event export: document shape,
// metadata tracks, B/E pairing, flow phases, and byte determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/trace_json.hpp"

namespace sa::exp {
namespace {

using sim::FlowPhase;
using sim::TelemetryBus;
using sim::Tracer;

std::string render(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  return os.str();
}

TEST(ChromeTrace, EmptyTracerStillYieldsAValidDocument) {
  TelemetryBus bus;
  Tracer tracer(bus);
  const std::string doc = render(tracer);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  // Process metadata is always present.
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("sa-sim"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

#ifndef SA_TELEMETRY_OFF
TEST(ChromeTrace, SubjectsBecomeNamedThreads) {
  TelemetryBus bus;
  Tracer tracer(bus);
  bus.intern_subject("agent.alpha");
  bus.intern_subject("runtime.alpha");
  const std::string doc = render(tracer);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("agent.alpha"), std::string::npos);
  EXPECT_NE(doc.find("runtime.alpha"), std::string::npos);
}

TEST(ChromeTrace, SpansBecomeBeginEndPairsWithTraceIdArg) {
  TelemetryBus bus;
  Tracer tracer(bus);
  const auto subj = bus.intern_subject("mgr");
  const auto name = tracer.intern_name("decide");
  const auto key = tracer.intern_name("action_index");
  {
    auto span = tracer.span(1.5, subj, name);
    span.arg(key, 2.0);
  }
  const std::string doc = render(tracer);
  EXPECT_NE(doc.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":1.5e+06"), std::string::npos);  // 1.5 s in us
  EXPECT_NE(doc.find("\"trace_id\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"action_index\":2.0"), std::string::npos);
}

TEST(ChromeTrace, FlowPhasesMapToChromePhases) {
  TelemetryBus bus;
  Tracer tracer(bus);
  const auto subj = bus.intern_subject("mgr");
  const auto name = tracer.intern_name("decision");
  auto span = tracer.span(0.0, subj, name);
  const auto id = tracer.next_id();
  tracer.flow(0.0, FlowPhase::Begin, id, subj, name);
  tracer.flow(1.0, FlowPhase::Step, id, subj, name);
  tracer.flow(2.0, FlowPhase::End, id, subj, name);
  span.end_at(2.0);
  const std::string doc = render(tracer);
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);
  // The terminating point binds to the enclosing slice.
  EXPECT_NE(doc.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"flow\""), std::string::npos);
}

TEST(ChromeTrace, OutputIsByteDeterministic) {
  auto run = [] {
    TelemetryBus bus;
    Tracer tracer(bus);
    const auto subj = bus.intern_subject("x");
    const auto name = tracer.intern_name("op");
    for (int i = 0; i < 20; ++i) {
      auto span = tracer.span(i * 0.5, subj, name);
      span.arg(name, i * 1.25);
      tracer.flow(i * 0.5, FlowPhase::Begin, span.id(), subj, name);
    }
    return render(tracer);
  };
  EXPECT_EQ(run(), run());
}
#endif  // SA_TELEMETRY_OFF

}  // namespace
}  // namespace sa::exp
