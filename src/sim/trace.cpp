#include "sim/trace.hpp"

#include <algorithm>
#include <cassert>

namespace sa::sim {

NameId Tracer::intern_name(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<NameId>(i);
  }
  names_.emplace_back(name);
  return static_cast<NameId>(names_.size() - 1);
}

Tracer::Span Tracer::span(double t, SubjectId subject, NameId name) {
#ifdef SA_TELEMETRY_OFF
  (void)t;
  (void)subject;
  (void)name;
  return Span{};
#else
  if (!enabled_) return Span{};
  Event ev;
  ev.kind = Event::Kind::Begin;
  ev.t = t;
  ev.subject = subject;
  ev.name = name;
  ev.id = compose(++counter_);
  const std::size_t index = events_.size();
  events_.push_back(std::move(ev));
  open_.push_back(index);
  ++span_count_;
  return Span{this, index, events_[index].id, t};
#endif
}

void Tracer::flow(double t, FlowPhase phase, TraceId id, SubjectId subject,
                  NameId name) {
#ifdef SA_TELEMETRY_OFF
  (void)t;
  (void)phase;
  (void)id;
  (void)subject;
  (void)name;
#else
  if (!enabled_ || id == 0) return;
  Event ev;
  ev.kind = Event::Kind::Flow;
  ev.t = t;
  ev.subject = subject;
  ev.name = name;
  ev.id = id;
  ev.phase = phase;
  events_.push_back(std::move(ev));
  ++flow_count_;
#endif
}

void Tracer::close(std::size_t event_index, double t) {
  const Event& begin = events_[event_index];
  assert(begin.kind == Event::Kind::Begin);
  Event ev;
  ev.kind = Event::Kind::End;
  ev.t = t;
  ev.subject = begin.subject;
  ev.name = begin.name;
  ev.id = begin.id;
  events_.push_back(std::move(ev));
  // Spans close LIFO in practice; tolerate out-of-order closes anyway.
  const auto it = std::find(open_.rbegin(), open_.rend(), event_index);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

void Tracer::clear() {
  events_.clear();
  open_.clear();
  counter_ = 0;
  span_count_ = 0;
  flow_count_ = 0;
}

void Tracer::Span::arg(NameId key, double value) {
  if (tracer_ == nullptr) return;
  tracer_->events_[event_].args.emplace_back(key, value);
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  tracer_->close(event_, t_);
  tracer_ = nullptr;
}

void Tracer::Span::end_at(double t) {
  if (tracer_ == nullptr) return;
  tracer_->close(event_, t);
  tracer_ = nullptr;
}

}  // namespace sa::sim
