file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_levels.dir/bench_e5_levels.cpp.o"
  "CMakeFiles/bench_e5_levels.dir/bench_e5_levels.cpp.o.d"
  "bench_e5_levels"
  "bench_e5_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
