#include "serve/bridge.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace sa::serve {

namespace {

/// application/x-www-form-urlencoded decoding: '+' -> space, %XX -> byte.
/// Returns false on a truncated or non-hex escape.
bool form_decode(std::string_view in, std::string& out) {
  const auto hex = [](char h) -> int {
    if (h >= '0' && h <= '9') return h - '0';
    if (h >= 'a' && h <= 'f') return h - 'a' + 10;
    if (h >= 'A' && h <= 'F') return h - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return true;
}

/// Decoded value of `key` in a "k=v&k=v" form body. "" if the key is absent
/// or carries a malformed escape — the caller's required-field validation
/// then turns that into a 400.
std::string form_get(std::string_view body, std::string_view key) {
  std::size_t pos = 0;
  std::string k, v;
  while (pos < body.size()) {
    std::size_t amp = body.find('&', pos);
    if (amp == std::string_view::npos) amp = body.size();
    const std::string_view pair = body.substr(pos, amp - pos);
    pos = amp + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (!form_decode(pair.substr(0, eq), k) || k != key) continue;
    if (!form_decode(pair.substr(eq + 1), v)) return {};
    return v;
  }
  return {};
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_size(const std::string& s, std::size_t& out) {
  double d = 0.0;
  if (!parse_double(s, d) || d < 0) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

/// Constant-time comparison: the time depends only on the longer length,
/// never on where the first mismatching byte sits, so a remote caller
/// cannot binary-search the control token byte by byte.
bool token_equal(std::string_view a, std::string_view b) {
  const std::size_t n = std::max(a.size(), b.size());
  unsigned diff = static_cast<unsigned>(a.size() ^ b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i])
                                          : static_cast<unsigned char>(0);
    const unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i])
                                          : static_cast<unsigned char>(0);
    diff |= static_cast<unsigned>(ca ^ cb);
  }
  return diff == 0;
}

/// The token a control request presented: the `token=` form field, or an
/// `Authorization: Bearer …` header.
std::string presented_token(const HttpRequest& req) {
  std::string tok = form_get(req.body, "token");
  if (!tok.empty()) return tok;
  const std::string* auth = req.header("Authorization");
  constexpr std::string_view kBearer = "Bearer ";
  if (auth != nullptr && auth->size() > kBearer.size() &&
      std::string_view(*auth).substr(0, kBearer.size()) == kBearer) {
    return auth->substr(kBearer.size());
  }
  return {};
}

}  // namespace

SimBridge::SimBridge(Options opts) : opts_(std::move(opts)) {
  if (opts_.publish_period <= 0.0) opts_.publish_period = 0.1;
}

void SimBridge::set_telemetry(sim::TelemetryBus* bus) {
  bus_ = bus;
  if (bus_ != nullptr && fanout_ == nullptr) {
    fanout_ = std::make_unique<sim::FanoutSink>(opts_.sse_queue);
    bus_->add_sink(fanout_.get());
  }
}

void SimBridge::add_agent(core::SelfAwareAgent* agent) {
  if (agent != nullptr) agents_.push_back(agent);
}

void SimBridge::add_degradation(core::DegradationPolicy* policy) {
  if (policy != nullptr) ladders_.push_back(policy);
}

void SimBridge::attach(sim::Engine& engine) {
  engine_ = &engine;
  engine.every_tagged(
      sim::event_tag("sa.serve.publish"), opts_.publish_period,
      [this, &engine] {
        drain_mailbox(&engine);
        publish_now(engine.now());
        return !shutdown_requested();
      },
      opts_.event_order);
  drain_mailbox(&engine);
  publish_now(engine.now());
}

void SimBridge::install(Server& server) {
  server_ = &server;
  server.route("GET", "/metrics",
               [this](const HttpRequest&) { return handle_metrics(); });
  server.route("GET", "/status",
               [this](const HttpRequest&) { return handle_status(); });
  server.route("GET", "/healthz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });
  server.route("POST", "/control",
               [this](const HttpRequest& req) { return handle_control(req); });
  server.route_stream(
      "/events",
      [this](const HttpRequest&, StreamWriter& w) { handle_events(w); });
}

void SimBridge::publish_now(double t) {
  ++publishes_;
  // Stamp the server's self-model with the sim clock so slow-request ring
  // entries can say *when in the simulation* a scrape was slow.
  if (server_ != nullptr) server_->stats().set_sim_time(t);
  if (metrics_ != nullptr) metrics_->publish(t);
  if (bus_ != nullptr) {
    auto snap = std::make_shared<BusSnapshot>();
    snap->t = t;
    snap->total = bus_->total();
    snap->categories.reserve(bus_->categories());
    for (sim::CategoryId c = 0; c < bus_->categories(); ++c) {
      snap->categories.push_back({bus_->category_name(c), bus_->count(c)});
    }
    bus_snap_.publish(std::move(snap));

    auto names = std::make_shared<NameTable>();
    names->categories.reserve(bus_->categories());
    for (sim::CategoryId c = 0; c < bus_->categories(); ++c) {
      names->categories.push_back(bus_->category_name(c));
    }
    names->subjects.reserve(bus_->subjects());
    for (sim::SubjectId s = 0; s < bus_->subjects(); ++s) {
      names->subjects.push_back(bus_->subject_name(s));
    }
    names_.publish(std::move(names));
  }
  if (shard_source_) {
    auto snap = std::make_shared<ShardSnapshot>(shard_source_());
    snap->t = t;
    shard_snap_.publish(std::move(snap));
  }
  status_doc_.emplace(build_status(t, engine_));
}

void SimBridge::drain_mailbox(sim::Engine* engine) {
  std::vector<Command> cmds;
  {
    std::unique_lock lk(mailbox_mu_, std::try_to_lock);
    if (lk.owns_lock()) cmds.swap(mailbox_);
    // A contended mailbox just waits for the next drain period.
  }
  for (const Command& cmd : cmds) {
    switch (cmd.kind) {
      case Command::Kind::Inject:
        if (injector_ != nullptr && engine != nullptr) {
          injector_->inject_now(*engine, cmd.fault_kind, cmd.unit,
                                cmd.magnitude, cmd.duration);
          if (journal_ != nullptr) {
            ckpt::ControlCommand jc;
            jc.kind = ckpt::ControlCommand::Kind::kInject;
            jc.fault_kind = cmd.fault_kind;
            jc.unit = cmd.unit;
            jc.magnitude = cmd.magnitude;
            jc.duration = cmd.duration;
            journal_->record(engine->now(), jc);
          }
        }
        break;
      case Command::Kind::Histogram:
        if (bus_ != nullptr) {
          bus_->enable_histogram(bus_->intern_category(cmd.category), cmd.lo,
                                 cmd.hi, cmd.bins);
          if (journal_ != nullptr) {
            ckpt::ControlCommand jc;
            jc.kind = ckpt::ControlCommand::Kind::kHistogram;
            jc.category = cmd.category;
            jc.lo = cmd.lo;
            jc.hi = cmd.hi;
            jc.bins = cmd.bins;
            journal_->record(engine != nullptr ? engine->now() : 0.0, jc);
          }
        }
        break;
      case Command::Kind::Checkpoint:
        // Not journaled: a checkpoint reads state but never mutates the
        // trajectory, so replaying one would be meaningless.
        if (checkpoint_hook_) {
          const double t = engine != nullptr ? engine->now() : 0.0;
          if (checkpoint_hook_(t)) note_checkpoint(t);
        }
        break;
    }
    commands_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  if (paused_.load(std::memory_order_relaxed)) {
    // Let /status show the pause before the sim thread blocks on it.
    status_doc_.emplace(
        build_status(engine != nullptr ? engine->now() : 0.0, engine));
    std::unique_lock lk(pause_mu_);
    pause_cv_.wait(lk, [this] {
      return !paused_.load(std::memory_order_relaxed) ||
             shutdown_.load(std::memory_order_relaxed);
    });
  }
}

void SimBridge::post(Command cmd) {
  {
    const std::scoped_lock lk(mailbox_mu_);
    mailbox_.push_back(std::move(cmd));
  }
}

ServeStats SimBridge::serve_stats() const {
  ServeStats st;
  if (server_ != nullptr) {
    st.connections = server_->connections();
    st.requests = server_->requests();
    st.parse_errors = server_->parse_errors();
  }
  if (fanout_ != nullptr) {
    st.sse_subscribers = fanout_->subscribers();
    st.sse_dropped_contended = fanout_->dropped_contended();
    st.sse_dropped_overflow = fanout_->dropped_overflow();
  }
  return st;
}

HttpResponse SimBridge::handle_metrics() const {
  const auto live =
      metrics_ != nullptr ? metrics_->live()
                          : std::shared_ptr<
                                const sim::MetricsRegistry::LiveSnapshot>{};
  const auto bus = bus_snap_.read();
  const auto shard = shard_snap_.read();
  const ServeStats st = serve_stats();
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (server_ != nullptr) {
    const ServerStats::Snapshot self = server_->stats().snapshot();
    resp.body =
        render_prometheus(live.get(), bus.get(), &st, &self, shard.get());
  } else {
    resp.body =
        render_prometheus(live.get(), bus.get(), &st, nullptr, shard.get());
  }
  return resp;
}

HttpResponse SimBridge::handle_status() const {
  const auto doc = status_doc_.read();
  return json_response(200, doc != nullptr
                                ? *doc
                                : std::string("{\"published\":false}\n"));
}

HttpResponse SimBridge::handle_control(const HttpRequest& req) {
  if (!opts_.control_token.empty() &&
      !token_equal(presented_token(req), opts_.control_token)) {
    return json_response(401, "{\"error\":\"control token required\"}\n");
  }
  const std::string cmd = form_get(req.body, "cmd");
  if (cmd == "pause") {
    paused_.store(true, std::memory_order_relaxed);
    return json_response(202, "{\"queued\":\"pause\"}\n");
  }
  if (cmd == "resume") {
    {
      // The store must be ordered with the sim thread's predicate check in
      // drain_mailbox(): unlocked, the notify could land between that check
      // and the wait and be lost, leaving the sim paused indefinitely.
      const std::scoped_lock lk(pause_mu_);
      paused_.store(false, std::memory_order_relaxed);
    }
    pause_cv_.notify_all();
    return json_response(202, "{\"queued\":\"resume\"}\n");
  }
  if (cmd == "shutdown") {
    {
      const std::scoped_lock lk(pause_mu_);  // same ordering as resume
      shutdown_.store(true, std::memory_order_relaxed);
    }
    pause_cv_.notify_all();
    return json_response(200, "{\"shutdown\":true}\n");
  }
  if (cmd == "inject") {
    if (injector_ == nullptr) {
      return json_response(503, "{\"error\":\"no injector wired\"}\n");
    }
    Command c;
    c.kind = Command::Kind::Inject;
    try {
      c.fault_kind = fault::kind_from(form_get(req.body, "kind"));
    } catch (const std::invalid_argument& e) {
      return json_response(
          400, "{\"error\":\"" + json_escape(e.what()) + "\"}\n");
    }
    parse_size(form_get(req.body, "unit"), c.unit);
    parse_double(form_get(req.body, "mag"), c.magnitude);
    parse_double(form_get(req.body, "dur"), c.duration);
    post(std::move(c));
    return json_response(202, "{\"queued\":\"inject\"}\n");
  }
  if (cmd == "histogram") {
    if (bus_ == nullptr) {
      return json_response(503, "{\"error\":\"no telemetry bus wired\"}\n");
    }
    Command c;
    c.kind = Command::Kind::Histogram;
    c.category = form_get(req.body, "category");
    if (c.category.empty()) {
      return json_response(400, "{\"error\":\"missing category\"}\n");
    }
    if (!parse_double(form_get(req.body, "lo"), c.lo) ||
        !parse_double(form_get(req.body, "hi"), c.hi) ||
        !parse_size(form_get(req.body, "bins"), c.bins) || c.bins == 0 ||
        !(c.lo < c.hi)) {
      return json_response(400, "{\"error\":\"need lo < hi and bins > 0\"}\n");
    }
    post(std::move(c));
    return json_response(202, "{\"queued\":\"histogram\"}\n");
  }
  if (cmd == "checkpoint") {
    if (!checkpoint_hook_) {
      return json_response(
          503, "{\"error\":\"checkpointing not enabled (run with "
               "--checkpoint)\"}\n");
    }
    Command c;
    c.kind = Command::Kind::Checkpoint;
    post(std::move(c));
    return json_response(202, "{\"queued\":\"checkpoint\"}\n");
  }
  return json_response(
      400,
      "{\"error\":\"unknown cmd; expected pause|resume|shutdown|inject|"
      "histogram|checkpoint\"}\n");
}

void SimBridge::handle_events(StreamWriter& writer) {
  if (fanout_ == nullptr) {
    writer.write("event: error\ndata: no telemetry bus wired\n\n");
    return;
  }
  const auto sub = fanout_->subscribe();
  while (writer.open() && !shutdown_requested()) {
    const auto recs = sub->drain(/*wait_ms=*/250);
    if (recs.empty()) {
      // Comment frame: keeps intermediaries from timing the stream out and
      // detects a dead client between events.
      if (!writer.write(": keep-alive\n\n")) break;
      continue;
    }
    const auto names = names_.read();
    std::string payload;
    payload.reserve(recs.size() * 96);
    for (const auto& r : recs) {
      const std::string& cat =
          names != nullptr && r.category < names->categories.size()
              ? names->categories[r.category]
              : std::to_string(r.category);
      const std::string& subj =
          names != nullptr && r.subject < names->subjects.size()
              ? names->subjects[r.subject]
              : std::to_string(r.subject);
      payload += "data: {\"t\":";
      payload += format_value(r.t);
      payload += ",\"category\":\"";
      payload += json_escape(cat);
      payload += "\",\"subject\":\"";
      payload += json_escape(subj);
      payload += "\",\"value\":";
      payload += format_value(r.value);
      payload += ",\"detail\":\"";
      payload += json_escape(r.detail);
      payload += "\"}\n\n";
    }
    if (!writer.write(payload)) break;
  }
  // Per-subscriber drops were already aggregated into the sink's overflow
  // counter at offer time, so nothing to fold in here.
  fanout_->unsubscribe(sub);
}

std::string SimBridge::build_status(double t, sim::Engine* engine) const {
  std::string out;
  out.reserve(1024);
  out += "{\"t\":";
  out += format_value(t);
  out += ",\"publishes\":";
  out += std::to_string(publishes_);
  out += ",\"paused\":";
  out += paused_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\"commands_applied\":";
  out += std::to_string(commands_applied_.load(std::memory_order_relaxed));
  out += ",\"checkpoint\":{\"count\":";
  out += std::to_string(ckpt_count_.load(std::memory_order_relaxed));
  out += ",\"last_t\":";
  out += format_value(ckpt_last_t_.load(std::memory_order_relaxed));
  out += ",\"enabled\":";
  out += checkpoint_hook_ ? "true" : "false";
  out += '}';
  if (engine != nullptr) {
    out += ",\"engine\":{\"executed\":";
    out += std::to_string(engine->executed());
    out += ",\"pending\":";
    out += std::to_string(engine->pending());
    out += '}';
  }

  // Published just above in publish_now(), so /status and /metrics agree.
  if (const auto shard = shard_snap_.read(); shard != nullptr) {
    out += ",\"shards\":{\"events\":[";
    for (std::size_t i = 0; i < shard->events.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(shard->events[i]);
    }
    out += "],\"lag_seconds\":";
    out += format_value(shard->lag_seconds);
    out += '}';
  }

  if (server_ != nullptr) {
    const ServerStats::Snapshot self = server_->stats().snapshot();
    out += ",\"serve\":{\"active_connections\":";
    out += std::to_string(self.active);
    out += ",\"keepalive_reuses\":";
    out += std::to_string(self.keepalive_reuses);
    out += ",\"slow_requests\":[";
    const std::size_t n =
        std::min(opts_.status_slow_requests, self.slow.size());
    for (std::size_t i = self.slow.size() - n; i < self.slow.size(); ++i) {
      const ServerStats::SlowRequest& s = self.slow[i];
      if (i != self.slow.size() - n) out += ',';
      out += "{\"route\":\"";
      out += route_label(s.route);
      out += "\",\"duration_s\":";
      out += format_value(s.duration_s);
      out += ",\"status\":";
      out += std::to_string(s.status);
      out += ",\"sim_t\":";
      out += format_value(s.sim_t);
      out += '}';
    }
    out += "]}";
  }

  out += ",\"agents\":[";
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const core::SelfAwareAgent& a = *agents_[i];
    if (i) out += ',';
    out += "{\"id\":\"";
    out += json_escape(a.id());
    out += "\",\"steps\":";
    out += std::to_string(a.steps());
    out += ",\"active_levels\":\"";
    out += json_escape(a.active_levels().to_string());
    out += "\",\"utility\":";
    out += format_value(a.current_utility());
    out += ",\"sensor_gaps\":";
    out += std::to_string(a.sensor_gaps());
    out += '}';
  }
  out += ']';

  out += ",\"degradation\":[";
  for (std::size_t i = 0; i < ladders_.size(); ++i) {
    core::DegradationPolicy& d = *ladders_[i];
    if (i) out += ',';
    out += "{\"agent\":\"";
    out += json_escape(d.agent().id());
    out += "\",\"mode\":\"";
    out += core::DegradationPolicy::mode_name(d.mode());
    out += "\",\"rung\":";
    out += std::to_string(d.rung());
    out += ",\"degradations\":";
    out += std::to_string(d.degradations());
    out += ",\"recoveries\":";
    out += std::to_string(d.recoveries());
    out += ",\"last_trigger\":\"";
    out += json_escape(d.last_trigger());
    out += "\"}";
  }
  out += ']';

  if (injector_ != nullptr) {
    out += ",\"faults\":{\"injected\":";
    out += std::to_string(injector_->injected());
    out += ",\"restored\":";
    out += std::to_string(injector_->restored());
    out += ",\"active\":";
    out += std::to_string(injector_->active());
    out += ",\"recent\":[";
    const auto records = injector_->records();
    const std::size_t n = std::min(opts_.status_faults, records.size());
    for (std::size_t i = records.size() - n; i < records.size(); ++i) {
      const auto& r = records[i];
      if (i != records.size() - n) out += ',';
      out += "{\"t\":";
      out += format_value(r.t);
      out += ",\"kind\":\"";
      out += fault::kind_name(r.kind);
      out += "\",\"surface\":\"";
      out += json_escape(r.surface);
      out += "\",\"unit\":";
      out += std::to_string(r.unit);
      out += ",\"magnitude\":";
      out += format_value(r.magnitude);
      out += ",\"begin\":";
      out += r.begin ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }

  out += ",\"explanations\":[";
  bool first = true;
  for (core::SelfAwareAgent* a : agents_) {
    const auto recent = a->explainer().snapshot(opts_.status_explanations);
    for (const core::Explanation& e : recent) {
      if (!first) out += ',';
      first = false;
      out += "{\"agent\":\"";
      out += json_escape(e.agent);
      out += "\",\"t\":";
      out += format_value(e.t);
      out += ",\"text\":\"";
      out += json_escape(e.render());
      out += "\"}";
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace sa::serve
