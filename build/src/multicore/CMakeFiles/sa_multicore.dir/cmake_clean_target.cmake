file(REMOVE_RECURSE
  "libsa_multicore.a"
)
