// Volunteer-cloud cluster simulator.
//
// Substrate for the paper's cloud-uncertainty motivation (Section II,
// Elhabbash et al. [14][15]; Chen & Bahsoon [58]): capacity is donated by
// volunteer nodes that appear and disappear outside the system's control,
// with per-node reliability the system can only learn by interacting. An
// autoscaler decides, per epoch, how many nodes to enrol and how to choose
// them; demand arrives as a diurnal-plus-burst request stream.
//
// Epoch model (coarse-grained fluid approximation): during each epoch the
// enrolled-and-up nodes provide capacity C; arriving requests plus backlog
// are served up to C; unserved work queues (and is dropped past a queue
// bound, counting as SLA violations). Node up/down transitions follow
// per-node exponential on/off renewal processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace sa::cloud {

/// A donated machine with its own (hidden) availability behaviour.
struct VolunteerNode {
  std::string id;
  double capacity = 10.0;  ///< requests/s when up
  double mttf_s = 300.0;   ///< mean time to failure while enrolled
  double mttr_s = 60.0;    ///< mean time to recovery
  bool up = true;
  bool enrolled = false;
  bool preempted = false;  ///< forced down by a fault injector
  double cost_per_s = 1.0; ///< price of keeping it enrolled
  double next_transition = 0.0;  ///< internal: next up/down flip time
  double boot_until = 0.0;       ///< provisioning lag: no capacity before
};

/// What happened during one epoch, as the autoscaler can see it.
struct CloudEpoch {
  double duration = 0.0;
  double demand = 0.0;          ///< requests arrived (incl. backlog served)
  double arrival_rate = 0.0;    ///< requests/s this epoch
  double served = 0.0;          ///< requests completed
  double dropped = 0.0;         ///< requests lost (queue overflow)
  double backlog = 0.0;         ///< queue carried into the next epoch
  double capacity = 0.0;        ///< mean up-and-enrolled capacity, req/s
  double sla = 1.0;             ///< served / (served + dropped + backlog_in)
  double cost = 0.0;            ///< enrolment cost accrued
  std::size_t enrolled = 0;     ///< nodes enrolled at epoch end
  std::size_t up_enrolled = 0;  ///< of those, how many were up at epoch end
  double utilisation = 0.0;     ///< demand / capacity (clamped)
};

/// Diurnal demand with bursts and a slow drift — the "ongoing change" knob.
class DemandModel {
 public:
  struct Params {
    double base = 40.0;        ///< mean requests/s
    double diurnal_amp = 0.5;  ///< relative amplitude of the daily sine
    double period_s = 600.0;   ///< length of a simulated "day"
    double burst_prob = 0.02;  ///< per-epoch chance a burst starts
    double burst_mult = 2.5;   ///< demand multiplier during a burst
    double burst_len_s = 40.0; ///< mean burst duration
    double drift_per_s = 0.0;  ///< linear growth of the base rate
  };

  DemandModel() : DemandModel(Params{}) {}
  explicit DemandModel(Params p) : p_(p) {}

  /// Arrival rate at time `t` (advances burst state; call once per epoch).
  double rate(double t, double epoch_s, sim::Rng& rng);
  [[nodiscard]] bool bursting() const noexcept { return burst_until_ > 0.0; }
  /// Live base-rate override: composite scenarios couple upstream
  /// deliveries into backend demand (see gen::Scenario). Deterministic —
  /// demand still draws only from the caller-provided epoch Rng.
  void set_base(double base) noexcept { p_.base = base; }
  [[nodiscard]] double base() const noexcept { return p_.base; }

 private:
  Params p_;
  double burst_until_ = 0.0;
};

/// The cluster: node population + queueing dynamics.
class Cluster {
 public:
  struct Params {
    std::size_t nodes = 30;
    double epoch_s = 10.0;
    double queue_bound = 400.0;    ///< requests held before dropping
    double capacity_mean = 10.0;   ///< per-node requests/s (±50% uniform)
    double mttf_mean_s = 300.0;    ///< heterogeneous: drawn per node
    double mttr_mean_s = 60.0;
    double boot_s = 0.0;           ///< provisioning lag for new enrolments
    std::uint64_t seed = 11;
  };

  Cluster() : Cluster(Params{}) {}
  explicit Cluster(Params p);

  /// Enrols exactly `k` nodes chosen by `order` (a permutation of node
  /// indices, best-first); the rest are released.
  void enrol(const std::vector<std::size_t>& order, std::size_t k);
  /// Advances one epoch under arrival rate `rate`; returns what happened.
  CloudEpoch run_epoch(double rate);

  // -- Fault surfaces (driven by sa::fault, inert otherwise) ----------------
  /// Preempts node `i`: it delivers no capacity regardless of its own
  /// availability process (the provider reclaimed the VM). Its internal
  /// renewal clock keeps running, so on release it resumes mid-life.
  void set_preempted(std::size_t i, bool preempted) {
    nodes_[i].preempted = preempted;
  }
  [[nodiscard]] bool preempted(std::size_t i) const {
    return nodes_[i].preempted;
  }
  /// Scales every node's delivered capacity (cluster-wide latency spike:
  /// while < 1 effective service drops and queues build). 1 = nominal.
  void set_capacity_factor(double f) {
    capacity_factor_ = std::max(0.0, f);
  }
  [[nodiscard]] double capacity_factor() const noexcept {
    return capacity_factor_;
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] double epoch_seconds() const noexcept { return p_.epoch_s; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const VolunteerNode& node(std::size_t i) const {
    return nodes_[i];
  }
  /// Per-epoch per-node outcome of the last epoch: was the node enrolled
  /// and did it stay up the whole time? (Feeds interaction awareness.)
  struct NodeOutcome {
    std::size_t index;
    bool stayed_up;
    double delivered;  ///< capacity it actually provided, req/s
  };
  [[nodiscard]] const std::vector<NodeOutcome>& last_outcomes() const {
    return outcomes_;
  }

  /// Emits one kFailure per enrolled node that went down during an epoch
  /// (detail = node id) and one kObservation per epoch (value = SLA).
  /// Non-owning; null disables emission.
  void set_telemetry(sim::TelemetryBus* bus);

 private:
  void advance_availability(VolunteerNode& n, double until);

  Params p_;
  std::vector<VolunteerNode> nodes_;
  sim::Rng rng_;
  double now_ = 0.0;
  double backlog_ = 0.0;
  double capacity_factor_ = 1.0;  ///< fault-injected service degradation
  std::vector<NodeOutcome> outcomes_;
  std::vector<char> was_enrolled_;  ///< enrol() scratch (reused per epoch)

  sim::TelemetryBus* telemetry_ = nullptr;
  sim::SubjectId subject_ = 0;
};

}  // namespace sa::cloud
