#include "core/explain.hpp"

#include <iomanip>
#include <sstream>

namespace sa::core {

std::string Explanation::render() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "[t=" << t << "] " << agent << " chose '" << decision.action << "'";
  if (!decision.rationale.empty()) os << " because " << decision.rationale;
  os << ".";
  if (!decision.considered.empty()) {
    os << " Alternatives considered:";
    for (const auto& opt : decision.considered) {
      os << ' ' << opt.action << "(" << opt.score << ")";
    }
    os << ".";
  }
  if (!evidence.empty()) {
    os << " Evidence:";
    for (const auto& ev : evidence) {
      os << ' ' << ev.key << "=" << ev.value << " [conf " << ev.confidence
         << "]";
    }
    os << ".";
  }
  if (has_goal) os << " Goal utility at decision time: " << goal_utility << ".";
  return os.str();
}

Explainer::ActionSummary Explainer::summarise(
    const std::string& action) const {
  ActionSummary out;
  double utility_sum = 0.0;
  std::size_t with_goal = 0;
  for (const auto& e : log_) {
    if (e.decision.action != action) continue;
    ++out.count;
    out.last_rationale = e.decision.rationale;
    if (e.has_goal) {
      utility_sum += e.goal_utility;
      ++with_goal;
    }
  }
  if (with_goal > 0) {
    out.mean_goal_utility = utility_sum / static_cast<double>(with_goal);
  }
  return out;
}

void Explainer::record(Explanation e) {
  ++decisions_;
  if (!enabled_) return;
  if (log_.size() >= capacity_) {
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(
                                                capacity_ / 4 + 1));
  }
  log_.push_back(std::move(e));
}

}  // namespace sa::core
