
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multicore/manager.cpp" "src/multicore/CMakeFiles/sa_multicore.dir/manager.cpp.o" "gcc" "src/multicore/CMakeFiles/sa_multicore.dir/manager.cpp.o.d"
  "/root/repo/src/multicore/platform.cpp" "src/multicore/CMakeFiles/sa_multicore.dir/platform.cpp.o" "gcc" "src/multicore/CMakeFiles/sa_multicore.dir/platform.cpp.o.d"
  "/root/repo/src/multicore/workload.cpp" "src/multicore/CMakeFiles/sa_multicore.dir/workload.cpp.o" "gcc" "src/multicore/CMakeFiles/sa_multicore.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
