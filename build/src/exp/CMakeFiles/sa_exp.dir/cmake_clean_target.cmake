file(REMOVE_RECURSE
  "libsa_exp.a"
)
