// Attention: directing limited monitoring resources.
//
// Preden et al. [55] (and the psychology literature the paper draws on)
// tie self-awareness to attention: a resource-constrained system cannot
// observe everything, so it must choose what to attend to. The
// AttentionManager selects, each step, which of the registered signals to
// actually sample, under a budget. The Adaptive strategy allocates
// attention by expected information value: volatile signals and signals
// not sampled for a while score higher. Experiment E9 compares strategies.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "learn/estimators.hpp"
#include "sim/rng.hpp"

namespace sa::core {

class AttentionManager {
 public:
  enum class Strategy {
    All,        ///< ignore the budget; sample everything (upper bound)
    RoundRobin, ///< cycle through signals uniformly
    Random,     ///< sample a uniform random subset
    Adaptive,   ///< value-of-information: volatility + staleness
  };

  /// `budget` — max signals sampled per step (ignored by All).
  AttentionManager(Strategy strategy, std::size_t budget)
      : strategy_(strategy), budget_(budget) {}

  /// Declares a signal that may be attended to.
  void register_signal(const std::string& name);

  /// Chooses which signals to sample this step.
  [[nodiscard]] std::vector<std::string> select(sim::Rng& rng);

  /// Reports the value obtained for a sampled signal (drives the
  /// volatility model behind Adaptive).
  void feed(const std::string& name, double value);

  /// Current attention score of a signal (Adaptive; 0 otherwise).
  [[nodiscard]] double score(const std::string& name) const;
  [[nodiscard]] Strategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t signals() const noexcept { return order_.size(); }

 private:
  struct SignalState {
    learn::Ewma volatility{0.2};
    double last_value = 0.0;
    bool has_value = false;
    std::size_t staleness = 0;  ///< steps since last sampled
  };

  Strategy strategy_;
  std::size_t budget_;
  std::vector<std::string> order_;           // registration order
  std::map<std::string, SignalState> state_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace sa::core
