# Empty dependencies file for bench_e7_collective.
# This may be replaced when dependencies are built.
