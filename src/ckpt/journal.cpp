#include "ckpt/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace sa::ckpt {
namespace {

/// Round-trip double rendering (shortest would be nicer; %.17g is exact).
std::string render_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal x-www-form-urlencoded escaping for the category field (the
/// only free-form string a journaled command carries).
std::string form_escape(std::string_view in) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                       c == '.' || c == '~';
    if (plain) {
      out += c;
    } else {
      out += '%';
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += kHex[static_cast<unsigned char>(c) & 0xf];
    }
  }
  return out;
}

bool form_unescape(std::string_view in, std::string& out) {
  const auto hex = [](char h) -> int {
    if (h >= '0' && h <= '9') return h - '0';
    if (h >= 'a' && h <= 'f') return h - 'a' + 10;
    if (h >= 'A' && h <= 'F') return h - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return true;
}

std::string form_get(std::string_view body, std::string_view key) {
  std::size_t pos = 0;
  std::string k, v;
  while (pos < body.size()) {
    std::size_t amp = body.find('&', pos);
    if (amp == std::string_view::npos) amp = body.size();
    const std::string_view pair = body.substr(pos, amp - pos);
    pos = amp + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (!form_unescape(pair.substr(0, eq), k) || k != key) continue;
    if (!form_unescape(pair.substr(eq + 1), v)) return {};
    return v;
  }
  return {};
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_size(const std::string& s, std::size_t& out) {
  double d = 0.0;
  if (!parse_double(s, d) || d < 0) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\n' || s.front() == '\r'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::string ControlCommand::to_form() const {
  std::string out;
  if (kind == Kind::kInject) {
    out = "cmd=inject&kind=";
    out += fault::kind_name(fault_kind);
    out += "&unit=" + std::to_string(unit);
    out += "&mag=" + render_double(magnitude);
    out += "&dur=" + render_double(duration);
  } else {
    out = "cmd=histogram&category=" + form_escape(category);
    out += "&lo=" + render_double(lo);
    out += "&hi=" + render_double(hi);
    out += "&bins=" + std::to_string(bins);
  }
  return out;
}

Status ControlCommand::parse_form(std::string_view body, ControlCommand& out) {
  out = ControlCommand{};
  const std::string cmd = form_get(body, "cmd");
  if (cmd == "inject") {
    out.kind = Kind::kInject;
    try {
      out.fault_kind = fault::kind_from(form_get(body, "kind"));
    } catch (const std::invalid_argument& e) {
      return Status::error(Errc::kMalformed, e.what());
    }
    parse_size(form_get(body, "unit"), out.unit);
    parse_double(form_get(body, "mag"), out.magnitude);
    parse_double(form_get(body, "dur"), out.duration);
    return {};
  }
  if (cmd == "histogram") {
    out.kind = Kind::kHistogram;
    out.category = form_get(body, "category");
    if (out.category.empty())
      return Status::error(Errc::kMalformed, "histogram without category");
    if (!parse_double(form_get(body, "lo"), out.lo) ||
        !parse_double(form_get(body, "hi"), out.hi) ||
        !parse_size(form_get(body, "bins"), out.bins) || out.bins == 0 ||
        !(out.lo < out.hi))
      return Status::error(Errc::kMalformed,
                           "histogram needs lo < hi and bins > 0");
    return {};
  }
  return Status::error(Errc::kMalformed,
                       "journal supports cmd=inject|histogram, got '" + cmd +
                           "'");
}

Status parse_journal_spec(std::string_view spec,
                          std::vector<JournalEntry>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) semi = spec.size();
    const std::string_view item = trim(spec.substr(pos, semi - pos));
    pos = semi + 1;
    if (item.empty()) continue;
    const std::size_t sp = item.find(' ');
    if (sp == std::string_view::npos)
      return Status::error(Errc::kMalformed,
                           "journal entry needs 'T body': '" +
                               std::string(item) + "'");
    JournalEntry e;
    if (!parse_double(std::string(item.substr(0, sp)), e.t) || e.t < 0.0)
      return Status::error(Errc::kMalformed,
                           "bad journal timestamp in '" + std::string(item) +
                               "'");
    if (Status st =
            ControlCommand::parse_form(trim(item.substr(sp + 1)), e.cmd);
        !st.ok())
      return st;
    out.push_back(std::move(e));
  }
  return {};
}

std::string journal_spec(const std::vector<JournalEntry>& in) {
  std::string out;
  for (const JournalEntry& e : in) {
    if (!out.empty()) out += "; ";
    out += render_double(e.t);
    out += ' ';
    out += e.cmd.to_form();
  }
  return out;
}

void save_journal(const std::vector<JournalEntry>& in, Buffer& out) {
  out.u64(in.size());
  for (const JournalEntry& e : in) {
    out.f64(e.t);
    out.str(e.cmd.to_form());
  }
}

Status load_journal(Cursor& in, std::vector<JournalEntry>& out) {
  out.clear();
  std::uint64_t n = 0;
  if (!in.u64(n)) return Status::error(Errc::kMalformed, "journal count");
  out.reserve(static_cast<std::size_t>(n));
  std::string body;
  for (std::uint64_t i = 0; i < n; ++i) {
    JournalEntry e;
    if (!in.f64(e.t) || !in.str(body))
      return Status::error(Errc::kMalformed, "journal entry");
    if (Status st = ControlCommand::parse_form(body, e.cmd); !st.ok())
      return st;
    out.push_back(std::move(e));
  }
  return {};
}

void schedule_replay(sim::Engine& engine, std::vector<JournalEntry> entries,
                     int order, fault::Injector* injector,
                     sim::TelemetryBus* bus) {
  // Replay events are themselves tagged (by journal position), so a
  // restored-and-replaying world can be checkpointed again.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JournalEntry& e = entries[i];
    const sim::EventTag tag = sim::event_tag("sa.ckpt.replay", i);
    if (e.cmd.kind == ControlCommand::Kind::kInject) {
      if (injector == nullptr) continue;
      const ControlCommand cmd = e.cmd;
      engine.at_tagged(
          tag, e.t,
          [&engine, injector, cmd] {
            injector->inject_now(engine, cmd.fault_kind, cmd.unit,
                                 cmd.magnitude, cmd.duration);
          },
          order);
    } else {
      if (bus == nullptr) continue;
      const ControlCommand cmd = e.cmd;
      engine.at_tagged(
          tag, e.t,
          [bus, cmd] {
            bus->enable_histogram(bus->intern_category(cmd.category), cmd.lo,
                                  cmd.hi, cmd.bins);
          },
          order);
    }
  }
}

}  // namespace sa::ckpt
