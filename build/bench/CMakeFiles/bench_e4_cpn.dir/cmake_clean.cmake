file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_cpn.dir/bench_e4_cpn.cpp.o"
  "CMakeFiles/bench_e4_cpn.dir/bench_e4_cpn.cpp.o.d"
  "bench_e4_cpn"
  "bench_e4_cpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_cpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
