#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace sa::sim {
namespace {

TEST(RunningStats, EmptyIsSane) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, MatchesClosedFormOnKnownData) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TimeWeighted, ConstantSignalMeanIsItsValue) {
  TimeWeighted tw;
  tw.set(0.0, 4.0);
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 4.0);
}

TEST(TimeWeighted, StepSignalIntegratesCorrectly) {
  TimeWeighted tw;
  tw.set(0.0, 0.0);
  tw.set(5.0, 10.0);  // 0 for 5s, then 10 for 5s
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 10.0);
  EXPECT_DOUBLE_EQ(tw.min(), 0.0);
  EXPECT_DOUBLE_EQ(tw.max(), 10.0);
}

TEST(TimeWeighted, MultipleChanges) {
  TimeWeighted tw;
  tw.set(0.0, 2.0);
  tw.set(1.0, 4.0);
  tw.set(3.0, 0.0);
  // 2 over [0,1) + 4 over [1,3) + 0 over [3,4) = (2+8+0)/4
  EXPECT_DOUBLE_EQ(tw.mean(4.0), 2.5);
}

TEST(TimeWeighted, EmptyMeanIsZero) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.mean(5.0), 0.0);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(25.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, MedianOfUniformIsCentre) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(h.quantile(0.05), 0.05, 0.02);
}

TEST(Histogram, QuantileOnEmptyIsZero) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h(0.0, 100.0, 50);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(20.0));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SlidingWindow, EvictsOldestBeyondCapacity) {
  SlidingWindow w(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.front(), 2.0);
  EXPECT_DOUBLE_EQ(w.back(), 4.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindow, MeanTracksContents) {
  SlidingWindow w(2);
  w.add(10.0);
  EXPECT_DOUBLE_EQ(w.mean(), 10.0);
  w.add(20.0);
  EXPECT_DOUBLE_EQ(w.mean(), 15.0);
  w.add(30.0);
  EXPECT_DOUBLE_EQ(w.mean(), 25.0);
}

TEST(SlidingWindow, VarianceOfConstantIsZero) {
  SlidingWindow w(8);
  for (int i = 0; i < 8; ++i) w.add(7.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
}

TEST(SlidingWindow, QuantileIsExactOrderStatistic) {
  SlidingWindow w(5);
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 5.0);
}

TEST(SlidingWindow, FullFlagAndClear) {
  SlidingWindow w(2);
  EXPECT_FALSE(w.full());
  w.add(1.0);
  EXPECT_FALSE(w.full());
  w.add(2.0);
  EXPECT_TRUE(w.full());
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

}  // namespace
}  // namespace sa::sim
