// sa::loadgen — closed-loop HTTP load generation for the serve plane.
//
// A Pool drives a live sa::serve endpoint with three client populations:
//
//   scrapers     keep-alive (or connect-per-request) GET loops over
//                /metrics, /status and /healthz — the Prometheus-shaped
//                traffic the ROADMAP's fleet story is about;
//   subscribers  long-lived GET /events SSE streams that hold a server
//                worker and measure time-to-first-byte;
//   controllers  periodic POST /control no-ops (cmd=resume), exercising
//                the mailbox path without perturbing the trajectory.
//
// Every client thread owns its own latency histograms (the same fixed
// log-linear buckets as serve::ServerStats, so client- and server-side
// percentiles are directly comparable) and its pacing draws from a
// per-thread splitmix64 stream — wall-clock latencies are whatever the
// machine gives, but the *request schedule* is reproducible per seed.
// POSIX sockets only; no dependencies beyond sa_serve for the histogram.
//
// Reports merge per-thread state with integer addition, so the merged
// summary is byte-identical regardless of how many threads the samples
// were spread over — serve_determinism_test relies on this.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/stats.hpp"

namespace sa::loadgen {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned scrapers = 8;     ///< GET loop threads
  unsigned sse = 0;          ///< GET /events stream threads
  unsigned controllers = 0;  ///< periodic POST /control threads
  /// Mean wall-clock period between control POSTs (jittered ±50%).
  double control_period_s = 0.25;
  /// Mean think time between scraper requests (jittered ±50%); 0 runs the
  /// loop closed — the next request leaves when the response arrives.
  double think_s = 0.0;
  /// false: one connection per request (Connection: close), which cycles
  /// a small worker pool through thousands of clients.
  bool keep_alive = true;
  std::uint64_t seed = 1;  ///< base of the per-thread splitmix64 streams
  long timeout_ms = 5000;  ///< per-socket send/recv timeout
  std::string control_token;  ///< sent with every POST /control when set
};

/// Client-side view of one route class.
struct RouteReport {
  std::uint64_t requests = 0;  ///< completed with a 2xx status
  std::uint64_t errors = 0;    ///< connect/read failures or non-2xx
  serve::LatencyHistogram::Snapshot latency;  ///< successes only
};

struct Report {
  std::array<RouteReport, serve::kRouteClasses> routes{};
  std::uint64_t connects = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t bytes_received = 0;

  void merge(const Report& other) noexcept;
};

/// Renders a report as a JSON object keyed by route label, each with
/// requests/errors and p50/p90/p99/p99.9/mean seconds. Pure function of
/// the report — byte-identical for equal reports, however they were
/// accumulated.
[[nodiscard]] std::string summary_json(const Report& report);

/// One-shot GET helper (Connection: close, reads to EOF). Returns the
/// response body and stores the status in `status_out` (0 on transport
/// failure). Used by benches to self-scrape the endpoint they drive.
[[nodiscard]] std::string fetch(const std::string& host, std::uint16_t port,
                                const std::string& target, long timeout_ms,
                                int* status_out);

class Pool {
 public:
  explicit Pool(Options opts);
  ~Pool();  ///< stops and joins
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] unsigned clients() const noexcept {
    return opts_.scrapers + opts_.sse + opts_.controllers;
  }

  /// Merged across all client threads; callable while running (relaxed
  /// reads of live counters) or after stop().
  [[nodiscard]] Report report() const;

 private:
  struct ClientState;
  void scraper_main(ClientState& st, std::uint64_t stream);
  void sse_main(ClientState& st, std::uint64_t stream);
  void control_main(ClientState& st, std::uint64_t stream);

  Options opts_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<ClientState>> states_;
  std::vector<std::thread> threads_;
};

}  // namespace sa::loadgen
