file(REMOVE_RECURSE
  "CMakeFiles/svc_tests.dir/svc/drift_test.cpp.o"
  "CMakeFiles/svc_tests.dir/svc/drift_test.cpp.o.d"
  "CMakeFiles/svc_tests.dir/svc/fleet_test.cpp.o"
  "CMakeFiles/svc_tests.dir/svc/fleet_test.cpp.o.d"
  "CMakeFiles/svc_tests.dir/svc/links_test.cpp.o"
  "CMakeFiles/svc_tests.dir/svc/links_test.cpp.o.d"
  "CMakeFiles/svc_tests.dir/svc/network_test.cpp.o"
  "CMakeFiles/svc_tests.dir/svc/network_test.cpp.o.d"
  "svc_tests"
  "svc_tests.pdb"
  "svc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
