#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace sa::fault {
namespace {

TEST(FaultPlan, EmptySpecParsesToEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 0u);
  EXPECT_EQ(plan.to_string(), "");
}

TEST(FaultPlan, DefaultsMatchFaultProcess) {
  const auto plan = FaultPlan::parse("link-loss");
  ASSERT_EQ(plan.processes.size(), 1u);
  const FaultProcess def{};
  const auto& p = plan.processes[0];
  EXPECT_EQ(p.kind, FaultKind::LinkLoss);
  EXPECT_DOUBLE_EQ(p.rate, def.rate);
  EXPECT_DOUBLE_EQ(p.burstiness, def.burstiness);
  EXPECT_DOUBLE_EQ(p.duration_mean, def.duration_mean);
  EXPECT_DOUBLE_EQ(p.magnitude, def.magnitude);
  EXPECT_DOUBLE_EQ(p.start, def.start);
  EXPECT_TRUE(std::isinf(p.end));
}

TEST(FaultPlan, ParsesEveryKeyAndMultipleProcesses) {
  const auto plan = FaultPlan::parse(
      "core-fail:rate=0.5,burst=3,dur=8,mag=2,start=10,end=90;"
      "freq-cap:rate=0.1,mag=0;seed=77");
  ASSERT_EQ(plan.processes.size(), 2u);
  EXPECT_EQ(plan.seed, 77u);
  const auto& a = plan.processes[0];
  EXPECT_EQ(a.kind, FaultKind::CoreFail);
  EXPECT_DOUBLE_EQ(a.rate, 0.5);
  EXPECT_DOUBLE_EQ(a.burstiness, 3.0);
  EXPECT_DOUBLE_EQ(a.duration_mean, 8.0);
  EXPECT_DOUBLE_EQ(a.magnitude, 2.0);
  EXPECT_DOUBLE_EQ(a.start, 10.0);
  EXPECT_DOUBLE_EQ(a.end, 90.0);
  EXPECT_EQ(plan.processes[1].kind, FaultKind::FreqCap);
}

TEST(FaultPlan, NegativeDurationMeansPermanent) {
  const auto plan = FaultPlan::parse("link-loss:dur=-1");
  ASSERT_EQ(plan.processes.size(), 1u);
  EXPECT_LE(plan.processes[0].duration_mean, 0.0);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const auto plan = FaultPlan::parse(
      "sensor-dropout:rate=0.25,dur=5,start=100;"
      "vm-preempt:burst=2,end=500;seed=42");
  const auto again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.seed, plan.seed);
  ASSERT_EQ(again.processes.size(), plan.processes.size());
  for (std::size_t i = 0; i < plan.processes.size(); ++i) {
    EXPECT_EQ(again.processes[i].kind, plan.processes[i].kind);
    EXPECT_DOUBLE_EQ(again.processes[i].rate, plan.processes[i].rate);
    EXPECT_DOUBLE_EQ(again.processes[i].burstiness,
                     plan.processes[i].burstiness);
    EXPECT_DOUBLE_EQ(again.processes[i].duration_mean,
                     plan.processes[i].duration_mean);
    EXPECT_DOUBLE_EQ(again.processes[i].magnitude,
                     plan.processes[i].magnitude);
    EXPECT_DOUBLE_EQ(again.processes[i].start, plan.processes[i].start);
    EXPECT_DOUBLE_EQ(again.processes[i].end, plan.processes[i].end);
  }
  EXPECT_EQ(FaultPlan::parse(again.to_string()).to_string(),
            plan.to_string());
}

TEST(FaultPlan, SeedKeepsFull64BitPrecision) {
  // Seeds above 2^53 must not be routed through a double: every bit of
  // the seed feeds the splitmix64 stream derivation.
  const auto max64 = std::numeric_limits<std::uint64_t>::max();
  const auto plan = FaultPlan::parse("seed=" + std::to_string(max64));
  EXPECT_EQ(plan.seed, max64);
  const auto odd = FaultPlan::parse("seed=9007199254740993");  // 2^53 + 1
  EXPECT_EQ(odd.seed, 9007199254740993ull);
  EXPECT_EQ(FaultPlan::parse(odd.to_string()).seed, odd.seed);
}

TEST(FaultPlan, RejectsUnknownKindsAndKeysAndGarbage) {
  EXPECT_THROW((void)FaultPlan::parse("warp-core-breach"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("link-loss:frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("link-loss:rate=banana"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("seed=notanumber"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("seed=1.5"), std::invalid_argument);
}

TEST(FaultKindNames, RoundTripThroughAllKinds) {
  for (std::size_t i = 0; i < kFaultKinds; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    EXPECT_EQ(kind_from(kind_name(kind)), kind) << kind_name(kind);
  }
  EXPECT_THROW((void)kind_from("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace sa::fault
