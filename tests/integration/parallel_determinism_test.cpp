// Parallel-determinism regression: the sa::exp runner must produce
// byte-identical results whatever the thread count, on real substrate
// workloads (not just toy tasks). These are reduced-size versions of the
// E1 (multicore management) and E4 (CPN under DoS) grids — the two
// heaviest simulators — serialised through the timing-free JSON form and
// compared as strings.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "exp/harness.hpp"
#include "exp/runner.hpp"
#include "fault/adapters.hpp"
#include "fault/fault.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "support/metamorphic.hpp"

namespace {

using namespace sa;
using test::support::byte_identical;
using test::support::parallel_jobs;
using test::support::thread_count_invariant;
using test::support::timing_free_json;

/// Reduced E1: two manager variants on the phased big.LITTLE workload.
exp::Grid multicore_grid() {
  exp::Grid g;
  g.name = "e1.reduced";
  g.variants = {"static", "self-aware"};
  g.seeds = {11, 12};
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    multicore::Platform platform(
        multicore::PlatformConfig::big_little(2, 4), ctx.seed);
    auto workload = multicore::PhasedWorkload::standard();
    multicore::Manager::Params p;
    p.variant = ctx.variant == 0 ? multicore::Manager::Variant::Static
                                 : multicore::Manager::Variant::SelfAware;
    p.seed = ctx.seed;
    multicore::Manager mgr(platform, p);
    sim::RunningStats utility, power, latency;
    for (int i = 0; i < 120; ++i) {
      workload.apply(platform);
      utility.add(mgr.run_epoch());
      power.add(mgr.last_stats().mean_power);
      latency.add(mgr.last_stats().p95_latency);
    }
    return {{{"utility", utility.mean()},
             {"power_w", power.mean()},
             {"p95_s", latency.mean()},
             {"cap_viol", mgr.cap_violation_rate()}}};
  };
  return g;
}

/// Reduced E4: static vs self-aware routing through a short DoS window.
exp::Grid cpn_grid() {
  exp::Grid g;
  g.name = "e4.reduced";
  g.variants = {"static", "self-aware"};
  g.seeds = {41, 42};
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const auto topo = cpn::Topology::grid(4, 6, 4, ctx.seed);
    cpn::PacketNetwork::Params np;
    np.router = ctx.variant == 0 ? cpn::PacketNetwork::Router::Static
                                 : cpn::PacketNetwork::Router::QRouting;
    np.dos_defence = ctx.variant == 1;
    np.seed = ctx.seed;
    cpn::PacketNetwork net(topo, np);
    cpn::TrafficParams tp;
    tp.flows = 8;
    tp.legit_rate = 2.0;
    tp.attack_start = 300;
    tp.attack_end = 600;
    tp.attack_rate = 25.0;
    tp.attackers = 3;
    tp.seed = ctx.seed;
    cpn::TrafficGenerator gen(topo, tp);

    exp::Metrics m;
    const char* const windows[] = {"before", "during", "after"};
    for (const char* window : windows) {
      for (int i = 0; i < 300; ++i) {
        gen.tick(net);
        net.step();
      }
      const auto s = net.harvest();
      const std::string prefix = std::string(window) + ".";
      m.emplace_back(prefix + "delivery", s.delivery_rate());
      m.emplace_back(prefix + "mean_lat", s.mean_latency);
      m.emplace_back(prefix + "p95_lat", s.p95_latency);
    }
    return {std::move(m)};
  };
  return g;
}

/// Reduced E1 driven by the event kernel: same physics, but the manager is
/// bound to a sim::Engine (order 1) with the workload phase applied as a
/// dynamics event (order 0) at each epoch boundary, plus a passive monitor
/// agent stepping at an incommensurate-looking (but dyadic) 0.75 s period
/// to prove co-scheduling does not perturb the trajectory.
exp::Grid multicore_engine_grid() {
  exp::Grid g;
  g.name = "e1.reduced";
  g.variants = {"static", "self-aware"};
  g.seeds = {11, 12};
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    multicore::Platform platform(
        multicore::PlatformConfig::big_little(2, 4), ctx.seed);
    auto workload = multicore::PhasedWorkload::standard();
    multicore::Manager::Params p;
    p.variant = ctx.variant == 0 ? multicore::Manager::Variant::Static
                                 : multicore::Manager::Variant::SelfAware;
    p.seed = ctx.seed;
    multicore::Manager mgr(platform, p);

    sim::Engine engine;
    core::AgentRuntime rt(engine);
    engine.every(p.epoch_s,
                 [&] {
                   workload.apply(platform);
                   return true;
                 },
                 core::AgentRuntime::kOrderDynamics);
    sim::RunningStats utility, power, latency;
    mgr.bind(engine, 0.0, [&](double u) {
      utility.add(u);
      power.add(mgr.last_stats().mean_power);
      latency.add(mgr.last_stats().p95_latency);
    });
    // Passive observer with its own seed: reads harvested stats only, so it
    // must not change what the manager does.
    core::AgentConfig monitor_cfg;
    monitor_cfg.seed = 999;
    core::SelfAwareAgent monitor("monitor", monitor_cfg);
    monitor.add_sensor("power", [&] { return mgr.last_stats().mean_power; });
    rt.schedule(monitor, 0.75);

    engine.run_until(120 * p.epoch_s);
    return {{{"utility", utility.mean()},
             {"power_w", power.mean()},
             {"p95_s", latency.mean()},
             {"cap_viol", mgr.cap_violation_rate()}}};
  };
  return g;
}

/// Reduced E4 driven by the event kernel: generator and network bound as
/// two order-0 streams (registration order = per-tick order), windows
/// realised as run_until() horizons.
exp::Grid cpn_engine_grid() {
  exp::Grid g;
  g.name = "e4.reduced";
  g.variants = {"static", "self-aware"};
  g.seeds = {41, 42};
  g.task = [](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const auto topo = cpn::Topology::grid(4, 6, 4, ctx.seed);
    cpn::PacketNetwork::Params np;
    np.router = ctx.variant == 0 ? cpn::PacketNetwork::Router::Static
                                 : cpn::PacketNetwork::Router::QRouting;
    np.dos_defence = ctx.variant == 1;
    np.seed = ctx.seed;
    cpn::PacketNetwork net(topo, np);
    cpn::TrafficParams tp;
    tp.flows = 8;
    tp.legit_rate = 2.0;
    tp.attack_start = 300;
    tp.attack_end = 600;
    tp.attack_rate = 25.0;
    tp.attackers = 3;
    tp.seed = ctx.seed;
    cpn::TrafficGenerator gen(topo, tp);

    sim::Engine engine;
    gen.bind(engine, net);  // injection first...
    net.bind(engine);       // ...then transit, every tick

    exp::Metrics m;
    const char* const windows[] = {"before", "during", "after"};
    double horizon = 0.0;
    for (const char* window : windows) {
      horizon += 300.0;
      engine.run_until(horizon);
      const auto s = net.harvest();
      const std::string prefix = std::string(window) + ".";
      m.emplace_back(prefix + "delivery", s.delivery_rate());
      m.emplace_back(prefix + "mean_lat", s.mean_latency);
      m.emplace_back(prefix + "p95_lat", s.p95_latency);
    }
    return {std::move(m)};
  };
  return g;
}

/// Reduced E13: exactly the engine-driven E4 (same topology, traffic and
/// DoS window) with a fault injector bound in front — so an empty plan is
/// directly comparable against cpn_engine_grid, and a seeded plan's
/// faulted trajectory must be thread-count invariant.
exp::Grid cpn_faulted_grid(const std::string& plan_spec) {
  exp::Grid g;
  g.name = "e13.reduced";
  g.variants = {"static", "self-aware"};
  g.seeds = {41, 42};
  g.task = [plan_spec](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const auto topo = cpn::Topology::grid(4, 6, 4, ctx.seed);
    cpn::PacketNetwork::Params np;
    np.router = ctx.variant == 0 ? cpn::PacketNetwork::Router::Static
                                 : cpn::PacketNetwork::Router::QRouting;
    np.dos_defence = ctx.variant == 1;
    np.seed = ctx.seed;
    cpn::PacketNetwork net(topo, np);
    cpn::TrafficParams tp;
    tp.flows = 8;
    tp.legit_rate = 2.0;
    tp.attack_start = 300;
    tp.attack_end = 600;
    tp.attack_rate = 25.0;
    tp.attackers = 3;
    tp.seed = ctx.seed;
    cpn::TrafficGenerator gen(topo, tp);

    sim::Engine engine;
    fault::Injector inj;
    fault::bind_packet_network(inj, net);
    auto plan = fault::FaultPlan::parse(plan_spec);
    if (!plan.empty() && plan.seed == 0) plan.seed = ctx.seed;
    inj.bind(engine, plan);
    gen.bind(engine, net);
    net.bind(engine);

    exp::Metrics m;
    double horizon = 0.0;
    for (const char* window : {"before", "during", "after"}) {
      horizon += 300.0;
      engine.run_until(horizon);
      const auto s = net.harvest();
      const std::string prefix = std::string(window) + ".";
      m.emplace_back(prefix + "delivery", s.delivery_rate());
      m.emplace_back(prefix + "mean_lat", s.mean_latency);
      m.emplace_back(prefix + "p95_lat", s.p95_latency);
    }
    m.emplace_back("faults", static_cast<double>(inj.injected()));
    return {std::move(m)};
  };
  return g;
}

class ParallelDeterminism : public ::testing::Test {};

TEST(ParallelDeterminism, MulticoreGridIsThreadCountInvariant) {
  EXPECT_TRUE(thread_count_invariant(multicore_grid()));
}

TEST(ParallelDeterminism, CpnGridIsThreadCountInvariant) {
  EXPECT_TRUE(thread_count_invariant(cpn_grid()));
}

TEST(ParallelDeterminism, MulticoreEngineDrivenMatchesLockStep) {
  // The engine-driven E1 (Manager::bind + workload events + a co-scheduled
  // monitor agent) must reproduce the legacy synchronous loop bit for bit.
  const auto legacy = exp::Runner(1).run("determinism", multicore_grid());
  const auto engine =
      exp::Runner(1).run("determinism", multicore_engine_grid());
  ASSERT_EQ(legacy.errors(), 0u);
  ASSERT_EQ(engine.errors(), 0u);
  EXPECT_TRUE(byte_identical(timing_free_json(legacy),
                             timing_free_json(engine),
                             "legacy vs engine-driven E1"));
}

TEST(ParallelDeterminism, CpnEngineDrivenMatchesLockStep) {
  // The engine-driven E4 (TrafficGenerator::bind + PacketNetwork::bind)
  // must reproduce the legacy gen.tick()/net.step() loop bit for bit.
  const auto legacy = exp::Runner(1).run("determinism", cpn_grid());
  const auto engine = exp::Runner(1).run("determinism", cpn_engine_grid());
  ASSERT_EQ(legacy.errors(), 0u);
  ASSERT_EQ(engine.errors(), 0u);
  EXPECT_TRUE(byte_identical(timing_free_json(legacy),
                             timing_free_json(engine),
                             "legacy vs engine-driven E4"));
}

TEST(ParallelDeterminism, EngineDrivenGridIsThreadCountInvariant) {
  // The event-driven path must stay deterministic under the parallel
  // runner too (each task owns its engine; nothing is shared).
  EXPECT_TRUE(thread_count_invariant(cpn_engine_grid()));
}

TEST(ParallelDeterminism, FaultedGridIsThreadCountInvariant) {
  // The E13 contract: fault schedules come from the plan's own seeded
  // streams, so the faulted trajectory (and every derived metric) is
  // byte-identical between --jobs 1 and --jobs 4+.
  const auto grid = cpn_faulted_grid(
      "link-loss:rate=0.02,dur=60,start=300,end=600;"
      "link-reorder:rate=0.01,dur=30,mag=4,start=300,end=600");
  const auto serial = exp::Runner(1).run("determinism", grid);
  ASSERT_EQ(serial.errors(), 0u);
  // The plan must actually have fired, or this test proves nothing.
  ASSERT_GT(serial.sum(0, "faults") + serial.sum(1, "faults"), 0.0);
  EXPECT_TRUE(thread_count_invariant(grid));
}

TEST(ParallelDeterminism, EmptyFaultPlanDoesNotPerturbTheTrajectory) {
  // Binding an injector with an empty plan must be a guaranteed no-op:
  // the metrics match the plain engine-driven grid byte for byte (the
  // injector draws from its own streams only, and an empty plan draws
  // nothing).
  const auto bare = exp::Runner(1).run("determinism", cpn_engine_grid());
  auto faulted = exp::Runner(1).run("determinism", cpn_faulted_grid(""));
  ASSERT_EQ(bare.errors(), 0u);
  ASSERT_EQ(faulted.errors(), 0u);
  // Strip the grid-name and the extra "faults" metric (always 0 here),
  // then the per-window metrics must agree exactly.
  for (std::size_t v = 0; v < bare.variants.size(); ++v) {
    for (const char* window : {"before.", "during.", "after."}) {
      for (const char* metric : {"delivery", "mean_lat", "p95_lat"}) {
        const std::string key = std::string(window) + metric;
        EXPECT_EQ(bare.mean(v, key), faulted.mean(v, key))
            << "variant " << v << " " << key;
      }
    }
  }
  EXPECT_EQ(faulted.sum(0, "faults"), 0.0);
  EXPECT_EQ(faulted.sum(1, "faults"), 0.0);
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
  // Not just serial == parallel: two parallel runs with different pool
  // sizes must agree with each other too.
  const auto grid = multicore_grid();
  const auto a = exp::Runner(2).run("determinism", grid);
  const auto b = exp::Runner(parallel_jobs() + 1).run("determinism", grid);
  EXPECT_TRUE(byte_identical(timing_free_json(a), timing_free_json(b),
                             "2-worker vs wide-pool grid results"));
}

}  // namespace
