// Serve-plane self-observability: the server's own model of itself.
//
// The paper's reflexivity argument (a self-aware system should hold an
// inspectable model of *itself*, not only of what it watches) applied to
// the one component that had almost none: sa::serve. ServerStats gives the
// HTTP plane per-route latency histograms and connection-lifecycle
// counters that the server renders into its own /metrics scrape.
//
// Design constraints, in order:
//
//   allocation-free hot path   Recording a request is a handful of relaxed
//                              atomic adds into fixed-size arrays — the
//                              same `ctest -L perf` discipline as the
//                              engine's slot arena (tests/perf/).
//   per-worker, lock-light     Each worker thread owns a cache-line-
//                              aligned slab of histograms and counters;
//                              there is no shared write cacheline and no
//                              lock anywhere on the request path. Scrapes
//                              merge the slabs with relaxed loads — counts
//                              are monotone, so a merge is always a valid
//                              (if slightly torn) snapshot.
//   mergeable, deterministic   Histogram buckets are fixed log-linear
//                              boundaries (below), so merging is integer
//                              addition: associative, commutative, and
//                              byte-deterministic however many slabs the
//                              samples were spread over.
//
// Bucket layout (log-linear, HDR-style): 7 decades from 1 µs to 10 s,
// each split into 9 linear sub-buckets, plus an overflow bucket. Finite
// upper bounds are (m+2)·10^d µs for sub-bucket m of decade d — i.e.
// 2,3,…,10 µs; 20,30,…,100 µs; … ; 2,3,…,10 s. 63 finite buckets cover
// the whole range at ≤ ~11% relative error, and every boundary is an
// exact short decimal in seconds (clean `le` labels).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sa::serve {

/// The route classes the server keys its self-model by. Everything not one
/// of the five wired endpoints (404s, probes, typos) lands in Other.
enum class RouteClass : std::uint8_t {
  Metrics = 0,
  Status,
  Events,
  Control,
  Healthz,
  Other,
};
inline constexpr std::size_t kRouteClasses = 6;

/// Classifies a request path ("/metrics" -> Metrics, unknown -> Other).
[[nodiscard]] RouteClass classify_route(std::string_view path) noexcept;

/// Stable label value for a route class ("/metrics", ..., "other").
[[nodiscard]] const char* route_label(RouteClass route) noexcept;

/// One log-linear latency histogram with fixed boundaries (see file
/// comment). Writers call record() — lock-free, allocation-free; readers
/// take snapshot()s with relaxed loads. Single-writer per instance in the
/// server (one per worker slab), but concurrent writers are also safe.
class LatencyHistogram {
 public:
  static constexpr int kDecades = 7;      ///< 1 µs .. 10 s
  static constexpr int kSubBuckets = 9;   ///< linear splits per decade
  static constexpr int kFiniteBuckets = kDecades * kSubBuckets;  // 63

  /// Finite bucket index of a duration; kFiniteBuckets for >= 10 s
  /// (overflow). Negative/zero durations land in bucket 0.
  [[nodiscard]] static int bucket_of(double seconds) noexcept;
  /// Upper bound (`le`) of a finite bucket, in seconds.
  [[nodiscard]] static double upper_bound_s(int bucket) noexcept;
  /// Exact short-decimal `le` label of a finite bucket ("0.000002", "10").
  [[nodiscard]] static std::string le_label(int bucket);

  /// Hot path: one duration into its bucket. Relaxed atomics only.
  void record(double seconds) noexcept;

  /// A merged, plain-integer view. Buckets are NON-cumulative counts of
  /// the finite buckets; `overflow` holds samples >= 10 s; `count`
  /// includes them (so a cumulative render's +Inf bucket == count).
  struct Snapshot {
    std::array<std::uint64_t, kFiniteBuckets> buckets{};
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;

    void merge(const Snapshot& other) noexcept;
    [[nodiscard]] double sum_s() const noexcept {
      return static_cast<double>(sum_ns) * 1e-9;
    }
    /// Deterministic quantile estimate (linear interpolation inside the
    /// bucket; overflow answers the last finite bound). q in [0, 1].
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kFiniteBuckets> buckets_{};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// The statuses parse rejections are keyed by in the self-scrape: the five
/// the parser can produce plus a catch-all.
inline constexpr std::array<int, 5> kRejectStatuses = {400, 413, 431, 501,
                                                      505};
inline constexpr std::size_t kRejectKinds = kRejectStatuses.size() + 1;

/// Per-worker latency histograms + connection-lifecycle counters for the
/// embedded HTTP server, merged on demand for /metrics and /status.
class ServerStats {
 public:
  struct SlowRequest {
    RouteClass route = RouteClass::Other;
    double duration_s = 0.0;
    int status = 0;
    double sim_t = 0.0;  ///< sim time last published when it finished
  };

  /// `workers` — number of writer slabs (the server's worker count).
  /// Requests slower than `slow_threshold_s` additionally enter a bounded
  /// ring of `slow_ring` entries surfaced by /status.
  explicit ServerStats(unsigned workers, double slow_threshold_s = 0.05,
                       std::size_t slow_ring = 32);

  // -- Hot path (worker threads; allocation-free) ---------------------------
  void record_request(unsigned worker, RouteClass route, double seconds,
                      int status, std::uint64_t response_bytes) noexcept;
  void record_queue_wait(unsigned worker, double seconds) noexcept;
  void add_request_bytes(unsigned worker, std::uint64_t bytes) noexcept;
  /// Response bytes outside record_request (streaming writes).
  void add_response_bytes(unsigned worker, std::uint64_t bytes) noexcept;
  void on_keepalive_reuse(unsigned worker) noexcept;
  void on_write_timeout(unsigned worker) noexcept;
  void on_parse_reject(unsigned worker, int status) noexcept;

  // -- Lifecycle (acceptor + workers) ---------------------------------------
  void connection_opened() noexcept {
    active_.fetch_add(1, std::memory_order_relaxed);
  }
  void connection_closed() noexcept {
    active_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Latest published sim time (the bridge stores it at every publish so
  /// slow-request records can carry the sim clock, not just wall time).
  void set_sim_time(double t) noexcept {
    sim_time_.store(t, std::memory_order_relaxed);
  }
  [[nodiscard]] double sim_time() const noexcept {
    return sim_time_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t active_connections() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Everything /metrics and /status need, merged across worker slabs.
  struct Snapshot {
    std::array<LatencyHistogram::Snapshot, kRouteClasses> routes{};
    LatencyHistogram::Snapshot queue_wait{};
    std::uint64_t active = 0;
    std::uint64_t keepalive_reuses = 0;
    std::uint64_t write_timeouts = 0;
    std::uint64_t request_bytes = 0;
    std::uint64_t response_bytes = 0;
    /// Parse rejections keyed by kRejectStatuses order, then "other".
    std::array<std::uint64_t, kRejectKinds> rejects{};
    std::vector<SlowRequest> slow;  ///< oldest to newest
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  /// One writer thread's slab. Cache-line aligned so two workers never
  /// share a write line; everything inside is only ever touched by its
  /// worker (writes) and scrapers (relaxed reads).
  struct alignas(64) Worker {
    std::array<LatencyHistogram, kRouteClasses> latency{};
    LatencyHistogram queue_wait{};
    std::atomic<std::uint64_t> keepalive_reuses{0};
    std::atomic<std::uint64_t> write_timeouts{0};
    std::atomic<std::uint64_t> request_bytes{0};
    std::atomic<std::uint64_t> response_bytes{0};
    std::array<std::atomic<std::uint64_t>, kRejectKinds> rejects{};
  };

  [[nodiscard]] Worker& slab(unsigned worker) noexcept {
    return workers_[worker < workers_.size() ? worker : 0];
  }

  std::vector<Worker> workers_;
  std::atomic<std::uint64_t> active_{0};
  std::atomic<double> sim_time_{0.0};

  // Slow-request ring: only requests above the threshold take this lock,
  // so the steady-state path never does. Fixed capacity, overwrites the
  // oldest entry; pre-sized at construction (no allocation afterwards).
  double slow_threshold_s_;
  mutable std::mutex slow_mu_;
  std::vector<SlowRequest> slow_ring_;  ///< guarded by slow_mu_
  std::size_t slow_next_ = 0;           ///< guarded by slow_mu_
  std::uint64_t slow_seen_ = 0;         ///< guarded by slow_mu_
};

}  // namespace sa::serve
