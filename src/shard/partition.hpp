// Deterministic world partitioner.
//
// A generated world decomposes into *units* — the independent substrate
// replicas a ScenarioSpec describes: camera districts (`cameras` with
// districts=D), CPN grids (`cpn` with grids=G), and multicore edge nodes.
// Units are independent between coordinator events by construction (every
// cross-substrate coupling, the fault injector, knowledge exchange and
// the cloud backend live on the coordinator engine — see
// gen::Scenario::Options::Placement), so any assignment of whole units to
// shards yields the same trajectory; the partitioner only decides load
// balance.
//
// Assignment is longest-processing-time greedy over static unit weights
// (cameras x objects per district, nodes + flows per grid, cores per edge
// node), with all ties broken by fixed unit order and lowest shard id —
// fully deterministic in (spec, shard count), never in machine state.
#pragma once

#include <cstddef>
#include <vector>

#include "gen/spec.hpp"

namespace sa::shard {

enum class UnitKind : unsigned char { CameraDistrict, CpnGrid, EdgeNode };

/// One schedulable unit of the world, in the fixed global enumeration
/// order: camera districts first, then CPN grids, then edge nodes.
struct Unit {
  UnitKind kind = UnitKind::CameraDistrict;
  std::size_t index = 0;   ///< index within its kind (district/grid/node)
  double weight = 1.0;     ///< static load estimate
};

struct Partition {
  std::size_t shards = 1;
  /// Unit-to-shard maps, indexed by the unit's within-kind index. Sized
  /// by the spec (zero-length when that section is disabled).
  std::vector<std::size_t> district_shard;
  std::vector<std::size_t> grid_shard;
  std::vector<std::size_t> edge_shard;
  /// Total static weight per shard (diagnostics / balance tests).
  std::vector<double> shard_weight;
  /// Units per shard (diagnostics; empty vectors mark idle shards).
  std::vector<std::vector<Unit>> shard_units;

  [[nodiscard]] std::size_t units() const noexcept {
    return district_shard.size() + grid_shard.size() + edge_shard.size();
  }
};

/// Enumerates the spec's units in global order with their static weights.
[[nodiscard]] std::vector<Unit> enumerate_units(const gen::ScenarioSpec& spec);

/// LPT-assigns the spec's units onto `shards` shards. `shards` must be
/// >= 1 (throws std::invalid_argument otherwise). Shards may end up empty
/// when there are fewer units than shards — an empty shard simply idles
/// at every barrier.
[[nodiscard]] Partition partition_world(const gen::ScenarioSpec& spec,
                                        std::size_t shards);

}  // namespace sa::shard
