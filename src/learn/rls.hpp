// Online linear regression via recursive least squares.
//
// Gives awareness processes a cheap way to learn input→outcome response
// models (e.g. "predicted latency as a function of replica count"), which
// is the self-prediction capability Kounev et al. call for (Section III).
#pragma once

#include <cstddef>
#include <vector>

namespace sa::learn {

/// Recursive least squares with forgetting factor, d-dimensional inputs.
/// Model: y ≈ wᵀx (append a constant 1 to x for an intercept).
class Rls {
 public:
  /// `dim` — input dimension; `lambda` in (0,1] — forgetting factor
  /// (1 = ordinary RLS); `p0` — initial covariance scale (confidence prior).
  explicit Rls(std::size_t dim, double lambda = 0.99, double p0 = 100.0)
      : dim_(dim), lambda_(lambda), w_(dim, 0.0), p_(dim * dim, 0.0) {
    for (std::size_t i = 0; i < dim; ++i) p_[i * dim + i] = p0;
  }

  /// Incorporates one observation (x, y). O(d²).
  void observe(const std::vector<double>& x, double y) {
    // k = P x / (λ + xᵀ P x)
    std::vector<double> px(dim_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) {
      for (std::size_t j = 0; j < dim_; ++j) px[i] += p_[i * dim_ + j] * x[j];
    }
    double xpx = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) xpx += x[i] * px[i];
    const double denom = lambda_ + xpx;

    const double err = y - predict(x);
    for (std::size_t i = 0; i < dim_; ++i) w_[i] += px[i] / denom * err;

    // P = (P − k xᵀ P) / λ
    for (std::size_t i = 0; i < dim_; ++i) {
      for (std::size_t j = 0; j < dim_; ++j) {
        p_[i * dim_ + j] = (p_[i * dim_ + j] - px[i] * px[j] / denom) / lambda_;
      }
    }
    ++n_;
  }

  [[nodiscard]] double predict(const std::vector<double>& x) const {
    double y = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) y += w_[i] * x[i];
    return y;
  }
  [[nodiscard]] const std::vector<double>& weights() const { return w_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  std::size_t dim_;
  double lambda_;
  std::vector<double> w_;
  std::vector<double> p_;  // row-major covariance
  std::size_t n_ = 0;
};

}  // namespace sa::learn
