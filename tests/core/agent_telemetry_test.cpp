// Tests for the agent's telemetry emission (AgentConfig::telemetry).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/agent.hpp"

namespace sa::core {
namespace {

using sim::RingBufferSink;
using sim::TelemetryBus;

struct Rig {
  TelemetryBus bus;
  RingBufferSink sink;
  Rig() { bus.add_sink(&sink); }
  AgentConfig config() {
    AgentConfig cfg;
    cfg.telemetry = &bus;
    return cfg;
  }
};

// Emission assertions only apply when the hot path is compiled in.
#ifndef SA_TELEMETRY_OFF
TEST(AgentTelemetry, EmitsObservationAndDecisionPerStep) {
  Rig rig;
  SelfAwareAgent agent("traced", rig.config());
  agent.add_sensor("x", [] { return 1.0; });
  agent.add_action("go", [] {});
  agent.set_policy(std::make_unique<FixedPolicy>(0));
  for (int i = 0; i < 5; ++i) agent.step(i);
  EXPECT_EQ(rig.bus.count(TelemetryBus::kObservation), 5u);
  EXPECT_EQ(rig.bus.count(TelemetryBus::kDecision), 5u);
  const auto subject = rig.bus.intern_subject("traced");
  EXPECT_EQ(rig.sink.by_subject(subject).size(), 10u);
}

TEST(AgentTelemetry, ObservationListsSampledSignals) {
  Rig rig;
  SelfAwareAgent agent("traced", rig.config());
  agent.add_sensor("alpha", [] { return 1.0; });
  agent.add_sensor("beta", [] { return 2.0; });
  agent.step(0.0);
  const auto obs = rig.sink.by_category(TelemetryBus::kObservation);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0]->detail, "alpha,beta");
  EXPECT_DOUBLE_EQ(obs[0]->value, 2.0);  // signals sampled
}

TEST(AgentTelemetry, DecisionCarriesActionIndexAndRationale) {
  Rig rig;
  SelfAwareAgent agent("traced", rig.config());
  agent.add_action("launch", [] {});
  agent.set_policy(std::make_unique<FixedPolicy>(0));
  agent.step(2.5);
  const auto decides = rig.sink.by_category(TelemetryBus::kDecision);
  ASSERT_EQ(decides.size(), 1u);
  EXPECT_DOUBLE_EQ(decides[0]->t, 2.5);
  EXPECT_DOUBLE_EQ(decides[0]->value, 0.0);  // action index
  EXPECT_NE(decides[0]->detail.find("launch"), std::string::npos);
  EXPECT_NE(decides[0]->detail.find("fixed design-time choice"),
            std::string::npos);
}

TEST(AgentTelemetry, NoDecisionMeansNoDecisionEvent) {
  Rig rig;
  SelfAwareAgent agent("sensor-only", rig.config());
  agent.add_sensor("x", [] { return 1.0; });
  agent.step(0.0);
  EXPECT_EQ(rig.bus.count(TelemetryBus::kObservation), 1u);
  EXPECT_EQ(rig.bus.count(TelemetryBus::kDecision), 0u);
}

TEST(AgentTelemetry, AttentionBudgetVisibleInObservations) {
  Rig rig;
  AgentConfig cfg = rig.config();
  cfg.attention_budget = 1;
  cfg.attention_strategy = AttentionManager::Strategy::RoundRobin;
  SelfAwareAgent agent("focused", cfg);
  agent.add_sensor("a", [] { return 0.0; });
  agent.add_sensor("b", [] { return 0.0; });
  agent.step(0.0);
  agent.step(1.0);
  const auto obs = rig.sink.by_category(TelemetryBus::kObservation);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0]->detail, "a");
  EXPECT_EQ(obs[1]->detail, "b");
}
#endif  // SA_TELEMETRY_OFF

TEST(AgentTelemetry, NoBusMeansNoEventsAndNoCrash) {
  SelfAwareAgent agent("untraced", {});
  agent.add_sensor("x", [] { return 1.0; });
  agent.step(0.0);
  SUCCEED();
}

TEST(AgentTelemetry, DisabledBusStaysSilent) {
  Rig rig;
  rig.bus.set_enabled(false);
  SelfAwareAgent agent("muted", rig.config());
  agent.add_sensor("x", [] { return 1.0; });
  agent.add_action("go", [] {});
  agent.set_policy(std::make_unique<FixedPolicy>(0));
  agent.step(0.0);
  EXPECT_EQ(rig.bus.total(), 0u);
  EXPECT_EQ(rig.sink.seen(), 0u);
}

}  // namespace
}  // namespace sa::core
