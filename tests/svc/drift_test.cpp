// Tests for environmental drift (the orbiting hotspot) and the learning
// fleet's re-adaptation to it.
#include <gtest/gtest.h>

#include "svc/fleet.hpp"
#include "svc/network.hpp"

namespace sa::svc {
namespace {

TEST(HotspotDrift, StationaryByDefault) {
  NetworkParams p;
  p.seed = 1;
  auto net = Network::clustered_layout(p);
  const Vec2 before = net.current_hotspot();
  net.run(500);
  const Vec2 after = net.current_hotspot();
  EXPECT_DOUBLE_EQ(before.x, after.x);
  EXPECT_DOUBLE_EQ(before.y, after.y);
}

TEST(HotspotDrift, OrbitMovesTheHotspot) {
  NetworkParams p;
  p.seed = 1;
  p.hotspot_drift = 0.01;
  auto net = Network::clustered_layout(p);
  const Vec2 before = net.current_hotspot();
  net.run(200);
  const Vec2 after = net.current_hotspot();
  EXPECT_GT(distance(before, after), 0.05);
}

TEST(HotspotDrift, HotspotStaysInsideTheArena) {
  NetworkParams p;
  p.seed = 1;
  p.hotspot_drift = 0.02;
  p.hotspot_orbit = 5.0;  // absurdly large orbit: clamping must hold
  auto net = Network::clustered_layout(p);
  for (int i = 0; i < 400; ++i) {
    net.step();
    const Vec2 h = net.current_hotspot();
    ASSERT_GE(h.x, 0.1);
    ASSERT_LE(h.x, 0.9);
    ASSERT_GE(h.y, 0.1);
    ASSERT_LE(h.y, 0.9);
  }
}

TEST(HotspotDrift, LearningFleetKeepsTrackingUnderDrift) {
  // With the scene slowly migrating, a learning fleet should still hold
  // useful coverage in the long run (strategies keep re-adapting).
  NetworkParams p;
  p.seed = 3;
  p.hotspot_drift = 0.002;  // one orbit every ~3000 steps
  auto net = Network::clustered_layout(p);
  CameraFleet::Params fp;
  fp.seed = 3;
  CameraFleet fleet(net, fp);
  sim::RunningStats late_cov;
  for (int e = 0; e < 240; ++e) {
    const auto ne = fleet.run_epoch();
    if (e >= 120) late_cov.add(ne.coverage);
  }
  EXPECT_GT(late_cov.mean(), 0.45);
}

TEST(HotspotDrift, StrategiesKeepMoving) {
  // Under drift the per-camera optimum changes, so the assignment should
  // not freeze permanently: at least one camera changes strategy between
  // the mid-run and late-run checkpoints.
  NetworkParams p;
  p.seed = 4;
  p.hotspot_drift = 0.004;
  auto net = Network::clustered_layout(p);
  CameraFleet::Params fp;
  fp.seed = 4;
  CameraFleet fleet(net, fp);
  for (int e = 0; e < 120; ++e) fleet.run_epoch();
  std::vector<Strategy> mid;
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    mid.push_back(net.strategy(c));
  }
  for (int e = 0; e < 120; ++e) fleet.run_epoch();
  std::size_t changed = 0;
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    changed += net.strategy(c) != mid[c] ? 1 : 0;
  }
  EXPECT_GT(changed, 0u);
}

}  // namespace
}  // namespace sa::svc
