// Example: a cognitive packet network riding out a denial-of-service flood.
//
// A 4x6 grid network carries eight legitimate flows. Mid-run, three
// attackers flood the most central node. The self-aware network (Q-routing
// for QoS + per-destination rate shedding for defence) keeps delivering;
// the timeline shows the dip and recovery.
//
// Run: ./build/examples/cpn_attack
#include <cstdio>

#include "cpn/network.hpp"
#include "cpn/traffic.hpp"

int main() {
  using namespace sa::cpn;

  const auto topo = Topology::grid(4, 6, 4, 2029);

  PacketNetwork::Params np;
  np.router = PacketNetwork::Router::QRouting;
  np.dos_defence = true;
  np.seed = 2029;
  PacketNetwork net(topo, np);

  TrafficParams tp;
  tp.flows = 8;
  tp.legit_rate = 2.0;
  tp.attack_start = 3000.0;
  tp.attack_end = 6000.0;
  tp.attack_rate = 25.0;
  tp.attackers = 3;
  tp.seed = 2029;
  TrafficGenerator gen(topo, tp);

  std::printf("Victim under flood: node %zu. Attack window: ticks %.0f-%.0f\n\n",
              gen.victim(), tp.attack_start, tp.attack_end);
  std::printf(" window      phase  delivery  mean_lat  p95_lat  shed\n");

  std::size_t shed_before = 0;
  for (int window = 0; window < 9; ++window) {
    for (int tick = 0; tick < 1000; ++tick) {
      gen.tick(net);
      net.step();
    }
    const auto s = net.harvest();
    const char* phase = net.now() <= tp.attack_start  ? "calm"
                        : net.now() <= tp.attack_end ? "ATTACK"
                                                      : "recovery";
    std::printf("%7.0f  %9s     %.3f    %6.2f   %6.2f  %5zu\n", net.now(),
                phase, s.delivery_rate(), s.mean_latency, s.p95_latency,
                net.defence_drops() - shed_before);
    shed_before = net.defence_drops();
  }

  std::printf("\nTotal packets shed by the self-aware defence: %zu\n",
              net.defence_drops());
  return 0;
}
