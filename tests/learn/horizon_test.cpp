// Tests for horizon-aware forecaster scoring (ScoredForecaster with
// horizon > 1) — the mechanism that lets time-awareness rank models by the
// error that actually matters to a consumer acting with lag.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "learn/forecast.hpp"

namespace sa::learn {
namespace {

TEST(ScoredForecasterHorizon, HorizonOneMatchesLegacySemantics) {
  ScoredForecaster s(std::make_unique<NaiveForecaster>(), 1);
  s.observe(0.0);
  EXPECT_EQ(s.scored(), 0u);
  s.observe(1.0);  // naive predicted 0 -> error 1
  s.observe(3.0);  // predicted 1 -> error 2
  EXPECT_EQ(s.scored(), 2u);
  EXPECT_DOUBLE_EQ(s.mae(), 1.5);
}

TEST(ScoredForecasterHorizon, HorizonTwoScoresTwoStepError) {
  ScoredForecaster s(std::make_unique<NaiveForecaster>(), 2);
  // Ramp 0,1,2,3...: naive's 2-step forecast made after seeing k is k,
  // compared against k+2 -> error always 2.
  for (int i = 0; i < 10; ++i) s.observe(i);
  EXPECT_EQ(s.scored(), 8u);
  EXPECT_DOUBLE_EQ(s.mae(), 2.0);
}

TEST(ScoredForecasterHorizon, TrendModelWinsAtLongerHorizons) {
  ScoredForecaster naive(std::make_unique<NaiveForecaster>(), 3);
  ScoredForecaster holt(std::make_unique<HoltForecaster>(0.5, 0.3), 3);
  for (int i = 0; i < 100; ++i) {
    naive.observe(2.0 * i);
    holt.observe(2.0 * i);
  }
  EXPECT_NEAR(naive.mae(), 6.0, 0.5);  // always 3 steps behind a slope of 2
  EXPECT_LT(holt.mae(), 1.0);
}

TEST(ScoredForecasterHorizon, ZeroHorizonIsCoercedToOne) {
  ScoredForecaster s(std::make_unique<NaiveForecaster>(), 0);
  EXPECT_EQ(s.horizon(), 1u);
}

TEST(ScoredForecasterHorizon, SeasonalModelWinsOnCycles) {
  const std::size_t period = 10;
  ScoredForecaster naive(std::make_unique<NaiveForecaster>(), 2);
  ScoredForecaster hw(std::make_unique<HoltWintersForecaster>(period), 2);
  auto signal = [&](int i) {
    return 50.0 + 20.0 * std::sin(2.0 * 3.14159265 * i / period);
  };
  for (int i = 0; i < 400; ++i) {
    naive.observe(signal(i));
    hw.observe(signal(i));
  }
  EXPECT_LT(hw.mae(), naive.mae() * 0.5);
}

}  // namespace
}  // namespace sa::learn
