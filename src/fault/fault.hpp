// Deterministic fault injection.
//
// The paper's central claim (H0, Section III) is that self-aware systems
// better manage trade-offs "in complex, uncertain and dynamic
// environments"; this subsystem makes the uncertainty adversarial and
// *reproducible*. A FaultPlan is pure data — a list of stochastic fault
// processes plus a seed — and the Injector turns it into engine events at
// order kOrderFaults = -1, strictly before substrate dynamics (0), agent
// control (1) and knowledge exchange (2), so a fault landing at time t is
// already in force when the dynamics tick at t runs.
//
// Determinism contract: all randomness comes from per-(process, surface)
// splitmix64-derived streams forked off the plan seed — never from a
// substrate or experiment-cell Rng — so binding an injector cannot perturb
// a trajectory, an empty plan is a guaranteed no-op, and fault sequences
// are bitwise-identical for any `--jobs N` (each grid cell owns its own
// injector, like its own engine and tracer).
//
// Fault taxonomy (kinds) and the substrates they target:
//   sensor-dropout / sensor-blur / node-crash   -> sa::svc cameras
//   core-fail / freq-cap                        -> sa::multicore
//   vm-preempt / latency-spike                  -> sa::cloud
//   link-loss / partition / link-reorder        -> sa::cpn
//   exchange-drop                               -> core::AgentRuntime
// (see fault/adapters.hpp for the substrate bindings).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"

namespace sa::fault {

enum class FaultKind : std::uint8_t {
  SensorDropout,  ///< camera sees nothing while active
  SensorBlur,     ///< camera visibility scaled by (1 - magnitude)
  NodeCrash,      ///< camera crash-restart (tracks released)
  CoreFail,       ///< core dies; restart on restore
  FreqCap,        ///< chip-wide DVFS cap to level = magnitude
  VmPreempt,      ///< volunteer node reclaimed by its provider
  LatencySpike,   ///< cluster capacity divided by magnitude
  LinkLoss,       ///< link down; traffic onto it is lost
  Partition,      ///< one node isolated (all incident links down)
  LinkReorder,    ///< link latency multiplied by magnitude
  ExchangeDrop,   ///< knowledge-exchange rounds dropped
};
inline constexpr std::size_t kFaultKinds = 11;

[[nodiscard]] const char* kind_name(FaultKind k) noexcept;
/// Parses a kind name ("core-fail", ...); throws std::invalid_argument.
[[nodiscard]] FaultKind kind_from(std::string_view name);

/// One stochastic fault process: faults of one kind arriving in bursts.
///
/// Bursts start as a Poisson process of rate `rate / burstiness`; each
/// burst contains round(burstiness) faults spaced closely (within roughly
/// one fault duration), so the long-run fault rate stays `rate` while
/// burstiness > 1 produces overlapping, simultaneous failures — the case
/// that defeats one-at-a-time recovery.
struct FaultProcess {
  FaultKind kind = FaultKind::LinkLoss;
  double rate = 0.01;       ///< mean faults per sim-second
  double burstiness = 1.0;  ///< >= 1; faults per burst
  /// Mean fault duration (exponential); <= 0 makes faults permanent.
  double duration_mean = 10.0;
  double magnitude = 1.0;   ///< kind-specific severity knob
  double start = 0.0;       ///< process active from here...
  double end = std::numeric_limits<double>::infinity();  ///< ...to here

  [[nodiscard]] bool operator==(const FaultProcess&) const = default;
};

/// A seeded list of fault processes — the whole scenario as data.
struct FaultPlan {
  std::vector<FaultProcess> processes;
  std::uint64_t seed = 0;

  [[nodiscard]] bool empty() const noexcept { return processes.empty(); }

  /// Parses "kind:key=value,...;kind:..." (e.g. the harness --fault-plan
  /// flag). Keys: rate, burst, dur, mag, start, end; "seed=N" as a
  /// standalone item sets the plan seed. Empty spec -> empty plan. Throws
  /// std::invalid_argument on unknown kinds/keys or malformed numbers.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);
  /// Canonical spec string (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// Schedules a FaultPlan's processes onto an engine and dispatches each
/// fault to a registered surface. Owns a bounded fault-event log (the same
/// ring mechanism as core::Explainer) plus counters, and can mirror each
/// event to telemetry (kFailure) and to subscribed listeners.
class Injector {
 public:
  /// Engine order of fault onset/restore events: before everything else
  /// at coincident times (see sim/engine.hpp order convention).
  static constexpr int kOrderFaults = -1;

  /// A fault target: `units` interchangeable instances (cores, cameras,
  /// links, ...) with begin/end actuators. `end` may be empty for
  /// surfaces that only support permanent faults; it receives the same
  /// unit and magnitude its matching begin got, so adapters can retire
  /// exactly the contribution that is ending when overlapping faults of
  /// different severities restore out of order.
  struct Surface {
    FaultKind kind = FaultKind::LinkLoss;
    std::string name;       ///< "multicore.core", "cpn.link", ...
    std::size_t units = 1;
    std::function<void(std::size_t unit, double magnitude)> begin;
    std::function<void(std::size_t unit, double magnitude)> end;
  };

  /// One log entry: a fault onset (begin = true) or restore.
  struct Record {
    double t = 0.0;
    FaultKind kind = FaultKind::LinkLoss;
    std::string surface;
    std::size_t unit = 0;
    double magnitude = 0.0;
    /// Scheduled restore time (infinity = permanent).
    double until = std::numeric_limits<double>::infinity();
    bool begin = true;
  };

  /// Called on every onset and restore with the current active count.
  using Listener = std::function<void(const Record&, std::size_t active)>;

  void add_surface(Surface s);
  [[nodiscard]] std::size_t surfaces() const noexcept {
    return surfaces_.size();
  }
  /// Registered surface `i`, in registration order. The begin/end
  /// actuators are callable directly — how the adapter tests exercise a
  /// substrate's fault handling without going through a plan.
  [[nodiscard]] const Surface& surface(std::size_t i) const {
    return surfaces_[i];
  }

  /// Emits one kFailure per onset (value = magnitude, detail =
  /// "<kind> <surface>#<unit>"). Non-owning; null disables.
  void set_telemetry(sim::TelemetryBus* bus);
  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  /// Arms `plan` on `engine`: one event chain per (process, matching
  /// surface) pair, each with its own seed-derived Rng stream. Returns the
  /// number of chains armed. Processes whose kind matches no surface are
  /// counted in unmatched_processes(). Call once per engine; the engine
  /// and this injector must outlive the run.
  std::size_t bind(sim::Engine& engine, const FaultPlan& plan);

  /// Fires one fault right now (at engine.now()) on the first surface
  /// matching `kind`, bypassing any plan: the operator's one-shot
  /// injection, used by the sa::serve control plane (POST /control) and
  /// applied only at engine-step boundaries via the control mailbox so the
  /// trajectory downstream of the injection stays deterministic. A
  /// `duration` > 0 schedules the matching restore (surfaces without an
  /// `end` actuator take permanent faults only, like planned ones).
  /// Returns false when no surface matches `kind`. Draws no randomness.
  bool inject_now(sim::Engine& engine, FaultKind kind, std::size_t unit,
                  double magnitude, double duration);

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] std::size_t injected() const noexcept { return injected_; }
  [[nodiscard]] std::size_t restored() const noexcept { return restored_; }
  /// Faults currently in force (permanent faults never leave).
  [[nodiscard]] std::size_t active() const noexcept { return active_; }
  [[nodiscard]] std::size_t unmatched_processes() const noexcept {
    return unmatched_;
  }
  /// Sim time of the most recent onset (-infinity before the first).
  [[nodiscard]] double last_onset() const noexcept { return last_onset_; }

  /// Retained log entries, oldest first (bounded ring; a long fault storm
  /// keeps memory constant, like the Explainer's decision log).
  [[nodiscard]] std::vector<Record> records() const;
  [[nodiscard]] std::size_t log_size() const noexcept { return log_.size(); }
  void set_log_capacity(std::size_t cap);
  [[nodiscard]] std::size_t log_capacity() const noexcept {
    return log_capacity_;
  }

  // -- Checkpoint seam (sa::ckpt) -------------------------------------------
  //
  // The injector's serializable state: counters, the log ring (flattened
  // oldest-first), and each chain's RNG + burst position. The pending
  // onset/restore *events* are not here — they live in the engine's
  // timeline, tagged per chain, and bind() run in engine restore mode
  // registers the callables (and end-event rebinders) those tags map back
  // to. Restore order: bind() under engine.begin_restore(), then
  // import_state(), then engine.import_timeline().

  /// One chain's resumable randomness (identified by its (process,
  /// surface) coordinates for shape validation on import).
  struct StreamState {
    std::size_t process = 0;
    std::size_t surface = 0;
    sim::Rng::State rng;
    std::size_t burst_left = 0;
  };
  struct State {
    std::uint64_t injected = 0;
    std::uint64_t restored = 0;
    std::uint64_t active = 0;
    std::uint64_t unmatched = 0;
    double last_onset = 0.0;
    std::vector<Record> log;  ///< oldest first
    std::vector<StreamState> streams;
  };
  [[nodiscard]] State export_state() const;
  /// Overwrites counters, log, and per-chain RNG state. bind() must
  /// already have rebuilt the same chains (same plan + surfaces): a shape
  /// mismatch fails with `err` set.
  [[nodiscard]] bool import_state(const State& st, std::string* err);

 private:
  struct Stream;  // per-(process, surface) RNG + burst state

  void arm(sim::Engine& engine, const std::shared_ptr<Stream>& st);
  void fire(sim::Engine& engine, const std::shared_ptr<Stream>& st);
  [[nodiscard]] sim::Engine::Action rebind_end(sim::Engine& engine,
                                               std::size_t si, FaultKind kind,
                                               std::string_view payload);
  void push_log(const Record& rec);
  void notify(const Record& rec);

  std::vector<Surface> surfaces_;
  std::vector<Listener> listeners_;

  sim::TelemetryBus* telemetry_ = nullptr;
  sim::SubjectId subject_ = 0;

  std::size_t injected_ = 0;
  std::size_t restored_ = 0;
  std::size_t active_ = 0;
  std::size_t unmatched_ = 0;
  double last_onset_ = -std::numeric_limits<double>::infinity();

  std::size_t log_capacity_ = 4096;
  std::vector<Record> log_;  ///< ring: head_ marks the oldest entry
  std::size_t log_head_ = 0;

  /// Chains armed by bind(), in (process, surface) order — owned here so
  /// checkpointing can reach their RNG/burst state after the engine has
  /// consumed the arm closures.
  std::vector<std::shared_ptr<Stream>> streams_;
};

}  // namespace sa::fault
