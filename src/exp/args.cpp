#include "exp/args.hpp"

#include <charconv>
#include <cstdint>

namespace sa::exp {
namespace {

/// Parses a non-negative integer; returns false on garbage or overflow.
bool parse_uint(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

std::string parse_args(int argc, const char* const* argv, Options& out) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto next_value = [&]() -> bool {
      if (has_value) return true;
      if (i + 1 >= argc) return false;
      value = argv[++i];
      return true;
    };

    if (arg == "--help" || arg == "-h") {
      out.help = true;
    } else if (arg == "--jobs" || arg == "-j") {
      std::uint64_t n = 0;
      if (!next_value() || !parse_uint(value, n) || n == 0 || n > 4096) {
        return std::string(arg) + " expects an integer in [1, 4096]";
      }
      out.jobs = static_cast<unsigned>(n);
    } else if (arg == "--seeds") {
      std::uint64_t n = 0;
      if (!next_value() || !parse_uint(value, n) || n == 0 || n > 100000) {
        return "--seeds expects an integer in [1, 100000]";
      }
      out.seeds = static_cast<std::size_t>(n);
    } else if (arg == "--json") {
      if (!next_value() || value.empty()) {
        return "--json expects an output path";
      }
      out.json = std::string(value);
    } else if (arg == "--trace") {
      if (!next_value() || value.empty()) {
        return "--trace expects an output path";
      }
      out.trace = std::string(value);
    } else if (arg == "--metrics") {
      if (!next_value() || value.empty()) {
        return "--metrics expects an output path";
      }
      out.metrics = std::string(value);
    } else if (arg == "--fault-plan") {
      if (!next_value() || value.empty()) {
        return "--fault-plan expects a plan spec"
               " (\"kind:key=value,...;...\")";
      }
      out.fault_plan = std::string(value);
    } else {
      return "unknown argument: " + std::string(argv[i]);
    }
  }
  return {};
}

std::string usage(std::string_view program) {
  std::string u;
  u += "usage: ";
  u += program;
  u += " [--jobs N] [--seeds K] [--json PATH] [--trace PATH]"
       " [--metrics PATH] [--fault-plan SPEC]\n";
  u +=
      "  --jobs N, -j N  worker threads for the seed x variant grid\n"
      "                  (default: all hardware threads; results are\n"
      "                  bitwise-identical for every N)\n"
      "  --seeds K       run K seeds instead of the experiment default\n"
      "                  (first K of the canonical list, then derived)\n"
      "  --json PATH     also write a BENCH_<exp>.json document with\n"
      "                  per-seed raws, aggregates, wall-clock and git rev\n"
      "  --trace PATH    write a Chrome trace-event JSON (open it at\n"
      "                  ui.perfetto.dev) of one designated cell: last\n"
      "                  variant, first seed. Sim-time timestamps, so the\n"
      "                  file is bitwise-identical for every --jobs N\n"
      "  --metrics PATH  write the traced cell's self-profiling metrics\n"
      "                  snapshots as JSONL (wall-clock timers: values\n"
      "                  vary run to run)\n"
      "  --fault-plan S  overlay a fault plan on fault-aware experiments\n"
      "                  (\"kind:rate=R,dur=D,...;seed=N\"; see\n"
      "                  sa::fault::FaultPlan::parse)\n"
      "  --help, -h      this text\n";
  return u;
}

}  // namespace sa::exp
