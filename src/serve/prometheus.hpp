// Prometheus text exposition (version 0.0.4) for the live control plane.
//
// The renderer is a pure function from published snapshots to text —
// deliberately separated from sockets and from the registry itself, so the
// /metrics handler stays a one-liner and format conformance is testable
// without a listener (tests/serve/prometheus_test.cpp checks every line
// against the exposition grammar).
//
// Mapping from sim::MetricsRegistry kinds:
//   Counter   -> counter  `sa_<name>`
//   Gauge     -> gauge    `sa_<name>`
//   Timer     -> summary  `sa_<name>_sum` / `sa_<name>_count` (+ min/max/
//                stddev gauges, which Prometheus cannot derive post hoc)
//   Histogram -> histogram with cumulative `le` buckets; the +Inf bucket
//                always equals the observation count, as the format
//                requires, even when observations fell outside [lo, hi).
// Telemetry-bus categories surface as `sa_bus_events_total{category="..."}`
// and the server's own counters as `sa_serve_*`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/stats.hpp"
#include "sim/metrics.hpp"

namespace sa::serve {

/// Per-category event counts copied off the TelemetryBus by the sim thread
/// at a publish boundary (the bus's own counters are not safe to read
/// concurrently; the bridge publishes this instead).
struct BusSnapshot {
  double t = 0.0;
  std::uint64_t total = 0;
  struct Category {
    std::string name;
    std::uint64_t count = 0;
  };
  std::vector<Category> categories;
};

/// Per-shard executed-event counts published by the coordinator of a
/// sharded run (sa::shard) at a publish boundary — the shard engines are
/// barrier-paused there, so the copy is race-free. The last entry is the
/// coordinator engine itself; `lag_seconds` is the coordinator's
/// cumulative barrier-wait wall-clock time.
struct ShardSnapshot {
  double t = 0.0;
  std::vector<std::uint64_t> events;
  double lag_seconds = 0.0;
};

/// The server's own counters, sampled at scrape time (atomics). SSE drops
/// are split by cause: "contended" means the sim thread found a subscriber
/// lock held at event time (the never-block rule), "overflow" means a
/// subscriber queue was full or its consumer held the lock.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t sse_subscribers = 0;
  std::uint64_t sse_dropped_contended = 0;
  std::uint64_t sse_dropped_overflow = 0;
};

/// Rewrites a registry metric name into the exposition grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* — every other character becomes '_', and a
/// leading digit gets a '_' prefix.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Escapes a label value (backslash, double quote, newline).
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Formats a sample value: shortest round-trip decimal, with +Inf / -Inf /
/// NaN spelled the way the exposition format wants them.
[[nodiscard]] std::string format_value(double v);

/// Renders the whole exposition page. Any argument may be null (that
/// family is simply omitted) — a scrape before the first publish returns
/// just the serve self-stats. `server` adds the server's self-model: the
/// per-route `sa_serve_request_duration_seconds{route=…}` histograms
/// (cumulative `le`, +Inf == count, every route class rendered even when
/// empty), the accept→worker `sa_serve_queue_wait_seconds` histogram, and
/// the lifecycle counters/gauges. `shard` adds a sharded run's
/// `sa_shard_events_total{shard=…}` counters (the final sample labelled
/// `shard="coordinator"`) and the `sa_shard_lag_seconds` gauge.
[[nodiscard]] std::string render_prometheus(
    const sim::MetricsRegistry::LiveSnapshot* live, const BusSnapshot* bus,
    const ServeStats* serve, const ServerStats::Snapshot* server = nullptr,
    const ShardSnapshot* shard = nullptr);

}  // namespace sa::serve
