# Empty dependencies file for multi_agent.
# This may be replaced when dependencies are built.
