#include "fault/adapters.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "cloud/cluster.hpp"
#include "cpn/network.hpp"
#include "multicore/platform.hpp"
#include "svc/network.hpp"

namespace sa::fault {

namespace {

/// Per-unit overlapping-fault refcount (shared between begin/end lambdas).
using Depth = std::shared_ptr<std::vector<std::size_t>>;

Depth make_depth(std::size_t units) {
  return std::make_shared<std::vector<std::size_t>>(units, 0);
}

}  // namespace

void bind_platform(Injector& inj, multicore::Platform& platform) {
  {
    auto depth = make_depth(platform.cores());
    inj.add_surface(
        {FaultKind::CoreFail, "multicore.core", platform.cores(),
         [&platform, depth](std::size_t core, double) {
           if (++(*depth)[core] == 1) platform.fail_core(core);
         },
         [&platform, depth](std::size_t core, double) {
           if (--(*depth)[core] == 0) platform.restore_core(core);
         }});
  }
  {
    // Overlapping caps: the tightest active level governs; when it ends
    // the chip relaxes to the loosest still-active cap, and uncaps only
    // when the last one ends.
    auto caps = std::make_shared<std::multiset<std::size_t>>();
    inj.add_surface(
        {FaultKind::FreqCap, "multicore.chip", 1,
         [&platform, caps](std::size_t, double magnitude) {
           caps->insert(static_cast<std::size_t>(std::max(0.0, magnitude)));
           platform.set_freq_cap(*caps->begin());
         },
         [&platform, caps](std::size_t, double magnitude) {
           const auto it =
               caps->find(static_cast<std::size_t>(std::max(0.0, magnitude)));
           if (it != caps->end()) caps->erase(it);
           platform.set_freq_cap(caps->empty() ? static_cast<std::size_t>(-1)
                                               : *caps->begin());
         }});
  }
}

void bind_cameras(Injector& inj, svc::Network& net) {
  {
    auto depth = make_depth(net.cameras());
    inj.add_surface(
        {FaultKind::NodeCrash, "svc.camera", net.cameras(),
         [&net, depth](std::size_t cam, double) {
           if (++(*depth)[cam] == 1) net.fail_camera(cam);
         },
         [&net, depth](std::size_t cam, double) {
           if (--(*depth)[cam] == 0) net.restore_camera(cam);
         }});
  }
  {
    // Dropout and blur share the visibility knob: dropout pins it to 0;
    // when only blurs remain the latest blur factor applies.
    auto drop = make_depth(net.cameras());
    auto blur = make_depth(net.cameras());
    auto factor = std::make_shared<std::vector<double>>(net.cameras(), 1.0);
    auto apply = [&net, drop, blur, factor](std::size_t cam) {
      if ((*drop)[cam] > 0) {
        net.set_sensor_blur(cam, 0.0);
      } else if ((*blur)[cam] > 0) {
        net.set_sensor_blur(cam, (*factor)[cam]);
      } else {
        net.set_sensor_blur(cam, 1.0);
      }
    };
    inj.add_surface({FaultKind::SensorDropout, "svc.sensor", net.cameras(),
                     [drop, apply](std::size_t cam, double) {
                       ++(*drop)[cam];
                       apply(cam);
                     },
                     [drop, apply](std::size_t cam, double) {
                       --(*drop)[cam];
                       apply(cam);
                     }});
    inj.add_surface({FaultKind::SensorBlur, "svc.sensor", net.cameras(),
                     [blur, factor, apply](std::size_t cam, double magnitude) {
                       ++(*blur)[cam];
                       (*factor)[cam] =
                           std::clamp(1.0 - magnitude, 0.0, 1.0);
                       apply(cam);
                     },
                     [blur, apply](std::size_t cam, double) {
                       --(*blur)[cam];
                       apply(cam);
                     }});
  }
}

void bind_cluster(Injector& inj, cloud::Cluster& cluster) {
  {
    auto depth = make_depth(cluster.size());
    inj.add_surface(
        {FaultKind::VmPreempt, "cloud.vm", cluster.size(),
         [&cluster, depth](std::size_t node, double) {
           if (++(*depth)[node] == 1) cluster.set_preempted(node, true);
         },
         [&cluster, depth](std::size_t node, double) {
           if (--(*depth)[node] == 0) cluster.set_preempted(node, false);
         }});
  }
  {
    // Overlapping spikes: the strongest active magnitude governs the
    // capacity factor (mirroring the freq-cap tightest-level rule); a
    // milder concurrent spike neither relaxes nor deepens it, and the
    // factor relaxes stepwise as spikes end. Magnitudes <= 1 stay a no-op.
    auto mags = std::make_shared<std::multiset<double>>();
    inj.add_surface(
        {FaultKind::LatencySpike, "cloud.cluster", 1,
         [&cluster, mags](std::size_t, double magnitude) {
           mags->insert(magnitude);
           cluster.set_capacity_factor(1.0 / std::max(1.0, *mags->rbegin()));
         },
         [&cluster, mags](std::size_t, double magnitude) {
           const auto it = mags->find(magnitude);
           if (it != mags->end()) mags->erase(it);
           cluster.set_capacity_factor(
               mags->empty() ? 1.0 : 1.0 / std::max(1.0, *mags->rbegin()));
         }});
  }
}

void bind_packet_network(Injector& inj, cpn::PacketNetwork& net) {
  const auto& topo = net.topology();
  const std::size_t links = topo.links().size();
  // LinkLoss and Partition share these refcounts: a link stays dead while
  // *any* fault (direct loss or a partition of either endpoint) holds it.
  auto link_depth = make_depth(links);
  auto hold = [&net, link_depth](std::size_t l) {
    if (++(*link_depth)[l] == 1) net.fail_link(l);
  };
  auto release = [&net, link_depth](std::size_t l) {
    if (--(*link_depth)[l] == 0) net.restore_link(l);
  };
  inj.add_surface({FaultKind::LinkLoss, "cpn.link", links,
                   [hold](std::size_t l, double) { hold(l); },
                   [release](std::size_t l, double) { release(l); }});
  // Partition unit = node: all its incident links go down together.
  auto incident = std::make_shared<std::vector<std::vector<std::size_t>>>(
      topo.nodes());
  for (std::size_t l = 0; l < links; ++l) {
    (*incident)[topo.links()[l].a].push_back(l);
    (*incident)[topo.links()[l].b].push_back(l);
  }
  inj.add_surface({FaultKind::Partition, "cpn.node", topo.nodes(),
                   [incident, hold](std::size_t node, double) {
                     for (std::size_t l : (*incident)[node]) hold(l);
                   },
                   [incident, release](std::size_t node, double) {
                     for (std::size_t l : (*incident)[node]) release(l);
                   }});
  {
    auto depth = make_depth(links);
    inj.add_surface(
        {FaultKind::LinkReorder, "cpn.link", links,
         [&net, depth](std::size_t l, double magnitude) {
           ++(*depth)[l];
           net.set_link_slowdown(l, magnitude);
         },
         [&net, depth](std::size_t l, double) {
           if (--(*depth)[l] == 0) net.set_link_slowdown(l, 1.0);
         }});
  }
}

void bind_exchange(Injector& inj, core::AgentRuntime& rt) {
  auto depth = make_depth(1);
  inj.add_surface({FaultKind::ExchangeDrop, "core.exchange", 1,
                   [&rt, depth](std::size_t, double) {
                     ++(*depth)[0];
                     rt.set_exchange_blocked(true);
                   },
                   [&rt, depth](std::size_t, double) {
                     if (--(*depth)[0] == 0) rt.set_exchange_blocked(false);
                   }});
}

void feed_agent(Injector& inj, core::SelfAwareAgent& agent) {
  inj.subscribe([&agent](const Injector::Record& rec, std::size_t active) {
    auto& kb = agent.knowledge();
    kb.put_number("fault.active", static_cast<double>(active), rec.t, 1.0,
                  core::Scope::Private, "fault");
    if (rec.begin) {
      kb.put_number("fault.count", kb.number("fault.count", 0.0) + 1.0,
                    rec.t, 1.0, core::Scope::Private, "fault");
    }
  });
}

}  // namespace sa::fault
