// Property test: KnowledgeBase behaves like a reference model (a plain
// map of bounded vectors) under arbitrary operation sequences.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>

#include "core/knowledge.hpp"
#include "sim/rng.hpp"

namespace sa::core {
namespace {

class KnowledgeModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnowledgeModelTest, AgreesWithReferenceModel) {
  const std::size_t limit = 5;
  KnowledgeBase kb(limit);
  std::map<std::string, std::deque<double>> model;
  sim::Rng rng(GetParam());

  const std::vector<std::string> keys{"a", "b", "c.d", "c.e", "f"};
  for (int op = 0; op < 2000; ++op) {
    const auto& key = keys[rng.below(keys.size())];
    switch (rng.below(4)) {
      case 0:
      case 1: {  // put (weighted: writes dominate)
        const double v = rng.uniform(-100.0, 100.0);
        kb.put_number(key, v, static_cast<double>(op));
        auto& hist = model[key];
        hist.push_back(v);
        if (hist.size() > limit) hist.pop_front();
        break;
      }
      case 2: {  // latest agrees
        const auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_FALSE(kb.latest(key).has_value());
        } else {
          ASSERT_TRUE(kb.latest(key).has_value());
          EXPECT_DOUBLE_EQ(as_number(kb.latest(key)->value),
                           it->second.back());
        }
        break;
      }
      case 3: {  // history agrees
        const auto& hist = kb.history(key);
        const auto it = model.find(key);
        const std::size_t expected =
            it == model.end() ? 0 : it->second.size();
        ASSERT_EQ(hist.size(), expected);
        for (std::size_t i = 0; i < expected; ++i) {
          EXPECT_DOUBLE_EQ(as_number(hist[i].value), it->second[i]);
        }
        break;
      }
    }
  }
  // Final structural agreement.
  EXPECT_EQ(kb.size(), model.size());
  for (const auto& [key, hist] : model) {
    EXPECT_TRUE(kb.contains(key));
    EXPECT_DOUBLE_EQ(kb.number(key), hist.back());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnowledgeModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sa::core
