#include "multicore/platform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sa::multicore {

PlatformConfig PlatformConfig::big_little(std::size_t n_big,
                                          std::size_t n_little) {
  PlatformConfig cfg;
  for (std::size_t i = 0; i < n_big; ++i) {
    cfg.cores.push_back({"big" + std::to_string(i), true, /*ipc=*/2.0,
                         /*static_w=*/0.5, /*dyn_coeff=*/1.2});
  }
  for (std::size_t i = 0; i < n_little; ++i) {
    cfg.cores.push_back({"little" + std::to_string(i), false, /*ipc=*/0.8,
                         /*static_w=*/0.15, /*dyn_coeff=*/0.25});
  }
  return cfg;
}

Platform::Platform(PlatformConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      specs_(cfg_.cores),
      level_(specs_.size(), cfg_.freqs.size() / 2),
      failed_(specs_.size(), false),
      queue_(specs_.size()),
      rng_(seed) {
  if (cfg_.thermal) {
    temp_.assign(specs_.size(), cfg_.ambient_c);
    throttled_.assign(specs_.size(), false);
  }
  queue_tw_.set(0.0, 0.0);
}

void Platform::set_freq_level(std::size_t core, std::size_t level) {
  level_[core] = std::min(level, cfg_.freqs.size() - 1);
}

void Platform::set_all_freq(std::size_t level) {
  for (std::size_t c = 0; c < level_.size(); ++c) set_freq_level(c, level);
}

void Platform::set_workload(double rate, double mean_work, double deadline) {
  rate_ = rate;
  mean_work_ = mean_work;
  deadline_ = deadline;
}

double Platform::speed(std::size_t core) const {
  if (failed_[core]) return 0.0;
  // A throttled core is hardware-clamped to the minimum frequency
  // regardless of what the manager asked for; a fault-injected cap bounds
  // the effective level below whatever the manager requested.
  const double f =
      throttled(core) ? cfg_.freqs.front()
                      : cfg_.freqs[std::min(level_[core], freq_cap_)];
  return specs_[core].ipc * f;
}

void Platform::fail_core(std::size_t core) {
  if (failed_[core]) return;
  failed_[core] = true;
  // Re-home the dead core's queued tasks; place() now skips it. If every
  // core is down the orphans stall on core 0 until a restore.
  orphans_.clear();
  queue_[core].drain_into(orphans_);
  for (const auto& t : orphans_) queue_[place(t)].push_back(t);
}

std::size_t Platform::cores_failed() const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < failed_.size(); ++c) n += failed_[c] ? 1 : 0;
  return n;
}

std::size_t Platform::place(const Task& task) const {
  (void)task;
  // Candidate set by mapping; Balanced considers everyone.
  auto eligible = [&](std::size_t c) {
    switch (mapping_) {
      case Mapping::Balanced: return true;
      case Mapping::PackBig: return specs_[c].big;
      case Mapping::PackLittle: return !specs_[c].big;
    }
    return true;
  };
  // Least expected finish time = (queued work)/speed among eligible cores;
  // fall back to all cores if the preferred class is absent.
  std::size_t best = std::numeric_limits<std::size_t>::max();
  double best_eta = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t c = 0; c < specs_.size(); ++c) {
      if (failed_[c]) continue;
      if (pass == 0 && !eligible(c)) continue;
      const double eta = queue_[c].backlog() / speed(c);
      if (eta < best_eta) {
        best_eta = eta;
        best = c;
      }
    }
    if (best != std::numeric_limits<std::size_t>::max()) break;
  }
  // Every core failed: park on core 0 until a restore revives the chip.
  if (best == std::numeric_limits<std::size_t>::max()) best = 0;
  return best;
}

void Platform::admit(Task task) {
  ++arrived_;
  offered_work_ += task.total;
  queue_[place(task)].push_back(task);
}

void Platform::step() {
  const double dt = cfg_.tick;

  // 1. Arrivals: Poisson(rate·dt) per tick.
  const int arrivals = rate_ > 0.0 ? rng_.poisson(rate_ * dt) : 0;
  for (int i = 0; i < arrivals; ++i) {
    Task t;
    t.total = t.remaining = rng_.exponential(mean_work_);
    t.arrived = now_;
    t.deadline = deadline_;
    admit(t);
  }

  // 2. Processing: each core drains its queue head(s) for this tick.
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    if (failed_[c]) continue;  // dead silicon: no work, no power, no heat
    double budget = speed(c) * dt;  // giga-ops available this tick
    const double full_budget = budget;
    while (budget > 0.0 && !queue_[c].empty()) {
      Task& t = queue_[c].front();
      const double done = std::min(budget, t.remaining);
      t.remaining -= done;
      budget -= done;
      if (t.remaining <= 1e-12) {
        const double sojourn = now_ + dt - t.arrived;
        latency_.add(sojourn);
        latency_hist_.add(sojourn);
        if (t.deadline > 0.0 && sojourn > t.deadline) ++missed_;
        ++completed_;
        queue_[c].pop_front();
      }
    }
    const double busy_frac =
        full_budget > 0.0 ? (full_budget - budget) / full_budget : 0.0;
    busy_time_ += busy_frac * dt;
    const double f =
        throttled(c) ? cfg_.freqs.front()
                     : cfg_.freqs[std::min(level_[c], freq_cap_)];
    // Leakage scales with f^2 (supply voltage tracks frequency under DVFS),
    // dynamic power with f^3 x activity.
    const double power = specs_[c].static_w * f * f +
                         specs_[c].dyn_coeff * f * f * f * busy_frac;
    energy_ += power * dt;

    if (cfg_.thermal) {
      temp_[c] += dt * (cfg_.heat_per_w * power -
                        cfg_.cool_rate * (temp_[c] - cfg_.ambient_c));
      max_temp_epoch_ = std::max(max_temp_epoch_, temp_[c]);
      if (!throttled_[c] && temp_[c] >= cfg_.throttle_c) {
        throttled_[c] = true;
        if (telemetry_) {
          telemetry_->record(now_ + dt, sim::TelemetryBus::kFailure,
                             subject_, temp_[c], specs_[c].name);
        }
      } else if (throttled_[c] && temp_[c] <= cfg_.recover_c) {
        throttled_[c] = false;
      }
      if (throttled_[c]) throttle_time_ += dt;
    }
  }

  now_ += dt;
  queue_tw_.set(now_, static_cast<double>(queued()));
}

void Platform::run_for(double secs) {
  const auto ticks = static_cast<std::size_t>(std::ceil(secs / cfg_.tick));
  for (std::size_t i = 0; i < ticks; ++i) step();
}

void Platform::bind(sim::Engine& engine, double period) {
  if (period <= 0.0) period = cfg_.tick;
  engine.every_tagged(
      sim::event_tag("sa.multicore.platform"), period,
      [this] { step(); return true; }, /*order=*/0);
}

void Platform::set_telemetry(sim::TelemetryBus* bus) {
  telemetry_ = bus;
  if (telemetry_) subject_ = telemetry_->intern_subject("multicore.platform");
}

std::size_t Platform::queued() const {
  std::size_t n = 0;
  for (const auto& q : queue_) n += q.size();
  return n;
}

double Platform::instantaneous_power() const {
  double p = 0.0;
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    if (failed_[c]) continue;
    const double f = cfg_.freqs[std::min(level_[c], freq_cap_)];
    const double util = queue_[c].empty() ? 0.0 : 1.0;
    p += specs_[c].static_w * f * f +
         specs_[c].dyn_coeff * f * f * f * util;
  }
  return p;
}

EpochStats Platform::harvest() {
  EpochStats s;
  s.duration = now_ - epoch_start_;
  s.completed = completed_;
  s.arrived = arrived_;
  if (s.duration > 0.0) {
    s.throughput = static_cast<double>(completed_) / s.duration;
    s.mean_power = energy_ / s.duration;
    s.utilisation =
        busy_time_ / (s.duration * static_cast<double>(specs_.size()));
    s.offered_gops = offered_work_ / s.duration;
  }
  s.mean_latency = latency_.mean();
  s.p95_latency = latency_hist_.quantile(0.95);
  s.energy = energy_;
  s.miss_rate = completed_
                    ? static_cast<double>(missed_) /
                          static_cast<double>(completed_)
                    : 0.0;
  s.mean_queue = queue_tw_.mean(now_);
  s.max_temp_c = cfg_.thermal ? max_temp_epoch_ : cfg_.ambient_c;
  if (cfg_.thermal && s.duration > 0.0) {
    s.throttle_frac = throttle_time_ /
                      (s.duration * static_cast<double>(specs_.size()));
  }

  epoch_start_ = now_;
  completed_ = arrived_ = missed_ = 0;
  offered_work_ = 0.0;
  latency_.reset();
  latency_hist_ = sim::Histogram{0.0, 5.0, 200};
  energy_ = 0.0;
  busy_time_ = 0.0;
  max_temp_epoch_ = cfg_.thermal && !temp_.empty()
                        ? *std::max_element(temp_.begin(), temp_.end())
                        : 0.0;
  throttle_time_ = 0.0;
  queue_tw_ = sim::TimeWeighted{};
  queue_tw_.set(now_, static_cast<double>(queued()));
  return s;
}

}  // namespace sa::multicore
