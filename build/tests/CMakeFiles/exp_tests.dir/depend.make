# Empty dependencies file for exp_tests.
# This may be replaced when dependencies are built.
