// E4 — cognitive packet network under denial-of-service
// (paper Section III; Sakellari [38]; Gelenbe & Loukas [39]).
//
// Claim operationalised: the CPN self-awareness loop (per-node RL over
// observed route delays, substituted with Q-routing per DESIGN.md) keeps
// delivery rate and latency for legitimate traffic closer to their
// pre-attack levels than static shortest-path routing, while a flood
// attack congests the default corridors; after the attack it re-converges.
//
// Table 1: per routing variant, per attack window (before/during/after):
//          delivery rate, mean and p95 latency for legitimate packets.
// Table 2: degradation factors during the attack (the headline shape).
#include <iostream>
#include <string>
#include <vector>

#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace {

using namespace sa;
using namespace sa::cpn;

constexpr double kBefore = 3000.0;  // ticks of pre-attack traffic
constexpr double kAttack = 3000.0;
constexpr double kAfter = 3000.0;
const std::vector<std::uint64_t> kSeeds{41, 42, 43};

const char* const kWindows[] = {"before", "during", "after"};

exp::TaskOutput run(PacketNetwork::Router router, bool defence,
                    const exp::TaskContext& ctx) {
  const std::uint64_t seed = ctx.seed;
  const auto topo = Topology::grid(4, 6, 4, seed);
  PacketNetwork::Params np;
  np.router = router;
  np.dos_defence = defence;
  np.seed = seed;
  PacketNetwork net(topo, np);
  // E4 has no per-node agents, so tracing here is coarse: the network's
  // telemetry feed plus one span per attack window on subject "cpn.bench"
  // (sim-time derived; the trajectory is unchanged).
  if (ctx.telemetry != nullptr) net.set_telemetry(ctx.telemetry);
  sim::SubjectId trace_subject = 0;
  sim::NameId n_window = 0, k_delivery = 0, k_mean_lat = 0;
  if (ctx.tracer != nullptr) {
    trace_subject = ctx.tracer->bus().intern_subject("cpn.bench");
    n_window = ctx.tracer->intern_name("window");
    k_delivery = ctx.tracer->intern_name("delivery");
    k_mean_lat = ctx.tracer->intern_name("mean_latency");
  }
  TrafficParams tp;
  tp.flows = 8;
  tp.legit_rate = 2.0;
  tp.attack_start = kBefore;
  tp.attack_end = kBefore + kAttack;
  tp.attack_rate = 25.0;
  tp.attackers = 3;
  tp.seed = seed;
  TrafficGenerator gen(topo, tp);

  // Event-driven run: injection and transit are two order-0 streams on one
  // engine (registration order keeps injection first each tick); the attack
  // windows become run_until() horizons. Identical to the old tick loop.
  sim::Engine engine;
  gen.bind(engine, net);
  net.bind(engine);
  // Served cell (--serve): expose this engine live over HTTP.
  if (ctx.serve_bind) {
    exp::ServeHooks hooks;
    hooks.engine = &engine;
    ctx.serve_bind(hooks);
  }

  exp::Metrics m;
  const double ticks[] = {kBefore, kAttack, kAfter};
  double horizon = 0.0;
  for (int w = 0; w < 3; ++w) {
    const double start = horizon;
    horizon += ticks[w];
    auto span = (ctx.tracer != nullptr && ctx.tracer->enabled())
                    ? ctx.tracer->span(start, trace_subject, n_window)
                    : sim::Tracer::Span{};
    engine.run_until(horizon);
    const auto s = net.harvest();
    if (span) {
      span.arg(k_delivery, s.delivery_rate());
      span.arg(k_mean_lat, s.mean_latency);
      span.end_at(horizon);
    }
    const std::string prefix = std::string(kWindows[w]) + ".";
    m.emplace_back(prefix + "delivery", s.delivery_rate());
    m.emplace_back(prefix + "mean_lat", s.mean_latency);
    m.emplace_back(prefix + "p95_lat", s.p95_latency);
  }
  return {std::move(m)};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e4_cpn", argc, argv);
  std::cout << "E4: DoS resilience — static shortest-path vs self-aware "
               "Q-routing (CPN loop).\nFlood of 25 pkts/tick from 3 "
               "attackers onto the central node during the middle window; "
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  struct Config {
    std::string name;
    PacketNetwork::Router router;
    bool defence;
  };
  const std::vector<Config> configs{
      {"static", PacketNetwork::Router::Static, false},
      {"static+defence", PacketNetwork::Router::Static, true},
      {"q-routing", PacketNetwork::Router::QRouting, false},
      {"self-aware (q+defence)", PacketNetwork::Router::QRouting, true},
  };

  exp::Grid g;
  g.name = "e4";
  for (const auto& cfg : configs) g.variants.push_back(cfg.name);
  g.seeds = kSeeds;
  g.task = [&configs](const exp::TaskContext& ctx) {
    const auto& cfg = configs[ctx.variant];
    return run(cfg.router, cfg.defence, ctx);
  };
  const auto res = h.run(std::move(g));

  sim::Table t1("E4.1  legitimate-traffic QoS by attack window",
                {"router", "window", "delivery", "mean_lat", "p95_lat"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    for (const char* win : kWindows) {
      const std::string prefix = std::string(win) + ".";
      t1.add_row({res.variants[v], std::string(win),
                  res.mean(v, prefix + "delivery"),
                  res.mean(v, prefix + "mean_lat"),
                  res.mean(v, prefix + "p95_lat")});
    }
  }
  t1.print(std::cout);

  sim::Table t2("E4.2  degradation during attack (during / before)",
                {"router", "latency_x", "delivery_drop"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t2.add_row({res.variants[v],
                res.mean(v, "during.mean_lat") / res.mean(v, "before.mean_lat"),
                res.mean(v, "before.delivery") -
                    res.mean(v, "during.delivery")});
  }
  t2.print(std::cout);
  return h.finish();
}
