// First-order Markov predictor over discrete states.
//
// Interaction-awareness often needs "what will this peer / environment do
// next?" over a small discrete alphabet (camera cell occupancy, workload
// phase, node up/down). A transition-count Markov chain is the simplest
// self-model with predictive power.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace sa::learn {

/// Transition-count first-order Markov chain with Laplace smoothing.
class MarkovPredictor {
 public:
  explicit MarkovPredictor(std::size_t states)
      : states_(states), counts_(states * states, 0) {}

  /// Feeds the next observed state.
  void observe(std::size_t state) {
    if (has_prev_) ++counts_[prev_ * states_ + state];
    prev_ = state;
    has_prev_ = true;
    ++n_;
  }
  /// P(next = `to` | current = `from`) with add-one smoothing.
  [[nodiscard]] double probability(std::size_t from, std::size_t to) const {
    std::size_t row_total = 0;
    for (std::size_t s = 0; s < states_; ++s) row_total += counts_[from * states_ + s];
    return (static_cast<double>(counts_[from * states_ + to]) + 1.0) /
           (static_cast<double>(row_total) + static_cast<double>(states_));
  }
  /// Most likely successor of `from`.
  [[nodiscard]] std::size_t predict(std::size_t from) const {
    std::size_t best = 0;
    for (std::size_t s = 1; s < states_; ++s) {
      if (counts_[from * states_ + s] > counts_[from * states_ + best]) best = s;
    }
    return best;
  }
  /// Most likely successor of the most recently observed state.
  [[nodiscard]] std::size_t predict_next() const {
    return has_prev_ ? predict(prev_) : 0;
  }
  /// Samples a successor of `from` from the smoothed distribution.
  std::size_t sample(std::size_t from, sim::Rng& rng) const {
    double target = rng.uniform(), acc = 0.0;
    for (std::size_t s = 0; s < states_; ++s) {
      acc += probability(from, s);
      if (acc >= target) return s;
    }
    return states_ - 1;
  }

  [[nodiscard]] std::size_t states() const { return states_; }
  [[nodiscard]] std::size_t observations() const { return n_; }
  void reset() {
    std::fill(counts_.begin(), counts_.end(), std::size_t{0});
    has_prev_ = false;
    n_ = 0;
  }

 private:
  std::size_t states_;
  std::vector<std::size_t> counts_;
  std::size_t prev_ = 0;
  bool has_prev_ = false;
  std::size_t n_ = 0;
};

}  // namespace sa::learn
