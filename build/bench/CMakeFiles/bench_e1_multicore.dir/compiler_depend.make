# Empty compiler generated dependencies file for bench_e1_multicore.
# This may be replaced when dependencies are built.
