// Serve-load bench: thousand-client load against a live sa::serve endpoint
// while a reduced E1 grid runs underneath — the "heavy traffic" story made
// measurable.
//
// An sa::loadgen pool (N connect-per-request scrapers + M SSE subscribers
// + periodic POST /control no-ops) hammers the endpoint of a running
// multicore grid. The bench emits BENCH_serve.json with client-side
// p50/p90/p99/p99.9 per route, the server's own histogram percentiles for
// the same routes (cross-checked: the server must have served at least as
// many requests per route as the clients completed), and the timing-free
// grid trajectory.
//
// Determinism contract: the bridge + server are attached in the QUIET run
// too (--clients 0 --sse 0 --controllers 0), so the sim trajectory —
// including the bridge's publish events — is byte-identical between quiet
// and loaded runs. CI writes both trajectories via --trajectory and
// byte-compares them.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "exp/args.hpp"
#include "exp/harness.hpp"
#include "exp/runner.hpp"
#include "loadgen/loadgen.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "serve/bridge.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace {

using namespace sa;

struct LoadArgs {
  unsigned clients = 64;      ///< scraper connections
  unsigned sse = 4;           ///< SSE subscriber streams
  unsigned controllers = 1;   ///< periodic POST /control threads
  double duration_s = 3.0;    ///< minimum load window (from pool start)
  std::uint64_t load_seed = 1;
  std::string trajectory;     ///< timing-free grid JSON output path
  std::string expose;         ///< final /metrics self-scrape output path
  std::string token;          ///< control token (server + clients)
};

std::string parse_unsigned(std::string_view value, unsigned& out) {
  char* end = nullptr;
  const std::string s(value);
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return "expected a non-negative integer";
  out = static_cast<unsigned>(v);
  return "";
}

/// Reduced E1 (multicore) grid, as in serve_determinism_test: static vs
/// self-aware management. The (self-aware, seed 11) cell always runs with
/// the bridge attached — quiet and loaded runs share the exact event set.
exp::Grid load_grid(serve::SimBridge* bridge, sim::TelemetryBus* bus) {
  exp::Grid g;
  g.name = "e1.load";
  g.variants = {"static", "self-aware"};
  g.seeds = {11, 12};
  g.task = [bridge, bus](const exp::TaskContext& ctx) -> exp::TaskOutput {
    const bool served = ctx.variant == 1 && ctx.seed == 11;
    multicore::Platform platform(multicore::PlatformConfig::big_little(2, 4),
                                 ctx.seed);
    auto workload = multicore::PhasedWorkload::standard();
    multicore::Manager::Params p;
    p.variant = ctx.variant == 0 ? multicore::Manager::Variant::Static
                                 : multicore::Manager::Variant::SelfAware;
    p.seed = ctx.seed;
    if (served) p.telemetry = bus;
    multicore::Manager mgr(platform, p);

    sim::Engine engine;
    engine.every(
        p.epoch_s,
        [&] {
          workload.apply(platform);
          return true;
        },
        0);
    sim::RunningStats utility, power, latency;
    mgr.bind(engine, 0.0, [&](double u) {
      utility.add(u);
      power.add(mgr.last_stats().mean_power);
      latency.add(mgr.last_stats().p95_latency);
    });
    if (served) {
      bridge->add_agent(&mgr.agent());
      bridge->attach(engine);
    }
    engine.run_until(120 * p.epoch_s);
    return {{{"utility", utility.mean()},
             {"power_w", power.mean()},
             {"p95_s", latency.mean()},
             {"cap_viol", mgr.cap_violation_rate()}}};
  };
  return g;
}

exp::Json percentiles_json(const serve::LatencyHistogram::Snapshot& h) {
  exp::Json out = exp::Json::object();
  out["count"] = static_cast<std::int64_t>(h.count);
  out["p50_s"] = h.quantile(0.50);
  out["p90_s"] = h.quantile(0.90);
  out["p99_s"] = h.quantile(0.99);
  out["p999_s"] = h.quantile(0.999);
  out["mean_s"] =
      h.count ? h.sum_s() / static_cast<double>(h.count) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  exp::Options opts;
  LoadArgs load;
  exp::StandardArgs table;
  table.add({"--clients", "", "N",
             "concurrent scraper connections (default 64; 0 = quiet run)",
             [&load](std::string_view v, exp::Options&) {
               return parse_unsigned(v, load.clients);
             }});
  table.add({"--sse", "", "M", "concurrent SSE subscriber streams (default 4)",
             [&load](std::string_view v, exp::Options&) {
               return parse_unsigned(v, load.sse);
             }});
  table.add({"--controllers", "", "K",
             "periodic POST /control client threads (default 1)",
             [&load](std::string_view v, exp::Options&) {
               return parse_unsigned(v, load.controllers);
             }});
  table.add({"--duration", "", "SEC",
             "minimum load window in seconds (default 3)",
             [&load](std::string_view v, exp::Options&) {
               char* end = nullptr;
               const std::string s(v);
               load.duration_s = std::strtod(s.c_str(), &end);
               return end == s.c_str() + s.size() && load.duration_s >= 0
                          ? std::string{}
                          : std::string("expected a non-negative number");
             }});
  table.add({"--load-seed", "", "S",
             "base seed of the per-client splitmix64 pacing streams",
             [&load](std::string_view v, exp::Options&) {
               unsigned s = 0;
               const std::string err = parse_unsigned(v, s);
               load.load_seed = s;
               return err;
             }});
  table.add({"--trajectory", "", "PATH",
             "write the timing-free grid JSON (byte-identical quiet vs "
             "loaded)",
             [&load](std::string_view v, exp::Options&) {
               load.trajectory = std::string(v);
               return std::string{};
             }});
  table.add({"--expose", "", "PATH",
             "write the final /metrics self-scrape to PATH",
             [&load](std::string_view v, exp::Options&) {
               load.expose = std::string(v);
               return std::string{};
             }});
  table.add({"--token", "", "T", "control token (server check + clients)",
             [&load](std::string_view v, exp::Options&) {
               load.token = std::string(v);
               return std::string{};
             }});
  const std::string err = table.parse(argc, argv, opts);
  if (opts.help) {
    std::cout << table.usage(argv[0]);
    return 0;
  }
  if (!err.empty()) {
    std::cerr << err << "\n" << table.usage(argv[0]);
    return 2;
  }

  const auto wall_start = std::chrono::steady_clock::now();

  sim::TelemetryBus bus;
  serve::SimBridge::Options bopts;
  bopts.publish_period = 0.05;
  bopts.control_token = load.token;
  serve::SimBridge bridge(bopts);
  bridge.set_telemetry(&bus);

  serve::Server::Options sopts;
  if (opts.serve_port > 0) {
    sopts.port = static_cast<std::uint16_t>(opts.serve_port);
  }
  // A handful of workers against thousands of clients is the point: the
  // connect-per-request clients cycle through the pool via the backlog.
  sopts.workers = 6 + load.sse;
  sopts.listen_backlog = 1024;
  sopts.read_timeout_ms = 2000;
  sopts.write_timeout_ms = 2000;
  sopts.slow_request_threshold_s = 0.01;
  serve::Server server(sopts);
  bridge.install(server);
  if (!server.start()) {
    std::cerr << "serve: " << server.error() << "\n";
    return 1;
  }
  std::cout << "serve_load: live on http://127.0.0.1:" << server.port()
            << " (workers " << sopts.workers << ")\n";

  loadgen::Options lopts;
  lopts.port = server.port();
  lopts.scrapers = load.clients;
  lopts.sse = load.sse;
  lopts.controllers = load.controllers;
  lopts.keep_alive = false;  // cycle the worker pool through every client
  lopts.seed = load.load_seed;
  lopts.timeout_ms = 5000;
  lopts.control_token = load.token;
  loadgen::Pool pool(lopts);
  pool.start();

  exp::Runner runner(opts.jobs);
  const exp::GridResult result =
      runner.run("serve_load", load_grid(&bridge, &bus));

  if (!load.trajectory.empty()) {
    std::ofstream out(load.trajectory);
    out << exp::to_json(result, /*include_timing=*/false).dump() << "\n";
    if (!out) {
      std::cerr << "serve_load: cannot write " << load.trajectory << "\n";
      return 1;
    }
  }

  // Keep the load window open: clients hammer the post-run snapshots until
  // the requested duration has elapsed.
  while (std::chrono::steady_clock::now() - wall_start <
         std::chrono::duration<double>(load.duration_s)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Self-scrape while the pool is still live, so gauges show real load.
  int scrape_status = 0;
  const std::string scrape =
      loadgen::fetch("127.0.0.1", server.port(), "/metrics", 5000,
                     &scrape_status);
  if (!load.expose.empty()) {
    std::ofstream out(load.expose);
    out << scrape;
  }

  pool.stop();
  const loadgen::Report report = pool.report();
  const serve::ServerStats::Snapshot self = server.stats().snapshot();
  server.stop();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  bool ok = result.errors() == 0;
  if (scrape_status != 200 ||
      scrape.find("sa_serve_request_duration_seconds_bucket") ==
          std::string::npos) {
    std::cerr << "serve_load: self-scrape missing request-duration "
                 "histograms (status "
              << scrape_status << ")\n";
    ok = false;
  }
  if (pool.clients() > 0 && report.connects == 0) {
    std::cerr << "serve_load: no client ever connected\n";
    ok = false;
  }

  exp::Json doc = exp::Json::object();
  doc["schema"] = 1;
  doc["experiment"] = "serve_load";
  exp::Json meta = exp::Json::object();
  meta["git_rev"] = exp::git_rev();
  meta["jobs"] = static_cast<std::int64_t>(runner.jobs());
  meta["clients"] = static_cast<std::int64_t>(load.clients);
  meta["sse_clients"] = static_cast<std::int64_t>(load.sse);
  meta["controllers"] = static_cast<std::int64_t>(load.controllers);
  meta["duration_s"] = load.duration_s;
  meta["load_seed"] = static_cast<std::int64_t>(load.load_seed);
  meta["wall_clock_s"] = wall;
  meta["peak_rss_mb"] = exp::peak_rss_mb();
  doc["meta"] = std::move(meta);
  doc["grids"] = exp::Json::array();
  doc["grids"].push_back(exp::to_json(result, /*include_timing=*/false));

  exp::Json client = exp::Json::object();
  for (std::size_t r = 0; r < serve::kRouteClasses; ++r) {
    exp::Json route = percentiles_json(report.routes[r].latency);
    route["requests"] = static_cast<std::int64_t>(report.routes[r].requests);
    route["errors"] = static_cast<std::int64_t>(report.routes[r].errors);
    client[serve::route_label(static_cast<serve::RouteClass>(r))] =
        std::move(route);
  }
  client["connects"] = static_cast<std::int64_t>(report.connects);
  client["connect_failures"] =
      static_cast<std::int64_t>(report.connect_failures);
  client["bytes_received"] = static_cast<std::int64_t>(report.bytes_received);
  doc["client"] = std::move(client);

  exp::Json server_side = exp::Json::object();
  for (std::size_t r = 0; r < serve::kRouteClasses; ++r) {
    server_side[serve::route_label(static_cast<serve::RouteClass>(r))] =
        percentiles_json(self.routes[r]);
  }
  server_side["queue_wait"] = percentiles_json(self.queue_wait);
  server_side["keepalive_reuses"] =
      static_cast<std::int64_t>(self.keepalive_reuses);
  server_side["write_timeouts"] =
      static_cast<std::int64_t>(self.write_timeouts);
  server_side["request_bytes"] = static_cast<std::int64_t>(self.request_bytes);
  server_side["response_bytes"] =
      static_cast<std::int64_t>(self.response_bytes);
  doc["server"] = std::move(server_side);

  // Cross-check: every request a client completed was served, so the
  // server-side histogram count per route must be at least the client's.
  exp::Json consistency = exp::Json::array();
  for (std::size_t r = 0; r < serve::kRouteClasses; ++r) {
    const std::uint64_t client_n = report.routes[r].requests;
    const std::uint64_t server_n = self.routes[r].count;
    const bool route_ok = server_n >= client_n;
    exp::Json row = exp::Json::object();
    row["route"] = serve::route_label(static_cast<serve::RouteClass>(r));
    row["ok"] = route_ok;
    consistency.push_back(std::move(row));
    if (!route_ok) {
      std::cerr << "serve_load: server served fewer "
                << serve::route_label(static_cast<serve::RouteClass>(r))
                << " requests (" << server_n << ") than clients completed ("
                << client_n << ")\n";
      ok = false;
    }
  }
  doc["consistency"] = std::move(consistency);

  if (!opts.json.empty()) {
    std::ofstream out(opts.json);
    doc.dump(out);
    out << "\n";
    if (!out) {
      std::cerr << "serve_load: cannot write " << opts.json << "\n";
      ok = false;
    }
  }

  std::cout << "serve_load: " << report.connects << " connects, "
            << report.connect_failures << " connect failures, wall "
            << wall << " s\n";
  std::cout << "route        client_p50  client_p99  server_p50  server_p99"
               "  requests\n";
  for (std::size_t r = 0; r < serve::kRouteClasses; ++r) {
    const auto& cl = report.routes[r].latency;
    const auto& sv = self.routes[r];
    if (cl.count == 0 && sv.count == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-12s %10.6f  %10.6f  %10.6f  %10.6f  %8llu\n",
                  serve::route_label(static_cast<serve::RouteClass>(r)),
                  cl.quantile(0.50), cl.quantile(0.99), sv.quantile(0.50),
                  sv.quantile(0.99),
                  static_cast<unsigned long long>(
                      report.routes[r].requests));
    std::cout << line;
  }
  return ok ? 0 : 1;
}
