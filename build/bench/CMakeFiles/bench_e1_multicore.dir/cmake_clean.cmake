file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_multicore.dir/bench_e1_multicore.cpp.o"
  "CMakeFiles/bench_e1_multicore.dir/bench_e1_multicore.cpp.o.d"
  "bench_e1_multicore"
  "bench_e1_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
