#include "cloud/cluster.hpp"

#include <algorithm>
#include <cmath>

namespace sa::cloud {

double DemandModel::rate(double t, double epoch_s, sim::Rng& rng) {
  const double base = p_.base + p_.drift_per_s * t;
  const double diurnal =
      1.0 + p_.diurnal_amp * std::sin(2.0 * 3.141592653589793 * t / p_.period_s);
  double r = base * diurnal;
  if (t < burst_until_) {
    r *= p_.burst_mult;
  } else {
    burst_until_ = 0.0;
    if (rng.chance(p_.burst_prob)) {
      burst_until_ = t + rng.exponential(p_.burst_len_s);
      r *= p_.burst_mult;
    }
  }
  (void)epoch_s;
  return std::max(0.0, r);
}

Cluster::Cluster(Params p) : p_(p), rng_(p.seed) {
  nodes_.reserve(p_.nodes);
  was_enrolled_.resize(p_.nodes, 0);
  outcomes_.reserve(p_.nodes);
  for (std::size_t i = 0; i < p_.nodes; ++i) {
    VolunteerNode n;
    n.id = "vn" + std::to_string(i);
    n.capacity = p_.capacity_mean * rng_.uniform(0.5, 1.5);
    // Reliability heterogeneity: MTTF spans an order of magnitude, so
    // learning who to trust actually matters.
    n.mttf_s = p_.mttf_mean_s * rng_.pareto(0.4, 1.6);
    n.mttr_s = p_.mttr_mean_s * rng_.uniform(0.5, 1.5);
    n.up = rng_.chance(n.mttf_s / (n.mttf_s + n.mttr_s));
    n.next_transition =
        rng_.exponential(n.up ? n.mttf_s : n.mttr_s);
    n.cost_per_s = 0.5 + n.capacity / p_.capacity_mean;
    nodes_.push_back(std::move(n));
  }
}

void Cluster::enrol(const std::vector<std::size_t>& order, std::size_t k) {
  // was_enrolled_ is member scratch: enrol() runs every control epoch, so
  // the previous-membership snapshot reuses one buffer instead of
  // allocating per call.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    was_enrolled_[i] = nodes_[i].enrolled ? 1 : 0;
    nodes_[i].enrolled = false;
  }
  const std::size_t take = std::min(k, order.size());
  for (std::size_t i = 0; i < take; ++i) {
    auto& n = nodes_[order[i]];
    n.enrolled = true;
    // Fresh enrolments pay the provisioning lag before delivering capacity.
    if (!was_enrolled_[order[i]]) n.boot_until = now_ + p_.boot_s;
  }
}

void Cluster::advance_availability(VolunteerNode& n, double until) {
  while (n.next_transition <= until) {
    n.up = !n.up;
    n.next_transition += rng_.exponential(n.up ? n.mttf_s : n.mttr_s);
  }
}

CloudEpoch Cluster::run_epoch(double rate) {
  const double dt = p_.epoch_s;
  const double t_end = now_ + dt;
  outcomes_.clear();
  CloudEpoch e;

  // One batch sweep over the population, in node-index order (the RNG
  // draws in advance_availability depend on it): advance availability,
  // sample capacity at the midpoint (sub-epoch flips approximate as half
  // capacity for nodes that flipped), and fold the enrolment counters and
  // cost into the same pass — each node's contribution depends only on its
  // own post-advance state, so the fused sweep accumulates the identical
  // float sequence the separate counting pass used to.
  double capacity = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& n = nodes_[i];
    // Preemption overrides the node's own availability process; the renewal
    // clock still advances so the node resumes mid-life on release.
    const bool was_up = n.up && !n.preempted;
    advance_availability(n, t_end);
    if (!n.enrolled) continue;
    const bool now_up = n.up && !n.preempted;
    ++e.enrolled;
    if (now_up) ++e.up_enrolled;
    e.cost += n.cost_per_s * dt;
    if (now_ < n.boot_until) continue;  // still provisioning: no capacity
    double frac = 0.0;
    if (was_up && now_up) {
      frac = 1.0;
    } else if (was_up != now_up) {
      frac = 0.5;
    }
    const double delivered = n.capacity * frac * capacity_factor_;
    capacity += delivered;
    const bool stayed_up = was_up && now_up;
    outcomes_.push_back({i, stayed_up, delivered});
    if (!stayed_up && telemetry_) {
      telemetry_->record(t_end, sim::TelemetryBus::kFailure, subject_,
                         delivered, n.id);
    }
  }

  e.duration = dt;
  e.arrival_rate = rate;
  const double arrived = rate * dt;
  const double offered = arrived + backlog_;
  const double service = capacity * dt;
  e.demand = offered;
  e.capacity = capacity;
  e.served = std::min(offered, service);
  double leftover = offered - e.served;
  e.dropped = std::max(0.0, leftover - p_.queue_bound);
  backlog_ = leftover - e.dropped;
  e.backlog = backlog_;
  e.sla = offered > 0.0 ? e.served / offered : 1.0;
  e.utilisation = service > 0.0 ? std::min(1.0, offered / service) : 1.0;
  now_ = t_end;
  if (telemetry_) {
    telemetry_->record(now_, sim::TelemetryBus::kObservation, subject_,
                       e.sla, "epoch");
  }
  return e;
}

void Cluster::set_telemetry(sim::TelemetryBus* bus) {
  telemetry_ = bus;
  if (telemetry_) subject_ = telemetry_->intern_subject("cloud.cluster");
}

}  // namespace sa::cloud
