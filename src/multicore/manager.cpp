#include "multicore/manager.hpp"

#include <cmath>

#include "learn/bandit.hpp"

namespace sa::multicore {

std::vector<ManagerAction> default_actions(const Platform& platform) {
  std::vector<ManagerAction> out;
  for (std::size_t lvl = 0; lvl < platform.freq_levels(); ++lvl) {
    for (Mapping m :
         {Mapping::Balanced, Mapping::PackBig, Mapping::PackLittle}) {
      ManagerAction a;
      a.freq_level = lvl;
      a.mapping = m;
      a.name = "f" + std::to_string(lvl) + "/" + mapping_name(m);
      out.push_back(std::move(a));
    }
  }
  return out;
}

const char* Manager::variant_name(Variant v) noexcept {
  switch (v) {
    case Variant::Static: return "static";
    case Variant::Reactive: return "reactive";
    case Variant::SelfAware: return "self-aware";
  }
  return "?";
}

Manager::Manager(Platform& platform, Params params)
    : platform_(platform), p_(params), actions_(default_actions(platform)) {
  if (p_.telemetry != nullptr) platform_.set_telemetry(p_.telemetry);
  if (p_.tracer != nullptr) {
    trace_subject_ = p_.tracer->bus().intern_subject("multicore.manager");
    n_epoch_ = p_.tracer->intern_name("epoch");
    k_utility_ = p_.tracer->intern_name("utility");
    k_power_ = p_.tracer->intern_name("mean_power");
  }
  build_agent();
}

void Manager::bind(sim::Engine& engine, double period,
                   std::function<void(double)> on_epoch) {
  if (period <= 0.0) period = p_.epoch_s;
  engine.every_tagged(
      sim::event_tag("sa.multicore.manager"), period,
      [this, period, on_epoch = std::move(on_epoch)] {
        const double u = run_epoch_for(period);
        if (on_epoch) on_epoch(u);
        return true;
      },
      /*order=*/1);
}

void Manager::build_agent() {
  core::AgentConfig cfg;
  cfg.seed = p_.seed;
  cfg.telemetry = p_.telemetry;
  cfg.tracer = p_.tracer;
  switch (p_.variant) {
    case Variant::Static:
      cfg.levels = core::LevelSet{};  // no awareness machinery at all
      break;
    case Variant::Reactive:
      cfg.levels = core::LevelSet::minimal();
      break;
    case Variant::SelfAware:
      cfg.levels = p_.levels;
      break;
  }
  // Forecast errors are judged relative to the sensed signals' magnitude
  // (tasks/s, watts), not the default unit scale.
  cfg.time.error_scale = 5.0;
  agent_ = std::make_unique<core::SelfAwareAgent>("multicore-mgr", cfg);

  // Sensors read the last harvested epoch.
  agent_->add_sensor("throughput", [this] { return stats_.throughput; });
  agent_->add_sensor("demand", [this] { return stats_.offered_gops; });
  agent_->add_sensor("latency", [this] { return stats_.p95_latency; });
  agent_->add_sensor("power", [this] { return stats_.mean_power; });
  agent_->add_sensor("queue", [this] { return stats_.mean_queue; });
  agent_->add_sensor("temp", [this] { return stats_.max_temp_c; });

  // Actions apply a whole configuration for the next epoch.
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    agent_->add_action(actions_[i].name, [this, i] { apply(actions_[i]); });
  }

  // Goals: throughput up, tail latency down, power down — with the cap as
  // a hard constraint (stakeholder non-negotiable).
  auto& goals = agent_->goals();
  goals.add_objective(
      {"throughput", core::utility::rising(0.0, p_.throughput_scale), 1.0});
  // Tail latency carries double weight: the motivating workloads are
  // latency-critical (interactive phase), and it is the metric a static
  // design-time choice cannot keep low across regimes.
  goals.add_objective(
      {"latency", core::utility::falling(0.0, 5.0 * p_.target_latency_s),
       2.0});
  goals.add_objective(
      {"power", core::utility::falling(1.0, 10.0), 1.0});
  // Backlog is a leading indicator the tail-latency metric saturates on:
  // once the queue is deep, every config's p95 looks equally bad, but the
  // queue's growth rate still separates configurations that recover from
  // ones that spiral.
  goals.add_objective({"queue", core::utility::falling(0.0, 40.0), 1.0});
  const double cap = p_.power_cap_w;
  goals.add_constraint({"power-cap",
                        [cap](const core::MetricMap& m) {
                          const auto it = m.find("power");
                          return it == m.end() || it->second <= cap;
                        },
                        /*hard=*/true});
  agent_->set_goal_metrics({"throughput", "latency", "power", "queue"});

  switch (p_.variant) {
    case Variant::Static:
      agent_->set_policy(
          std::make_unique<core::FixedPolicy>(p_.static_action));
      break;
    case Variant::Reactive: {
      // Threshold rules over *current* readings only — no models.
      auto rules = std::make_unique<core::RulePolicy>(
          /*default: mid frequency, balanced*/ std::size_t{3});
      const double target = p_.target_latency_s;
      rules->add_rule({"power over cap -> min freq, pack little",
                       [cap](const core::KnowledgeBase& kb) {
                         return kb.number("power") > cap;
                       },
                       /*f0/pack-little*/ 2,
                       {"power"}});
      rules->add_rule({"latency over target -> max freq, pack big",
                       [target](const core::KnowledgeBase& kb) {
                         return kb.number("latency") > target;
                       },
                       /*f3/pack-big*/ 10,
                       {"latency"}});
      agent_->set_policy(std::move(rules));
      break;
    }
    case Variant::SelfAware: {
      // Self-prediction (Kounev et al. [30][31]; Agarwal's introspection
      // [16]): the agent holds an explicit self-model — the chip's
      // capacity/power characteristics plus the *sensed* workload (offered
      // work, arrival rate, backlog, and the time-awareness forecast of
      // demand) — simulates every candidate configuration against it, and
      // picks the predicted-utility maximiser. No trial-and-error on the
      // live system, which is exactly what distinguishes model-based
      // self-awareness from the reactive baseline.
      auto model = [this](std::size_t action,
                          const core::KnowledgeBase& kb) -> core::MetricMap {
        return predict(actions_[action], kb);
      };
      agent_->set_policy(std::make_unique<core::ModelBasedPolicy>(
          agent_->goals(), std::move(model),
          std::vector<std::string>{"demand", "forecast.demand", "queue"}));
      break;
    }
  }
}

core::MetricMap Manager::predict(const ManagerAction& a,
                                 const core::KnowledgeBase& kb) const {
  // Eligible capacity and idle/active power under configuration `a`.
  // With the thermal model on, the self-model also predicts throttling:
  // a core whose steady-state temperature would exceed the envelope
  // duty-cycles between the requested and the minimum frequency, so its
  // *sustained* speed and power are the duty-weighted mixture. Constants
  // come from the platform's datasheet (config()).
  const auto& pc = platform_.config();
  double cap = 0.0, leak = 0.0, dyn_full = 0.0, eligible_cap = 0.0;
  double hottest_c = pc.ambient_c;  // predicted hottest eligible core
  const double freq = platform_.freq_ghz(a.freq_level);
  const double f_min = platform_.freq_ghz(0);
  // Utilisation estimate for the thermal model: sensed demand over this
  // configuration's nominal capacity (the busy cores are what heat up).
  double nominal_cap = 0.0;
  for (std::size_t c = 0; c < platform_.cores(); ++c) {
    const auto& spec = platform_.spec(c);
    const bool eligible = a.mapping == Mapping::Balanced ||
                          (a.mapping == Mapping::PackBig && spec.big) ||
                          (a.mapping == Mapping::PackLittle && !spec.big);
    if (eligible) nominal_cap += spec.ipc * freq;
  }
  const double util_guess =
      nominal_cap > 0.0
          ? std::clamp(kb.number("demand") / nominal_cap, 0.2, 1.0)
          : 1.0;
  for (std::size_t c = 0; c < platform_.cores(); ++c) {
    const auto& spec = platform_.spec(c);
    const bool eligible = a.mapping == Mapping::Balanced ||
                          (a.mapping == Mapping::PackBig && spec.big) ||
                          (a.mapping == Mapping::PackLittle && !spec.big);
    cap += spec.ipc * freq;  // spill-over: every core can ultimately help
    if (!eligible) {
      leak += spec.static_w * freq * freq;
      continue;
    }
    double duty = 1.0;  // fraction of time at the requested frequency
    if (pc.thermal) {
      const double p_hot_now =
          spec.static_w * freq * freq +
          spec.dyn_coeff * freq * freq * freq * util_guess;
      hottest_c = std::max(
          hottest_c,
          std::min(pc.throttle_c,
                   pc.ambient_c + pc.heat_per_w * p_hot_now / pc.cool_rate));
      const double t_mid = 0.5 * (pc.throttle_c + pc.recover_c);
      const double p_hot = spec.static_w * freq * freq +
                           spec.dyn_coeff * freq * freq * freq * util_guess;
      const double p_cold =
          spec.static_w * f_min * f_min +
          spec.dyn_coeff * f_min * f_min * f_min * util_guess;
      const double sink = pc.cool_rate * (t_mid - pc.ambient_c);
      const double heat_rate = pc.heat_per_w * p_hot - sink;
      const double cool_rate = sink - pc.heat_per_w * p_cold;
      if (heat_rate > 0.0 && cool_rate > 0.0) {
        duty = cool_rate / (cool_rate + heat_rate);
      } else if (heat_rate > 0.0) {
        duty = 0.0;  // cannot even cool at f_min: clamped ~always
      }
      // State awareness: if the chip is already near the throttle point,
      // a heating configuration clamps almost immediately — the sustained
      // duty only applies from a cool start.
      if (heat_rate > 0.0) {
        const double headroom =
            std::clamp((pc.throttle_c - stats_.max_temp_c) /
                           (pc.throttle_c - pc.recover_c),
                       0.0, 1.0);
        duty = std::min(duty, headroom);
      }
    }
    const double eff_freq = duty * freq + (1.0 - duty) * f_min;
    eligible_cap += spec.ipc * eff_freq;
    leak += spec.static_w * eff_freq * eff_freq;
    dyn_full += spec.dyn_coeff * eff_freq * eff_freq * eff_freq;
  }
  if (eligible_cap <= 0.0) eligible_cap = cap;

  // Sensed workload: offered giga-ops/s, arrival rate, carried queue. The
  // demand forecast from time awareness is preferred once it is warm.
  double demand = kb.number("demand");
  if (kb.confidence("forecast.demand") > 0.3) {
    demand = std::max(0.0, kb.number("forecast.demand", demand));
  }
  const double rate = stats_.duration > 0.0
                          ? static_cast<double>(stats_.arrived) /
                                stats_.duration
                          : 0.0;
  const double mean_work = rate > 1e-9 ? demand / rate : 0.2;

  const double rho = std::min(demand / eligible_cap, 0.999);
  // A task occupies one core; approximate the mean service time by the
  // per-eligible-core speed, and the queueing delay by Sakasegawa's M/M/c
  // approximation (the platform really is c parallel servers — an M/M/1
  // view would be catastrophically pessimistic at moderate load).
  std::size_t servers = 0;
  for (std::size_t c = 0; c < platform_.cores(); ++c) {
    const auto& spec = platform_.spec(c);
    const bool eligible = a.mapping == Mapping::Balanced ||
                          (a.mapping == Mapping::PackBig && spec.big) ||
                          (a.mapping == Mapping::PackLittle && !spec.big);
    if (eligible) ++servers;
  }
  if (servers == 0) servers = platform_.cores();
  const double cs = static_cast<double>(servers);
  const double per_core = eligible_cap / cs;
  const double service = mean_work / std::max(per_core, 1e-9);
  const double wait = service *
                      std::pow(rho, std::sqrt(2.0 * (cs + 1.0))) /
                      (cs * (1.0 - rho));
  const double backlog_gops = kb.number("queue") * mean_work;
  const double drain = backlog_gops / std::max(eligible_cap, 1e-9);
  // p95 of a roughly exponential sojourn is ~3x its mean.
  const double p95 = 3.0 * (service + wait) + drain;

  const double util = std::min(1.0, demand / eligible_cap);
  const double power = leak + dyn_full * util;
  const double backlog_rate =
      stats_.duration > 0.0 ? backlog_gops / stats_.duration : 0.0;
  const double throughput =
      mean_work > 1e-9
          ? std::min(rate + backlog_rate / std::max(mean_work, 1e-9),
                     eligible_cap / mean_work)
          : rate;
  // Predicted queue depth after one more epoch under this configuration.
  const double epoch = stats_.duration > 0.0 ? stats_.duration : p_.epoch_s;
  const double queue_next = std::max(
      0.0, kb.number("queue") +
               (demand - eligible_cap) * epoch / std::max(mean_work, 1e-9));

  (void)hottest_c;
  return core::MetricMap{{"throughput", throughput},
                         {"latency", p95},
                         {"power", power},
                         {"queue", queue_next}};
}

void Manager::apply(const ManagerAction& a) {
  platform_.set_all_freq(a.freq_level);
  platform_.set_mapping(a.mapping);
}

double Manager::run_epoch() { return run_epoch_for(p_.epoch_s); }

double Manager::run_epoch_for(double secs) {
  // Epoch-length span on the manager's track; the agent's ODA spans (on
  // its own track) land at the epoch's end time, inside this interval.
  const double t0 = platform_.now();
  auto span = (p_.tracer != nullptr && p_.tracer->enabled())
                  ? p_.tracer->span(t0, trace_subject_, n_epoch_)
                  : sim::Tracer::Span{};
  platform_.run_for(secs);
  stats_ = platform_.harvest();

  // Measured utility is computed here, from the same goal model, for every
  // variant — including Static, which has no goal-awareness process of its
  // own. It settles the *previous* decision (which produced this epoch)
  // before the agent takes the next one.
  const core::MetricMap m{{"throughput", stats_.throughput},
                          {"latency", stats_.p95_latency},
                          {"power", stats_.mean_power},
                          {"queue", stats_.mean_queue}};
  const double u = agent_->goals().utility(m);
  agent_->reward(u);
  agent_->step(platform_.now());

  ++epochs_;
  utility_.add(u);
  power_.add(stats_.mean_power);
  latency_.add(stats_.p95_latency);
  throughput_.add(stats_.throughput);
  if (stats_.mean_power > p_.power_cap_w) ++cap_violations_;
  if (span) {
    span.arg(k_utility_, u);
    span.arg(k_power_, stats_.mean_power);
    span.end_at(platform_.now());
  }
  return u;
}

}  // namespace sa::multicore
