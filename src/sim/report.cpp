#include "sim/report.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sa::sim {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)),
      columns_(std::move(columns)),
      precision_(columns_.size(), 3) {}

Table& Table::precision(std::size_t col, int digits) {
  precision_.at(col) = digits;
  return *this;
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c, std::size_t col) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* i = std::get_if<std::int64_t>(&c)) {
    os << *i;
  } else {
    os << std::fixed << std::setprecision(precision_[col])
       << std::get<double>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& out = cells.emplace_back();
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(format_cell(row[c], c));
      width[c] = std::max(width[c], out.back().size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells) print_row(row);
  os << '\n';
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << quote(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(format_cell(row[c], c));
    }
    os << '\n';
  }
}

}  // namespace sa::sim
