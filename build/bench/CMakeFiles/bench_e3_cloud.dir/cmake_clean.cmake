file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_cloud.dir/bench_e3_cloud.cpp.o"
  "CMakeFiles/bench_e3_cloud.dir/bench_e3_cloud.cpp.o.d"
  "bench_e3_cloud"
  "bench_e3_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
