// AgentRuntime: periodic agent execution on the simulation engine.
//
// Binds SelfAwareAgents to a sim::Engine so that control loops, reward
// delivery, knowledge exchange and substrate dynamics run as scheduled
// events in simulated time — the glue for multi-agent scenarios where
// entities run at different periods (e.g. a fast platform manager next to
// a slow fleet-level coordinator), and the one place where agents and the
// worlds they control are co-scheduled.
//
// Event ordering at coincident times follows the engine-wide convention
// (see sim/engine.hpp): substrate dynamics at kOrderDynamics, agent steps
// and reward delivery at kOrderControl, knowledge exchange at
// kOrderExchange. A control step at t therefore always sees the world
// state *after* the dynamics tick at t, and exchanges see post-decision
// knowledge.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/sharing.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

namespace sa::core {

class AgentRuntime {
 public:
  /// Engine `order` values used by the runtime (lower runs first at ties).
  static constexpr int kOrderDynamics = 0;
  static constexpr int kOrderControl = 1;
  static constexpr int kOrderExchange = 2;

  explicit AgentRuntime(sim::Engine& engine) : engine_(engine) {}

  /// Attaches a self-profiling registry: every subsequently scheduled
  /// stream registers a `profile.<name>.count` counter and a
  /// `profile.<name>.ms` wall-clock timer, and each agent's measured
  /// ODA-loop latency is additionally written into its own knowledge base
  /// as `meta.profile.step_ms` — the meta level reading its own cost as
  /// just another knowledge item. Wall-clock values never enter simulation
  /// logic or the trace; they are observational only. Call before
  /// schedule*(). Non-owning; null disables.
  void set_metrics(sim::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }
  /// Attaches a tracer: each subsequently scheduled stream emits one span
  /// per firing under subject `runtime.<name>`. Call before schedule*().
  /// Non-owning; null disables.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Steps `agent` every `period` seconds (first step after one period) at
  /// kOrderControl. If `reward_after` is set, its value is fed to the agent
  /// after each step. The agent must outlive the runtime's engine events.
  void schedule(SelfAwareAgent& agent, double period,
                std::function<double()> reward_after = {});

  /// Runs `tick` every `period` seconds at kOrderDynamics — the hook the
  /// substrate bind() adapters use, exposed here so scenarios can co-locate
  /// ad-hoc world dynamics with their agents. `name` labels the stream for
  /// introspection only.
  void schedule_substrate(std::string name, double period,
                          std::function<void()> tick);

  /// Every `period`, exchanges public knowledge among `agents` in a full
  /// mesh (each imports every other's snapshot) at kOrderExchange.
  /// Pointers must stay valid.
  void schedule_exchange(std::vector<SelfAwareAgent*> agents, double period,
                         KnowledgeExchange exchange = KnowledgeExchange{});

  /// Number of schedule()/schedule_substrate()/schedule_exchange()
  /// registrations.
  [[nodiscard]] std::size_t scheduled() const noexcept { return scheduled_; }
  /// Total agent steps executed through this runtime.
  [[nodiscard]] std::size_t steps_run() const noexcept { return steps_; }
  /// Total substrate ticks executed through this runtime.
  [[nodiscard]] std::size_t substrate_ticks() const noexcept {
    return substrate_ticks_;
  }
  /// Total knowledge items imported through scheduled exchanges.
  [[nodiscard]] std::size_t items_exchanged() const noexcept {
    return exchanged_;
  }
  /// Names passed to schedule_substrate(), in registration order.
  [[nodiscard]] const std::vector<std::string>& substrates() const noexcept {
    return substrates_;
  }

 private:
  /// Per-stream profiling/tracing handles resolved at schedule time.
  struct StreamInstruments {
    sim::MetricsRegistry::MetricId count = 0;
    sim::MetricsRegistry::MetricId ms = 0;
    sim::SubjectId subject = 0;
    sim::NameId name = 0;
  };
  StreamInstruments instrument(const std::string& name,
                               const char* span_name);

  sim::Engine& engine_;
  sim::MetricsRegistry* metrics_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::size_t scheduled_ = 0;
  std::size_t steps_ = 0;
  std::size_t substrate_ticks_ = 0;
  std::size_t exchanged_ = 0;
  std::vector<std::string> substrates_;
};

}  // namespace sa::core
