// Graceful degradation of self-awareness levels.
//
// The paper (Section VII) argues a self-aware system should trade awareness
// for robustness under duress: when its own machinery is too slow, its
// knowledge too stale, or its substrate visibly faulting, it can step down
// to a cheaper configuration and still act — and step back up when the
// pressure lifts. DegradationPolicy implements that as a four-rung ladder
// over SelfAwareAgent::set_active_levels():
//
//   Meta      — full constructed level set (normal operation)
//   Goal      — constructed set minus Meta (drop self-monitoring overhead)
//   Stimulus  — stimulus awareness only (reflexive, models paused)
//   Reactive  — no awareness processes; raw readings mirror into the KB
//
// Triggers are breaches of: meta.profile.step_ms (own-loop latency — the
// meta level watching itself), "fault.active" (injected fault pressure,
// fed by fault::feed_agent), and the stale fraction of watched KB keys
// (the stale-knowledge detector over KnowledgeItem TTLs). A breach must
// persist for `breach_updates` consecutive updates to step down one rung;
// `recover_updates` clean updates step back up. Each transition emits an
// Explanation into the agent's Explainer citing the triggering trace id.
//
// Determinism: step_ms_breach defaults to +inf because wall-clock
// latency is nondeterministic; experiments that must be bitwise
// reproducible (E13) trigger on fault.active / staleness only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "sim/trace.hpp"

namespace sa::core {

/// Meta-level controller stepping an agent down/up the awareness ladder.
class DegradationPolicy {
 public:
  /// The ladder rungs, healthiest first.
  enum class Mode : std::uint8_t {
    Meta = 0,      ///< full constructed level set
    Goal = 1,      ///< constructed set minus Meta
    Stimulus = 2,  ///< stimulus awareness only
    Reactive = 3,  ///< no awareness processes at all
  };

  struct Params {
    /// Breach when meta.profile.step_ms exceeds this (own-loop latency).
    /// Default +inf: wall-clock is nondeterministic, so opt in explicitly.
    double step_ms_breach = std::numeric_limits<double>::infinity();
    /// Breach when the KB's "fault.active" count reaches this.
    double fault_active_breach = 1.0;
    /// Breach when > this fraction of `watch_keys` is stale.
    double stale_fraction_breach = 0.5;
    /// TTL stamped onto `watch_keys` items via KB::set_default_ttl at
    /// attach; <= 0 leaves the KB default untouched (staleness disabled
    /// unless producers set TTLs themselves).
    double knowledge_ttl = 0.0;
    /// KB keys whose freshness the stale-knowledge detector watches.
    std::vector<std::string> watch_keys;
    /// Consecutive breached updates required to step down one rung.
    std::size_t breach_updates = 2;
    /// Consecutive clean updates required to step back up one rung.
    std::size_t recover_updates = 4;
  };

  // Two overloads rather than `Params p = {}`: a nested aggregate's
  // member initializers are unusable as a default argument inside the
  // enclosing class.
  explicit DegradationPolicy(SelfAwareAgent& agent);
  DegradationPolicy(SelfAwareAgent& agent, Params p);

  /// One monitoring tick at sim time `t`. Evaluates the triggers, steps
  /// the ladder at most one rung, applies the rung's level set to the
  /// agent, and (on a transition) records an Explanation carrying
  /// `trace` as the citing trace id. Call at control cadence — e.g. via
  /// Runtime::schedule_degradation().
  void update(double t, sim::TraceId trace = 0);

  [[nodiscard]] static const char* mode_name(Mode m) noexcept;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t rung() const noexcept {
    return static_cast<std::size_t>(mode_);
  }
  [[nodiscard]] std::size_t degradations() const noexcept {
    return degradations_;
  }
  [[nodiscard]] std::size_t recoveries() const noexcept { return recoveries_; }
  /// Total sim time spent below Mode::Meta (degraded-mode dwell).
  [[nodiscard]] double degraded_dwell() const noexcept { return dwell_; }
  [[nodiscard]] SelfAwareAgent& agent() noexcept { return agent_; }
  /// Human-readable trigger behind the most recent transition ("" before
  /// the first one).
  [[nodiscard]] const std::string& last_trigger() const noexcept {
    return last_trigger_;
  }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Checkpoint seam (sa::ckpt): ladder position, streaks, and counters.
  /// Params are not part of the state — they come from the rebuilt world.
  struct State {
    Mode mode = Mode::Meta;
    std::uint64_t breach_streak = 0;
    std::uint64_t clean_streak = 0;
    std::uint64_t degradations = 0;
    std::uint64_t recoveries = 0;
    double dwell = 0.0;
    double last_t = 0.0;
    bool seen_update = false;
    std::string last_trigger;
  };
  [[nodiscard]] State export_state() const;
  /// Restores the ladder and re-applies the rung's level set to the agent
  /// (silently — no Explanation is recorded for the re-application).
  void import_state(const State& s);

 private:
  [[nodiscard]] LevelSet level_set_for(Mode m) const;
  void transition(double t, Mode to, const std::string& why,
                  sim::TraceId trace);

  SelfAwareAgent& agent_;
  Params params_;
  Mode mode_ = Mode::Meta;
  std::size_t breach_streak_ = 0;
  std::size_t clean_streak_ = 0;
  std::size_t degradations_ = 0;
  std::size_t recoveries_ = 0;
  double dwell_ = 0.0;
  double last_t_ = 0.0;
  bool seen_update_ = false;
  std::string last_trigger_;
};

}  // namespace sa::core
