// The knowledge base — the agent's self-model substrate.
//
// Everything an agent knows about itself and its world is a KnowledgeItem:
// a typed value with a timestamp, a confidence, a provenance tag, and a
// scope. Scope realises the paper's first framework concept (Section IV):
// *private* self-awareness covers knowledge of internal phenomena, while
// *public* self-awareness covers knowledge derived from / observable by the
// outside world. Only Public items are shared with peers by the collective
// layer.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/value.hpp"

namespace sa::core {

/// Visibility class of a knowledge item (paper, Section IV, concept 1).
enum class Scope {
  Private,  ///< internal phenomena; never shared outside the agent
  Public,   ///< externally observable / shareable knowledge
};

/// One piece of knowledge.
struct KnowledgeItem {
  Value value;
  double time = 0.0;        ///< when the knowledge was produced
  double confidence = 1.0;  ///< producer's self-assessed confidence in [0,1]
  Scope scope = Scope::Private;
  std::string source;       ///< producing process/sensor (provenance)
  /// Sim-time shelf life: the item counts as stale once now - time > ttl.
  /// Infinity (default) never expires. Stale items are still readable —
  /// staleness is a *signal* (see fresh()/stale_keys() and
  /// core::DegradationPolicy), not an eviction.
  double ttl = std::numeric_limits<double>::infinity();
};

/// Keyed, history-preserving store of knowledge items.
///
/// Keys are hierarchical strings by convention ("forecast.load.mae",
/// "peer.cam3.reliability"). Each key retains a bounded history so
/// time-awareness processes can inspect the past.
class KnowledgeBase {
 public:
  using Listener =
      std::function<void(const std::string& key, const KnowledgeItem&)>;

  /// `history_limit` — max items retained per key (oldest evicted first).
  explicit KnowledgeBase(std::size_t history_limit = 128)
      : history_limit_(history_limit) {}

  /// Stores a new item under `key`; notifies listeners.
  void put(const std::string& key, KnowledgeItem item);
  /// Convenience: store a numeric fact.
  void put_number(const std::string& key, double value, double time,
                  double confidence = 1.0, Scope scope = Scope::Private,
                  std::string source = {});

  /// Most recent item for `key`, if any.
  [[nodiscard]] std::optional<KnowledgeItem> latest(
      const std::string& key) const;
  /// Numeric view of the latest item (or `fallback` if absent/non-numeric).
  [[nodiscard]] double number(const std::string& key,
                              double fallback = 0.0) const;
  /// Confidence of the latest item (0 if absent).
  [[nodiscard]] double confidence(const std::string& key) const;
  /// Full retained history for `key` (empty if unknown), oldest first.
  [[nodiscard]] const std::deque<KnowledgeItem>& history(
      const std::string& key) const;
  /// True if `key` has ever been written.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// True when `key` has an item still within its TTL at sim time `now`.
  /// Unknown keys are not fresh. The stale-knowledge detector of the
  /// degradation machinery is built on this.
  [[nodiscard]] bool fresh(const std::string& key, double now) const;
  /// Keys under `prefix` (all keys if empty) whose latest item has
  /// outlived its TTL at `now`, sorted.
  [[nodiscard]] std::vector<std::string> stale_keys(const std::string& prefix,
                                                    double now) const;
  /// Default TTL stamped onto items put() without an explicit finite TTL
  /// (infinity = never expire). Existing items keep the TTL they carry.
  void set_default_ttl(double ttl) noexcept { default_ttl_ = ttl; }
  [[nodiscard]] double default_ttl() const noexcept { return default_ttl_; }
  /// All keys, sorted (deterministic iteration).
  [[nodiscard]] std::vector<std::string> keys() const;
  /// Keys beginning with `prefix`, sorted.
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      const std::string& prefix) const;
  /// Number of distinct keys.
  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

  /// Snapshot of the latest Public item per key — the shareable self.
  [[nodiscard]] std::vector<std::pair<std::string, KnowledgeItem>>
  public_snapshot() const;

  /// Registers a listener fired on every put(). Returns a handle usable
  /// with unsubscribe().
  std::size_t subscribe(Listener l);
  void unsubscribe(std::size_t handle);

  /// Drops all knowledge (scenario teardown).
  void clear();

  [[nodiscard]] std::size_t history_limit() const noexcept {
    return history_limit_;
  }

 private:
  std::size_t history_limit_;
  double default_ttl_ = std::numeric_limits<double>::infinity();
  std::map<std::string, std::deque<KnowledgeItem>> store_;
  std::vector<std::pair<std::size_t, Listener>> listeners_;
  std::size_t next_handle_ = 0;
  static const std::deque<KnowledgeItem> empty_;
};

}  // namespace sa::core
