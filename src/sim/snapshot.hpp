// Published-snapshot cell: single-writer, many-reader handoff of an
// immutable value.
//
// The serving seam (sa::serve) must let server threads read simulation
// state without ever making the sim thread wait on them: the sim thread
// *publishes* an immutable, heap-allocated snapshot at a point of its own
// choosing (an engine-step boundary), and readers grab a shared_ptr to
// whichever snapshot is current. Publication swaps one pointer under a
// tiny spinlock — the same technique libstdc++ uses inside
// std::atomic<shared_ptr>, spelled out here with acquire/release ordering
// ThreadSanitizer can verify. Critical sections are a pointer swap
// (writer) or a refcount increment (reader); nobody ever holds the lock
// across I/O, allocation of the snapshot, or rendering. A reader that
// obtained a snapshot keeps it alive for as long as it needs (shared_ptr
// ownership) even if the writer has since published newer ones or been
// destroyed.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace sa::sim {

/// One cell of the single-writer / many-reader snapshot protocol.
/// `publish()` is writer-only (the sim thread); `read()` is safe from any
/// thread and returns nullptr before the first publication.
template <class T>
class SnapshotCell {
 public:
  /// Installs a new current snapshot. The previous snapshot's refcount
  /// drop (and possible destruction) happens outside the critical section.
  void publish(std::shared_ptr<const T> snapshot) noexcept {
    lock();
    cell_.swap(snapshot);
    unlock();
  }
  /// Convenience: construct-and-publish (construction outside the lock).
  template <class... Args>
  void emplace(Args&&... args) {
    publish(std::make_shared<const T>(std::forward<Args>(args)...));
  }
  /// The current snapshot (nullptr before the first publish()).
  [[nodiscard]] std::shared_ptr<const T> read() const noexcept {
    lock();
    std::shared_ptr<const T> current = cell_;
    unlock();
    return current;
  }

 private:
  void lock() const noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Contention is rare and the critical section is a few instructions;
      // spin-read until the holder clears.
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const noexcept { flag_.clear(std::memory_order_release); }

  mutable std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::shared_ptr<const T> cell_;
};

}  // namespace sa::sim
