// Adapter behaviour: every substrate binding must translate (unit,
// magnitude) faults into the substrate's fault surface, and must
// reference-count overlapping transients so restores never resurrect a
// unit another fault still holds down. Tests drive the registered
// surfaces' begin/end actuators directly (Injector::surface()).
#include "fault/adapters.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "cloud/cluster.hpp"
#include "cpn/network.hpp"
#include "core/agent.hpp"
#include "core/runtime.hpp"
#include "fault/fault.hpp"
#include "multicore/platform.hpp"
#include "sim/engine.hpp"
#include "svc/network.hpp"

namespace sa::fault {
namespace {

TEST(PlatformAdapter, CoreFailIsRefCountedCrashRestart) {
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 2), 1);
  Injector inj;
  bind_platform(inj, platform);
  ASSERT_EQ(inj.surfaces(), 2u);
  const auto& core_fail = inj.surface(0);
  EXPECT_EQ(core_fail.kind, FaultKind::CoreFail);
  EXPECT_EQ(core_fail.units, platform.cores());

  core_fail.begin(0, 1.0);
  EXPECT_TRUE(platform.core_failed(0));
  core_fail.begin(0, 1.0);  // overlapping second fault on the same core
  core_fail.end(0, 1.0);
  EXPECT_TRUE(platform.core_failed(0));  // first restore must not revive it
  core_fail.end(0, 1.0);
  EXPECT_FALSE(platform.core_failed(0));
}

TEST(PlatformAdapter, FreqCapTracksTheTightestActiveCap) {
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 2), 1);
  Injector inj;
  bind_platform(inj, platform);
  const auto& cap = inj.surface(1);
  EXPECT_EQ(cap.kind, FaultKind::FreqCap);

  cap.begin(0, 3.0);
  EXPECT_EQ(platform.freq_cap(), 3u);
  cap.begin(0, 1.0);  // tighter cap arrives while the first is active
  EXPECT_EQ(platform.freq_cap(), 1u);
  // The tightest cap restores first: relax to the loosest still-active
  // cap, not all the way and not stuck at the old tightest level.
  cap.end(0, 1.0);
  EXPECT_EQ(platform.freq_cap(), 3u);
  cap.end(0, 3.0);
  EXPECT_EQ(platform.freq_cap(), static_cast<std::size_t>(-1));
}

TEST(CameraAdapter, CrashDropoutAndBlurCompose) {
  auto net = svc::Network::clustered_layout(svc::NetworkParams{});
  Injector inj;
  bind_cameras(inj, net);
  ASSERT_EQ(inj.surfaces(), 3u);
  const auto& crash = inj.surface(0);
  const auto& dropout = inj.surface(1);
  const auto& blur = inj.surface(2);
  EXPECT_EQ(crash.kind, FaultKind::NodeCrash);
  EXPECT_EQ(dropout.kind, FaultKind::SensorDropout);
  EXPECT_EQ(blur.kind, FaultKind::SensorBlur);

  crash.begin(0, 1.0);
  EXPECT_TRUE(net.camera_failed(0));
  crash.end(0, 1.0);
  EXPECT_FALSE(net.camera_failed(0));

  // Blur scales visibility by 1 - magnitude...
  blur.begin(1, 0.75);
  EXPECT_DOUBLE_EQ(net.sensor_blur(1), 0.25);
  // ...dropout overrides any blur while it is active...
  dropout.begin(1, 1.0);
  EXPECT_DOUBLE_EQ(net.sensor_blur(1), 0.0);
  dropout.end(1, 1.0);
  // ...and the surviving blur resumes when the dropout ends.
  EXPECT_DOUBLE_EQ(net.sensor_blur(1), 0.25);
  blur.end(1, 0.75);
  EXPECT_DOUBLE_EQ(net.sensor_blur(1), 1.0);
}

TEST(ClusterAdapter, PreemptionAndLatencySpikes) {
  cloud::Cluster cluster{cloud::Cluster::Params{}};
  Injector inj;
  bind_cluster(inj, cluster);
  ASSERT_EQ(inj.surfaces(), 2u);
  const auto& preempt = inj.surface(0);
  const auto& spike = inj.surface(1);

  preempt.begin(3, 1.0);
  EXPECT_TRUE(cluster.preempted(3));
  preempt.begin(3, 1.0);
  preempt.end(3, 1.0);
  EXPECT_TRUE(cluster.preempted(3));  // refcounted like every transient
  preempt.end(3, 1.0);
  EXPECT_FALSE(cluster.preempted(3));

  spike.begin(0, 4.0);  // capacity divided by the magnitude
  EXPECT_DOUBLE_EQ(cluster.capacity_factor(), 0.25);
  spike.begin(0, 2.0);  // milder overlapping spike must not relax the cut
  EXPECT_DOUBLE_EQ(cluster.capacity_factor(), 0.25);
  spike.end(0, 4.0);  // strongest ends first: relax to the remaining spike
  EXPECT_DOUBLE_EQ(cluster.capacity_factor(), 0.5);
  spike.end(0, 2.0);
  EXPECT_DOUBLE_EQ(cluster.capacity_factor(), 1.0);

  spike.begin(0, 0.5);  // magnitude <= 1 is held but cannot boost capacity
  EXPECT_DOUBLE_EQ(cluster.capacity_factor(), 1.0);
  spike.end(0, 0.5);
  EXPECT_DOUBLE_EQ(cluster.capacity_factor(), 1.0);
}

TEST(PacketNetworkAdapter, PartitionAndLinkLossShareRefCounts) {
  const auto topo = cpn::Topology::grid(3, 3, 0, 7);
  cpn::PacketNetwork net(topo, cpn::PacketNetwork::Params{});
  Injector inj;
  bind_packet_network(inj, net);
  ASSERT_EQ(inj.surfaces(), 3u);
  const auto& loss = inj.surface(0);
  const auto& partition = inj.surface(1);
  EXPECT_EQ(loss.kind, FaultKind::LinkLoss);
  EXPECT_EQ(partition.kind, FaultKind::Partition);

  // Find a link incident to node 0 to set up the overlap.
  std::size_t incident_link = topo.links().size();
  for (std::size_t l = 0; l < topo.links().size(); ++l) {
    if (topo.links()[l].a == 0 || topo.links()[l].b == 0) {
      incident_link = l;
      break;
    }
  }
  ASSERT_LT(incident_link, topo.links().size());

  loss.begin(incident_link, 1.0);
  EXPECT_TRUE(net.link_dead(incident_link));
  partition.begin(0, 1.0);  // node 0 isolated: all incident links down
  for (std::size_t l = 0; l < topo.links().size(); ++l) {
    if (topo.links()[l].a == 0 || topo.links()[l].b == 0) {
      EXPECT_TRUE(net.link_dead(l)) << "link " << l;
    }
  }
  // The partition ends, but the direct link-loss still holds its link.
  partition.end(0, 1.0);
  EXPECT_TRUE(net.link_dead(incident_link));
  loss.end(incident_link, 1.0);
  EXPECT_FALSE(net.link_dead(incident_link));
}

TEST(PacketNetworkAdapter, ReorderScalesLatencyAndRestores) {
  const auto topo = cpn::Topology::grid(3, 3, 0, 7);
  cpn::PacketNetwork net(topo, cpn::PacketNetwork::Params{});
  Injector inj;
  bind_packet_network(inj, net);
  const auto& reorder = inj.surface(2);
  EXPECT_EQ(reorder.kind, FaultKind::LinkReorder);

  reorder.begin(2, 5.0);
  EXPECT_DOUBLE_EQ(net.link_slowdown(2), 5.0);
  reorder.begin(2, 3.0);
  reorder.end(2, 5.0);
  EXPECT_DOUBLE_EQ(net.link_slowdown(2), 3.0);  // latest factor, still held
  reorder.end(2, 3.0);
  EXPECT_DOUBLE_EQ(net.link_slowdown(2), 1.0);
}

TEST(ExchangeAdapter, GatesTheRuntime) {
  sim::Engine engine;
  core::AgentRuntime rt(engine);
  Injector inj;
  bind_exchange(inj, rt);
  ASSERT_EQ(inj.surfaces(), 1u);
  const auto& gate = inj.surface(0);
  EXPECT_EQ(gate.kind, FaultKind::ExchangeDrop);

  EXPECT_FALSE(rt.exchange_blocked());
  gate.begin(0, 1.0);
  EXPECT_TRUE(rt.exchange_blocked());
  gate.begin(0, 1.0);
  gate.end(0, 1.0);
  EXPECT_TRUE(rt.exchange_blocked());  // second drop still in force
  gate.end(0, 1.0);
  EXPECT_FALSE(rt.exchange_blocked());
}

TEST(FeedAgent, MirrorsInjectorStateIntoTheKnowledgeBase) {
  sim::Engine engine;
  Injector inj;
  // A one-unit surface with no substrate behind it: feed_agent only needs
  // the injector's events.
  inj.add_surface({FaultKind::LinkLoss, "test.link", 1,
                   [](std::size_t, double) {}, [](std::size_t, double) {}});
  core::SelfAwareAgent agent("watcher");
  feed_agent(inj, agent);
  inj.bind(engine, FaultPlan::parse("link-loss:rate=0.2,dur=5,end=50;seed=1"));
  engine.run_until(200.0);

  ASSERT_GT(inj.injected(), 0u);
  const auto& kb = agent.knowledge();
  EXPECT_DOUBLE_EQ(kb.number("fault.count"),
                   static_cast<double>(inj.injected()));
  // Long after the window every transient expired: active mirrors zero.
  EXPECT_DOUBLE_EQ(kb.number("fault.active"), 0.0);
  const auto item = kb.latest("fault.active");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->source, "fault");
}

}  // namespace
}  // namespace sa::fault
