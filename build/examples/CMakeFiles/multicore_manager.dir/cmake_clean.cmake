file(REMOVE_RECURSE
  "CMakeFiles/multicore_manager.dir/multicore_manager.cpp.o"
  "CMakeFiles/multicore_manager.dir/multicore_manager.cpp.o.d"
  "multicore_manager"
  "multicore_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
