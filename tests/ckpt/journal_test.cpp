// Control-stream record/replay (ctest -L ckpt).
//
// The journal has three interchangeable representations — structured
// ControlCommand, canonical form body, checkpoint section — and all three
// must round-trip bit-exactly (doubles via %.17g). Replaying a journal
// against a rebuilt world must schedule each command at its original
// (t, order) and produce the same injector trajectory a live operator
// produced; replay events are themselves tagged so a replaying world can
// be checkpointed again.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/state.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/telemetry.hpp"

namespace sa::ckpt {
namespace {

ControlCommand make_inject() {
  ControlCommand cmd;
  cmd.kind = ControlCommand::Kind::kInject;
  cmd.fault_kind = fault::FaultKind::LinkLoss;
  cmd.unit = 3;
  cmd.magnitude = 0.1 + 0.2;  // not exactly representable as a literal
  cmd.duration = 4.5;
  return cmd;
}

ControlCommand make_histogram() {
  ControlCommand cmd;
  cmd.kind = ControlCommand::Kind::kHistogram;
  cmd.category = "serve latency (ms) 100%";  // needs form escaping
  cmd.lo = -0.25;
  cmd.hi = 12.5;
  cmd.bins = 40;
  return cmd;
}

TEST(Journal, FormRoundTripsBothKinds) {
  for (const ControlCommand& cmd : {make_inject(), make_histogram()}) {
    const std::string form = cmd.to_form();
    ControlCommand back;
    ASSERT_TRUE(ControlCommand::parse_form(form, back).ok()) << form;
    EXPECT_EQ(back.kind, cmd.kind);
    if (cmd.kind == ControlCommand::Kind::kInject) {
      EXPECT_EQ(back.fault_kind, cmd.fault_kind);
      EXPECT_EQ(back.unit, cmd.unit);
      EXPECT_EQ(back.magnitude, cmd.magnitude);  // %.17g: exact
      EXPECT_EQ(back.duration, cmd.duration);
    } else {
      EXPECT_EQ(back.category, cmd.category);  // escaping round-trips
      EXPECT_EQ(back.lo, cmd.lo);
      EXPECT_EQ(back.hi, cmd.hi);
      EXPECT_EQ(back.bins, cmd.bins);
    }
    // Canonical: re-rendering is a fixed point.
    EXPECT_EQ(back.to_form(), form);
  }
}

TEST(Journal, MalformedFormsAreTyped) {
  ControlCommand out;
  EXPECT_EQ(ControlCommand::parse_form("", out).code, Errc::kMalformed);
  EXPECT_EQ(ControlCommand::parse_form("cmd=pause", out).code,
            Errc::kMalformed);
  EXPECT_EQ(
      ControlCommand::parse_form("cmd=inject&kind=not-a-fault", out).code,
      Errc::kMalformed);
  EXPECT_EQ(ControlCommand::parse_form("cmd=histogram&lo=0&hi=1&bins=4", out)
                .code,
            Errc::kMalformed);  // no category
  EXPECT_EQ(ControlCommand::parse_form(
                "cmd=histogram&category=x&lo=2&hi=1&bins=4", out)
                .code,
            Errc::kMalformed);  // lo >= hi
  EXPECT_EQ(ControlCommand::parse_form(
                "cmd=histogram&category=x&lo=0&hi=1&bins=0", out)
                .code,
            Errc::kMalformed);  // zero bins
}

TEST(Journal, SpecRoundTripsAndRejectsGarbage) {
  std::vector<JournalEntry> in;
  in.push_back(JournalEntry{0.7, make_inject()});
  in.push_back(JournalEntry{123.456789012345678, make_histogram()});

  const std::string spec = journal_spec(in);
  std::vector<JournalEntry> back;
  ASSERT_TRUE(parse_journal_spec(spec, back).ok()) << spec;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].t, in[0].t);
  EXPECT_EQ(back[1].t, in[1].t);  // %.17g preserves every bit
  EXPECT_EQ(back[0].cmd.to_form(), in[0].cmd.to_form());
  EXPECT_EQ(back[1].cmd.to_form(), in[1].cmd.to_form());
  EXPECT_EQ(journal_spec(back), spec);

  // Hand-written specs: whitespace and empty items are fine.
  ASSERT_TRUE(parse_journal_spec(
                  " ; 1.5 cmd=inject&kind=link-loss&unit=0&mag=1&dur=2 ;;",
                  back)
                  .ok());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].t, 1.5);

  // Garbage: typed errors, never a partial parse.
  EXPECT_EQ(parse_journal_spec("no-timestamp-here", back).code,
            Errc::kMalformed);
  EXPECT_EQ(parse_journal_spec("xyz cmd=inject&kind=link-loss", back).code,
            Errc::kMalformed);
  EXPECT_EQ(parse_journal_spec("-1 cmd=inject&kind=link-loss", back).code,
            Errc::kMalformed);
  EXPECT_EQ(parse_journal_spec("2.0 cmd=unknown", back).code,
            Errc::kMalformed);
}

TEST(Journal, CheckpointSectionRoundTrips) {
  std::vector<JournalEntry> in;
  in.push_back(JournalEntry{3.25, make_inject()});
  in.push_back(JournalEntry{9.75, make_histogram()});

  Buffer b;
  save_journal(in, b);
  Cursor c(b.data());
  std::vector<JournalEntry> back;
  ASSERT_TRUE(load_journal(c, back).ok());
  ASSERT_TRUE(c.at_end());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].t, 3.25);
  EXPECT_EQ(back[1].cmd.category, in[1].cmd.category);

  // Re-save byte-matches (the attestation property).
  Buffer again;
  save_journal(back, again);
  EXPECT_EQ(again.data(), b.data());

  // Truncated payload: typed, not trusted.
  Cursor short_c(std::string_view(b.data()).substr(0, b.data().size() - 3));
  EXPECT_EQ(load_journal(short_c, back).code, Errc::kMalformed);
}

TEST(Journal, ControlJournalSnapshotsConcurrentlyAppendedEntries) {
  ControlJournal j;
  EXPECT_EQ(j.size(), 0u);
  j.record(1.0, make_inject());
  j.record(2.0, make_histogram());
  const auto snap = j.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].t, 1.0);
  EXPECT_EQ(snap[1].cmd.kind, ControlCommand::Kind::kHistogram);

  // Pre-seeding a resumed run keeps later snapshots cumulative.
  ControlJournal resumed;
  resumed.set_entries(snap);
  resumed.record(3.0, make_inject());
  EXPECT_EQ(resumed.size(), 3u);
  EXPECT_EQ(resumed.snapshot()[2].t, 3.0);
}

/// A begin/end counting surface (as in injector_test).
struct CountingSurface {
  std::vector<int> depth;
  explicit CountingSurface(std::size_t units) : depth(units, 0) {}
  fault::Injector::Surface as_surface() {
    fault::Injector::Surface s;
    s.kind = fault::FaultKind::LinkLoss;
    s.name = "test.link";
    s.units = depth.size();
    s.begin = [this](std::size_t unit, double) { ++depth[unit]; };
    s.end = [this](std::size_t unit, double) { --depth[unit]; };
    return s;
  }
};

TEST(Journal, ReplayMatchesLiveInjectionTrajectory) {
  std::vector<JournalEntry> entries;
  {
    JournalEntry e;
    e.t = 5.0;
    e.cmd = make_inject();
    e.cmd.unit = 1;
    e.cmd.duration = 4.0;
    entries.push_back(e);
  }

  // Live: an operator fires inject_now at t=5 (as the bridge's drained
  // mailbox does, at order 1000).
  sim::Engine live;
  fault::Injector live_inj;
  CountingSurface live_surface(4);
  live_inj.add_surface(live_surface.as_surface());
  const ControlCommand cmd = entries[0].cmd;
  live.at_tagged(
      sim::event_tag("test.live"), 5.0,
      [&live, &live_inj, cmd] {
        live_inj.inject_now(live, cmd.fault_kind, cmd.unit, cmd.magnitude,
                            cmd.duration);
      },
      1000);
  live.run_until(20.0);

  // Replay: the recorded journal against a rebuilt world.
  sim::Engine replay;
  fault::Injector replay_inj;
  CountingSurface replay_surface(4);
  replay_inj.add_surface(replay_surface.as_surface());
  schedule_replay(replay, entries, /*order=*/1000, &replay_inj, nullptr);
  replay.run_until(20.0);

  const auto got = replay_inj.records();
  const auto want = live_inj.records();
  ASSERT_EQ(got.size(), want.size());
  ASSERT_FALSE(want.empty());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].t, want[i].t) << i;
    EXPECT_EQ(got[i].unit, want[i].unit) << i;
    EXPECT_EQ(got[i].until, want[i].until) << i;
    EXPECT_EQ(got[i].begin, want[i].begin) << i;
  }
  EXPECT_EQ(replay_inj.injected(), 1u);
  EXPECT_EQ(replay_inj.restored(), 1u);
  EXPECT_EQ(replay_surface.depth[1], 0);  // fault began and ended
}

TEST(Journal, ReplayEventsAreTaggedSoTheWorldStaysCheckpointable) {
  std::vector<JournalEntry> entries;
  entries.push_back(JournalEntry{8.0, make_inject()});
  sim::TelemetryBus bus;
  JournalEntry hist;
  hist.t = 9.0;
  hist.cmd = make_histogram();
  entries.push_back(hist);

  sim::Engine e;
  fault::Injector inj;
  CountingSurface surface(4);
  inj.add_surface(surface.as_surface());
  schedule_replay(e, entries, /*order=*/1000, &inj, &bus);

  // Pending replay events export cleanly (they are tagged by position).
  Buffer snap;
  EXPECT_TRUE(save_engine(e, snap).ok());

  e.run_until(10.0);
  const auto id = bus.intern_category(entries[1].cmd.category);
  EXPECT_NE(bus.histogram(id), nullptr);  // histogram command applied

  // Entries whose target is absent are skipped, same as the bridge.
  sim::Engine bare;
  schedule_replay(bare, entries, 1000, nullptr, nullptr);
  Buffer empty_snap;
  EXPECT_TRUE(save_engine(bare, empty_snap).ok());
}

}  // namespace
}  // namespace sa::ckpt
