// E11 — run-time goal change (paper, Sections I & IV).
//
// "Increasingly, those interacting with or impacted by systems are not
// well-known until after deployment" — stakeholder priorities shift while
// the system runs. Because the framework represents goals as an explicit,
// mutable GoalModel, a self-aware system responds to a re-weighting
// *without re-learning anything*: its self-model predictions are simply
// re-scored under the new preferences. A policy that had to learn action
// values from scalar rewards must instead re-learn, and a static
// configuration never moves.
//
// Scenario: steady multicore workload; at epoch 600 of 1200 the
// stakeholder flips from performance-first (latency weight 3) to
// energy-first (power weight 3).
//
// Table 1: the measured per-configuration trade-off space with its Pareto
//          front, and the point each goal regime selects (the preferred
//          point moves along an unchanged frontier).
// Table 2: utility around the change for static / value-learning /
//          model-predictive managers, plus epochs-to-recover.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/pareto.hpp"
#include "core/policy.hpp"
#include "exp/harness.hpp"
#include "learn/bandit.hpp"
#include "multicore/manager.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr double kRate = 25.0, kWork = 0.15, kDeadline = 0.8;
constexpr int kEpochs = 1200;
constexpr int kChangeAt = 600;
const std::vector<std::uint64_t> kSeeds{111, 112, 113};

void set_regime(core::GoalModel& goals, bool energy_first) {
  goals.set_weight("latency", energy_first ? 0.5 : 3.0);
  goals.set_weight("power", energy_first ? 3.0 : 0.5);
}

/// Measures each configuration's steady-state metrics on this workload.
std::vector<core::ParetoPoint> measure_configs() {
  Platform probe(PlatformConfig::big_little(2, 4), 1);
  const auto actions = default_actions(probe);
  std::vector<core::ParetoPoint> points;
  for (std::size_t a = 0; a < actions.size(); ++a) {
    Platform p(PlatformConfig::big_little(2, 4), 77);
    p.set_all_freq(actions[a].freq_level);
    p.set_mapping(actions[a].mapping);
    p.set_workload(kRate, kWork, kDeadline);
    p.run_for(10.0);
    p.harvest();  // discard warm-up
    p.run_for(20.0);
    const auto s = p.harvest();
    points.push_back({actions[a].name,
                      {{"throughput", s.throughput},
                       {"latency", s.p95_latency},
                       {"power", s.mean_power},
                       {"queue", s.mean_queue}}});
  }
  return points;
}

enum class Kind { Static, ValueLearning, ModelPredictive };

exp::TaskOutput run(Kind kind, std::uint64_t seed, double post_target) {
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  platform.set_workload(kRate, kWork, kDeadline);
  Manager::Params p;
  p.variant = kind == Kind::Static ? Manager::Variant::Static
                                   : Manager::Variant::SelfAware;
  p.seed = seed;
  Manager mgr(platform, p);
  if (kind == Kind::ValueLearning) {
    // Same sensing, but decisions learned from scalar utility rewards
    // instead of predicted from the self-model.
    const std::size_t arms = mgr.actions().size();
    mgr.agent().set_policy(std::make_unique<core::BanditPolicy>(
        std::make_unique<learn::DiscountedUcb>(arms, 0.99)));
  }
  set_regime(mgr.agent().goals(), /*energy_first=*/false);

  sim::RunningStats before, after;
  int recovery_epochs = -1;  // epochs after the change to reach 90% of
                             // the post-change steady level
  for (int e = 0; e < kEpochs; ++e) {
    if (e == kChangeAt) {
      set_regime(mgr.agent().goals(), /*energy_first=*/true);
    }
    const double u = mgr.run_epoch();
    (e < kChangeAt ? before : after).add(u);
    if (e >= kChangeAt && recovery_epochs < 0 && u >= 0.9 * post_target) {
      recovery_epochs = e - kChangeAt;
    }
  }
  return {{{"before", before.mean()},
           {"after", after.mean()},
           {"recovery_epochs",
            recovery_epochs < 0 ? static_cast<double>(kEpochs)
                                : static_cast<double>(recovery_epochs)}}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e11_goalchange", argc, argv);
  std::cout << "E11: the stakeholder flips from performance-first to "
               "energy-first at epoch " << kChangeAt << " of " << kEpochs
            << " (steady workload, " << h.seeds_for(kSeeds).size()
            << " seeds).\n\n";

  // ---- Table 1: the trade-off space itself --------------------------------
  // Deterministic (fixed seed 77) and cheap, so it stays a serial pre-pass
  // outside the grid.
  const auto points = measure_configs();
  core::GoalModel goals;
  goals.add_objective({"throughput", core::utility::rising(0.0, 45.0), 1.0});
  goals.add_objective(
      {"latency", core::utility::falling(0.0, 2.0), 3.0});
  goals.add_objective({"power", core::utility::falling(1.0, 10.0), 0.5});
  goals.add_objective({"queue", core::utility::falling(0.0, 40.0), 1.0});

  const auto front = core::pareto_front(goals, points);
  set_regime(goals, false);
  const auto perf_pick = core::utility_argmax(goals, points);
  set_regime(goals, true);
  const auto energy_pick = core::utility_argmax(goals, points);

  sim::Table t1("E11.1  configuration trade-off space (steady workload)",
                {"config", "thr", "p95", "power", "pareto", "chosen_by"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool efficient =
        std::find(front.begin(), front.end(), i) != front.end();
    std::string chosen;
    if (i == perf_pick) chosen += "perf-first ";
    if (i == energy_pick) chosen += "energy-first";
    t1.add_row({points[i].label, points[i].metrics.at("throughput"),
                points[i].metrics.at("latency"),
                points[i].metrics.at("power"),
                std::string(efficient ? "yes" : "-"), chosen});
  }
  t1.print(std::cout);
  std::cout << "Re-weighting moves the preferred point ("
            << points[perf_pick].label << " -> "
            << points[energy_pick].label
            << ") along an unchanged Pareto front.\n\n";

  // ---- Table 2: how the managers cope with the change ---------------------
  // Post-change achievable utility: the energy-first score of the point an
  // informed manager would run.
  const double post_target = [&] {
    set_regime(goals, true);
    return goals.utility(points[energy_pick].metrics);
  }();

  const std::vector<std::pair<std::string, Kind>> rows{
      {"static (design-time)", Kind::Static},
      {"self-aware, value-learning", Kind::ValueLearning},
      {"self-aware, model-predictive", Kind::ModelPredictive}};

  exp::Grid g;
  g.name = "e11";
  for (const auto& [name, kind] : rows) g.variants.push_back(name);
  g.seeds = kSeeds;
  g.task = [&rows, post_target](const exp::TaskContext& ctx) {
    return run(rows[ctx.variant].second, ctx.seed, post_target);
  };
  const auto res = h.run(std::move(g));

  sim::Table t2("E11.2  utility before/after the goal change",
                {"manager", "before", "after", "recovery_epochs"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t2.add_row({res.variants[v], res.mean(v, "before"),
                res.mean(v, "after"), res.mean(v, "recovery_epochs")});
  }
  t2.print(std::cout);
  return h.finish();
}
