// Typed telemetry bus.
//
// Replaces the old string-triple Trace: substrates and awareness processes
// emit (time, category, subject, value, detail) events through one
// TelemetryBus per scenario. Categories and subjects are interned once to
// small integer ids, so the hot path is O(1): bump a per-category counter,
// fold the value into that category's running stats (and optional
// histogram), and hand the event to each registered sink. The disabled
// path costs exactly one branch and performs no heap allocation — the
// telemetry test asserts this — and defining SA_TELEMETRY_OFF compiles
// record() out entirely.
//
// Sinks are non-owning observers. RingBufferSink retains the last N events
// for self-explanation queries (by_category / by_subject, in emission
// order); sa::exp provides a JSONL file sink built on the deterministic
// JSON writer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace sa::sim {

/// Interned id of an event category ("decision", "observation", ...).
using CategoryId = std::uint32_t;
/// Interned id of an emitting component ("autoscaler", "cpn.network", ...).
using SubjectId = std::uint32_t;

/// One telemetry event, as seen by sinks during dispatch. `detail` is a
/// view into caller storage and is only valid for the duration of
/// on_event(); sinks that retain events must copy it.
struct TelemetryEvent {
  double t = 0.0;
  CategoryId category = 0;
  SubjectId subject = 0;
  double value = 0.0;
  std::string_view detail;
};

/// Observer interface. Implementations must not re-enter the bus.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_event(const TelemetryEvent& ev) = 0;
};

class TelemetryBus {
 public:
  // The three canonical categories every substrate emits; interned by the
  // constructor so emitters can use them without a lookup.
  static constexpr CategoryId kDecision = 0;
  static constexpr CategoryId kObservation = 1;
  static constexpr CategoryId kFailure = 2;

  explicit TelemetryBus(bool enabled = true);

  /// Returns the id for `name`, interning it on first use. O(categories);
  /// call once at wiring time, not per event.
  CategoryId intern_category(std::string_view name);
  SubjectId intern_subject(std::string_view name);
  [[nodiscard]] const std::string& category_name(CategoryId c) const {
    return category_names_.at(c);
  }
  [[nodiscard]] const std::string& subject_name(SubjectId s) const {
    return subject_names_.at(s);
  }
  [[nodiscard]] std::size_t categories() const noexcept {
    return category_names_.size();
  }
  [[nodiscard]] std::size_t subjects() const noexcept {
    return subject_names_.size();
  }

  /// Registers a non-owning sink; it must outlive the bus (or be removed
  /// by clear_sinks()). Events are dispatched in registration order.
  void add_sink(TelemetrySink* sink) { sinks_.push_back(sink); }
  void clear_sinks() { sinks_.clear(); }

  [[nodiscard]] bool enabled() const noexcept {
#ifdef SA_TELEMETRY_OFF
    return false;
#else
    return enabled_;
#endif
  }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  /// Records one event. Disabled: one branch, no allocation. Enabled:
  /// counter bump + stats fold + sink dispatch, no allocation in the bus
  /// itself (sinks may allocate to retain the event).
  void record(double t, CategoryId category, SubjectId subject,
              double value = 0.0, std::string_view detail = {}) {
#ifdef SA_TELEMETRY_OFF
    (void)t, (void)category, (void)subject, (void)value, (void)detail;
#else
    if (!enabled_) return;
    record_impl(t, category, subject, value, detail);
#endif
  }

  /// Events recorded under `category` so far.
  [[nodiscard]] std::uint64_t count(CategoryId category) const {
    return category < per_category_.size() ? per_category_[category].count
                                           : 0;
  }
  /// Running stats over the `value` field of `category`'s events.
  [[nodiscard]] const RunningStats& values(CategoryId category) const {
    return per_category_.at(category).values;
  }
  /// Opts `category` into a fixed-range histogram over its values (e.g.
  /// latencies). Resets any previous histogram for the category.
  void enable_histogram(CategoryId category, double lo, double hi,
                        std::size_t bins);
  /// The category's histogram, or nullptr if none was enabled.
  [[nodiscard]] const Histogram* histogram(CategoryId category) const {
    return category < per_category_.size()
               ? per_category_[category].hist.get()
               : nullptr;
  }
  /// Total events recorded across all categories.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  struct PerCategory {
    std::uint64_t count = 0;
    RunningStats values;
    std::unique_ptr<Histogram> hist;
  };

  void record_impl(double t, CategoryId category, SubjectId subject,
                   double value, std::string_view detail);

  bool enabled_;
  std::vector<std::string> category_names_;
  std::vector<std::string> subject_names_;
  std::vector<PerCategory> per_category_;
  std::vector<TelemetrySink*> sinks_;
  std::uint64_t total_ = 0;
};

/// Bounded in-memory sink: retains the most recent `capacity` events (with
/// their details copied) and answers the query API the old Trace offered —
/// by_category / by_subject in emission order.
class RingBufferSink : public TelemetrySink {
 public:
  struct Rec {
    double t = 0.0;
    CategoryId category = 0;
    SubjectId subject = 0;
    double value = 0.0;
    std::string detail;
  };

  explicit RingBufferSink(std::size_t capacity = 4096)
      : capacity_(capacity ? capacity : 1) {}

  void on_event(const TelemetryEvent& ev) override;

  /// Events currently retained (≤ capacity).
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Total events observed, including evicted ones.
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  /// i-th retained event, oldest first.
  [[nodiscard]] const Rec& at(std::size_t i) const;
  /// Retained events with the given category, in emission order.
  [[nodiscard]] std::vector<const Rec*> by_category(CategoryId c) const;
  /// Retained events emitted by the given subject, in emission order.
  [[nodiscard]] std::vector<const Rec*> by_subject(SubjectId s) const;
  void clear();

 private:
  std::size_t capacity_;
  std::vector<Rec> ring_;   ///< circular once full
  std::size_t head_ = 0;    ///< index of the oldest retained event
  std::uint64_t seen_ = 0;
};

/// Thread-safe subscriber hook: fans bus events out to concurrently
/// consumed bounded queues (the sa::serve SSE seam).
///
/// The bus itself is single-threaded — sinks run on the sim thread, and
/// add_sink() is wiring-time only. A FanoutSink registered like any other
/// sink extends that contract across threads: server threads subscribe()
/// and drain their own Subscription, while the sim thread's on_event()
/// *never blocks* — every lock on the hot path is a try_lock, and an event
/// that cannot be delivered (queue full, or a consumer momentarily holding
/// a lock) is counted as dropped rather than waited for. Trajectories are
/// therefore identical whether or not anyone is subscribed; only the
/// drop counters differ.
class FanoutSink : public TelemetrySink {
 public:
  /// One consumer's bounded queue. Obtain via subscribe(); drain from any
  /// single consumer thread.
  class Subscription {
   public:
    explicit Subscription(std::size_t capacity)
        : capacity_(capacity ? capacity : 1) {}

    /// Moves out everything queued so far (possibly empty), waiting up to
    /// `wait_ms` milliseconds for the first event. wait_ms == 0 polls.
    [[nodiscard]] std::vector<RingBufferSink::Rec> drain(long wait_ms = 0);

    /// Events dropped because this queue was full or momentarily locked
    /// by its consumer. Monotone; exposed to scrapers.
    [[nodiscard]] std::uint64_t dropped() const noexcept {
      return dropped_.load(std::memory_order_relaxed);
    }
    /// Events successfully enqueued so far.
    [[nodiscard]] std::uint64_t delivered() const noexcept {
      return delivered_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

   private:
    friend class FanoutSink;
    /// Sim-thread side: try_lock push; drops (with counter) on contention
    /// or overflow. Never blocks. Returns whether the event was enqueued
    /// so the sink can aggregate overflow drops across subscribers.
    bool offer(const TelemetryEvent& ev);

    std::size_t capacity_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<RingBufferSink::Rec> queue_;  ///< guarded by mu_
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> delivered_{0};
  };

  explicit FanoutSink(std::size_t queue_capacity = 1024)
      : queue_capacity_(queue_capacity) {}

  /// Registers a new consumer queue. Thread-safe.
  [[nodiscard]] std::shared_ptr<Subscription> subscribe();
  /// Detaches a consumer queue; the sim thread stops delivering to it.
  void unsubscribe(const std::shared_ptr<Subscription>& sub);
  [[nodiscard]] std::size_t subscribers() const;

  /// Sim-thread dispatch. Never blocks: if the subscriber list is being
  /// mutated right now, the event is dropped for all subscribers and
  /// counted in dropped_contended().
  void on_event(const TelemetryEvent& ev) override;

  /// Events dropped because the subscriber list was locked mid-dispatch.
  [[nodiscard]] std::uint64_t dropped_contended() const noexcept {
    return dropped_contended_.load(std::memory_order_relaxed);
  }
  /// Per-subscriber delivery failures (queue full, or the consumer held
  /// its queue lock at event time), summed across all subscribers
  /// including already-departed ones — unlike Subscription::dropped(),
  /// this survives unsubscribe, so scrapers get a monotone counter.
  [[nodiscard]] std::uint64_t dropped_overflow() const noexcept {
    return dropped_overflow_.load(std::memory_order_relaxed);
  }
  /// Events offered to at least one subscriber (0 while nobody listens:
  /// an unobserved bus pays one try_lock and no allocation).
  [[nodiscard]] std::uint64_t offered() const noexcept {
    return offered_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t queue_capacity_;
  mutable std::mutex mu_;  ///< guards subs_
  std::vector<std::shared_ptr<Subscription>> subs_;
  std::atomic<std::uint64_t> dropped_contended_{0};
  std::atomic<std::uint64_t> dropped_overflow_{0};
  std::atomic<std::uint64_t> offered_{0};
};

}  // namespace sa::sim
