// Inter-shard mailboxes: the deterministic transport for events that
// cross a shard boundary.
//
// Under the conservative protocol in shard::ShardedWorld, a shard may
// produce values addressed to coordinator-owned state (today: camera
// districts posting tracked-object report counts toward the CPN coupling
// window). Such a value is recorded as a RemoteEvent in the producing
// shard's Outbox. Outboxes are strictly single-producer (the owning shard
// thread, between two barriers) / single-consumer (the coordinator, only
// while every shard is barrier-paused), so the barrier's happens-before
// edge is the only synchronisation they need — no locks or atomics touch
// the hot path.
//
// Determinism: the coordinator merges all drained outboxes with
// merge_remote(), which sorts by (t, order, origin, seq) — time, then the
// engine-wide order convention (dynamics 0 < control 1 < exchange 2),
// then the *global* origin unit index (not the shard index, so the merged
// order is independent of how units were packed onto shards), then the
// per-origin sequence number. This is exactly the order in which the
// single-engine world would have executed the producing events, so
// applying the merged stream reproduces the monolithic trajectory byte
// for byte regardless of shard count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sa::shard {

/// One cross-shard value in flight. `origin` is the producing unit's
/// global index (e.g. the camera district number) — the merge key that
/// keeps ordering shard-count-invariant. `seq` increases per origin, so
/// two posts from the same unit keep their production order.
struct RemoteEvent {
  double t = 0.0;        ///< sim time the producing event executed at
  int order = 0;         ///< engine order of the producing event
  std::uint64_t origin = 0;  ///< global unit index of the producer
  std::uint64_t seq = 0;     ///< per-origin production counter
  std::size_t district = 0;  ///< payload: destination camera district
  double amount = 0.0;       ///< payload: report count to accumulate
};

/// The canonical cross-shard merge order (see file comment).
inline bool remote_before(const RemoteEvent& a, const RemoteEvent& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.order != b.order) return a.order < b.order;
  if (a.origin != b.origin) return a.origin < b.origin;
  return a.seq < b.seq;
}

/// Per-shard outgoing queue. post() is called only by the owning shard
/// thread; drain() only by the coordinator while that thread is parked at
/// a barrier.
class Outbox {
 public:
  void post(double t, int order, std::uint64_t origin, std::size_t district,
            double amount) {
    events_.push_back(
        RemoteEvent{t, order, origin, next_seq_++, district, amount});
  }

  /// Moves out everything posted since the last drain.
  std::vector<RemoteEvent> drain() {
    std::vector<RemoteEvent> out;
    out.swap(events_);
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<RemoteEvent> events_;
  std::uint64_t next_seq_ = 0;
};

/// Merges drained outboxes into the canonical (t, order, origin, seq)
/// dispatch order. Stable by construction: the key is a total order over
/// distinct origins, and seq totals each origin's stream.
inline std::vector<RemoteEvent> merge_remote(
    std::vector<std::vector<RemoteEvent>> drained) {
  std::vector<RemoteEvent> all;
  std::size_t total = 0;
  for (const auto& v : drained) total += v.size();
  all.reserve(total);
  for (auto& v : drained) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end(), remote_before);
  return all;
}

}  // namespace sa::shard
