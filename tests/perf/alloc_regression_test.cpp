// Steady-state allocation regression tests for the data-oriented hot
// paths: once an Engine's slot arena and heap have warmed up, scheduling
// and dispatching events must not touch the heap; once a KnowledgeBase
// key exists, reads (number/confidence/fresh/contains/history) and
// ring-overwrite writes must not either. These contracts are what the
// pooled-kernel/interned-store refactor bought — a regression here is a
// performance bug even while every behavioural test still passes.
//
// This binary owns its own global operator-new counter (one counter per
// binary is the rule; telemetry_tests owns the observability one), so no
// other suites may be linked into it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <variant>

#include "core/knowledge.hpp"
#include "sim/engine.hpp"

// Global allocation counter: every operator new bumps it, so a test can
// assert that a code region performs no heap allocation at all.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

TEST(EngineAlloc, SteadyStateOneShotCycleIsAllocFree) {
  sa::sim::Engine eng;
  // Warm up: first at() grows the arena and heap; the slot is freed on
  // dispatch and must be reused by every later cycle.
  double t = 0.0;
  for (int i = 0; i < 64; ++i) {
    t += 1.0;
    eng.at(t, [] {});
    ASSERT_TRUE(eng.step());
  }
  const auto before = allocs();
  for (int i = 0; i < 1000; ++i) {
    t += 1.0;
    eng.at(t, [] {});  // captureless lambda: fits std::function's SOO
    ASSERT_TRUE(eng.step());
  }
  EXPECT_EQ(allocs(), before) << "one-shot schedule+dispatch allocated";
}

TEST(EngineAlloc, SteadyStatePeriodicFiringIsAllocFree) {
  sa::sim::Engine eng;
  int fired = 0;
  eng.every(0.5, [&fired] {
    ++fired;
    return true;
  });
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(eng.step());  // warm up
  const auto before = allocs();
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(eng.step());
  EXPECT_EQ(allocs(), before) << "periodic re-arm+dispatch allocated";
  EXPECT_EQ(fired, 1016);
}

TEST(EngineAlloc, WarmHeapMixedScheduleIsAllocFree) {
  sa::sim::Engine eng;
  // Fill the heap past its steady size so later pushes never reallocate.
  double t = 0.0;
  for (int i = 0; i < 256; ++i) eng.at(static_cast<double>(i + 1), [] {});
  for (int i = 0; i < 256; ++i) {
    t += 1.0;
    ASSERT_TRUE(eng.step());
  }
  for (int i = 0; i < 128; ++i) eng.at(t + static_cast<double>(i + 1), [] {});
  const auto before = allocs();
  for (int i = 0; i < 128; ++i) {
    eng.at(t + 200.0 + static_cast<double>(i), [] {});
    ASSERT_TRUE(eng.step());
    ASSERT_TRUE(eng.step());
  }
  EXPECT_EQ(allocs(), before) << "warm-heap schedule/dispatch allocated";
}

TEST(KnowledgeAlloc, ReadPathsAreAllocFree) {
  sa::core::KnowledgeBase kb(16);
  for (int i = 0; i < 32; ++i) {
    kb.put_number("metric." + std::to_string(i), i, 0.0, 1.0);
  }
  const auto before = allocs();
  double acc = 0.0;
  bool all = true;
  for (int i = 0; i < 1000; ++i) {
    acc += kb.number("metric.7");
    acc += kb.confidence("metric.13");
    all = all && kb.contains("metric.0");
    all = all && kb.fresh("metric.21", 0.5);
    const auto h = kb.history("metric.3");
    if (!h.empty()) {
      if (const auto* d = std::get_if<double>(&h.back().value)) acc += *d;
    }
  }
  EXPECT_EQ(allocs(), before) << "knowledge read path allocated";
  EXPECT_TRUE(all);
  EXPECT_GT(acc, 0.0);
}

TEST(KnowledgeAlloc, RingOverwriteWriteIsAllocFree) {
  sa::core::KnowledgeBase kb(8);
  // Fill the ring: after history_limit puts the ring stops growing and
  // every further put overwrites the oldest slot in place.
  for (int i = 0; i < 16; ++i) kb.put_number("sensor.load", i, i);
  const auto before = allocs();
  for (int i = 0; i < 1000; ++i) {
    kb.put_number("sensor.load", static_cast<double>(i),
                  static_cast<double>(16 + i));
  }
  EXPECT_EQ(allocs(), before) << "ring-overwrite put_number allocated";
  EXPECT_EQ(kb.history("sensor.load").size(), 8u);
  EXPECT_EQ(kb.number("sensor.load"), 999.0);
}

TEST(KnowledgeAlloc, StringViewLookupNeedsNoTemporaryString) {
  sa::core::KnowledgeBase kb(4);
  // A key long enough to defeat SSO: if the lookup path built a
  // std::string from the view, this test would observe the allocation.
  const char* key = "subsystem.component.metric.with.a.deliberately.long.name";
  kb.put_number(key, 42.0, 0.0);
  const auto before = allocs();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(kb.number(std::string_view(key)), 42.0);
  }
  EXPECT_EQ(allocs(), before) << "string_view lookup materialised a string";
}

}  // namespace
