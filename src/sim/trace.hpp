// Decision-provenance tracing on top of the telemetry bus.
//
// A Tracer records *spans* (begin/end intervals in simulated time, with an
// interned subject and name and optional numeric args) and *flow links*
// (causal chains across spans: stimulus → knowledge update → decision →
// action → outcome). Every span and every flow carries a monotonically
// assigned TraceId, which is threaded through core::Stimulus,
// core::Decision and core::Explanation so a rendered self-explanation can
// cite the exact trace records of the evidence it consulted.
//
// Timestamps are *virtual sim-time* — never wall clock — so the recorded
// stream, and the Chrome/Perfetto trace-event JSON exported from it by
// exp::write_chrome_trace, is bitwise-identical across runs and across
// `--jobs N` (each grid cell owns its own Tracer). Wall-clock
// self-profiling lives in MetricsRegistry instead (see sim/metrics.hpp).
//
// Cost contract (mirrors TelemetryBus): a disabled tracer costs one branch
// per call and performs zero heap allocations; SA_TELEMETRY_OFF compiles
// the recording paths out entirely. Tracing must never touch an Rng —
// enabling a tracer cannot perturb a trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/telemetry.hpp"

namespace sa::sim {

/// Monotone per-Tracer identifier of a span or flow chain. 0 = "none":
/// decisions taken without a tracer carry trace_id 0.
///
/// Layout: the high 16 bits carry the tracer's *namespace* (0 by default),
/// the low 48 bits a per-tracer monotone counter. Scenarios that stitch
/// traces from several tracers (one per domain/agent, see the
/// cross_domain example) give each a distinct namespace so ids stay
/// globally unique across the merged stream.
using TraceId = std::uint64_t;

/// Bit position of the namespace field within a TraceId.
inline constexpr unsigned kTraceNamespaceShift = 48;
/// Mask of the counter field (low 48 bits).
inline constexpr TraceId kTraceCounterMask =
    (TraceId{1} << kTraceNamespaceShift) - 1;

/// Namespace field of a TraceId (0 for single-tracer setups).
[[nodiscard]] constexpr std::uint16_t trace_namespace_of(TraceId id) noexcept {
  return static_cast<std::uint16_t>(id >> kTraceNamespaceShift);
}
/// Counter field of a TraceId.
[[nodiscard]] constexpr TraceId trace_counter_of(TraceId id) noexcept {
  return id & kTraceCounterMask;
}

/// Interned id of a span/flow name ("oda", "decide", ...). Tracer-local.
using NameId = std::uint32_t;

/// Position of a flow point within its causal chain. Begin opens the chain
/// (Chrome phase "s"), Step continues it ("t"), End terminates it ("f").
enum class FlowPhase : std::uint8_t { Begin, Step, End };

class Tracer {
 public:
  /// One recorded entry, in emission order. Span begins and ends are
  /// separate entries so that zero-duration spans at one instant still
  /// nest by emission order (Chrome "B"/"E" semantics).
  struct Event {
    enum class Kind : std::uint8_t { Begin, End, Flow };
    Kind kind = Kind::Begin;
    double t = 0.0;
    SubjectId subject = 0;
    NameId name = 0;
    TraceId id = 0;
    FlowPhase phase = FlowPhase::Begin;  ///< Flow events only
    std::vector<std::pair<NameId, double>> args;  ///< Begin events only
  };

  /// RAII handle for an open span. Destruction closes the span at its
  /// begin time; end_at() closes it at a later sim time. An inert Span
  /// (default-constructed, or returned by a disabled tracer) does nothing.
  class Span {
   public:
    Span() = default;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& o) noexcept { *this = std::move(o); }
    Span& operator=(Span&& o) noexcept {
      if (this != &o) {
        end();
        tracer_ = o.tracer_;
        event_ = o.event_;
        id_ = o.id_;
        t_ = o.t_;
        o.tracer_ = nullptr;
      }
      return *this;
    }
    ~Span() { end(); }

    /// Attaches a numeric argument to the span (exported into the trace
    /// event's "args"). No-op on an inert span.
    void arg(NameId key, double value);
    /// Closes at the begin time (the common case: work within one event).
    void end();
    /// Closes at an explicit later time (epoch-length spans).
    void end_at(double t);
    [[nodiscard]] TraceId id() const noexcept { return id_; }
    explicit operator bool() const noexcept { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::size_t event, TraceId id, double t) noexcept
        : tracer_(tracer), event_(event), id_(id), t_(t) {}
    Tracer* tracer_ = nullptr;
    std::size_t event_ = 0;  ///< index of the Begin event
    TraceId id_ = 0;
    double t_ = 0.0;  ///< begin time; default end time
  };

  /// Subjects are interned through `bus` so span tracks and telemetry
  /// events share one subject namespace. Non-owning; must outlive the
  /// tracer. `ns` becomes the high-16-bit namespace of every TraceId this
  /// tracer assigns (0 keeps ids plain counters — the single-tracer case).
  explicit Tracer(TelemetryBus& bus, bool enabled = true,
                  std::uint16_t ns = 0)
      : bus_(&bus), enabled_(enabled), ns_(ns) {}

  [[nodiscard]] TelemetryBus& bus() noexcept { return *bus_; }
  [[nodiscard]] const TelemetryBus& bus() const noexcept { return *bus_; }

  [[nodiscard]] bool enabled() const noexcept {
#ifdef SA_TELEMETRY_OFF
    return false;
#else
    return enabled_;
#endif
  }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  /// Interns a span/flow name (linear scan — call at wiring time).
  NameId intern_name(std::string_view name);
  [[nodiscard]] const std::string& name(NameId n) const {
    return names_.at(n);
  }
  [[nodiscard]] std::size_t names() const noexcept { return names_.size(); }

  /// Next TraceId (counter monotone from 1, namespaced). Returns 0 while
  /// disabled so ids are only ever assigned to recorded work.
  TraceId next_id() noexcept {
    return enabled() ? compose(++counter_) : 0;
  }
  /// Last assigned TraceId (0 before the first).
  [[nodiscard]] TraceId last_id() const noexcept {
    return counter_ == 0 ? 0 : compose(counter_);
  }

  /// This tracer's TraceId namespace. Changing it mid-run is legal (ids
  /// already assigned keep their old namespace) but unusual; set it at
  /// construction.
  void set_namespace(std::uint16_t ns) noexcept { ns_ = ns; }
  [[nodiscard]] std::uint16_t trace_namespace() const noexcept { return ns_; }

  /// Opens a span at sim time `t`. Disabled: returns an inert Span, no
  /// allocation. Spans on one subject must close LIFO (they nest).
  [[nodiscard]] Span span(double t, SubjectId subject, NameId name);

  /// Records one causal flow point. Flow points are exported bound to the
  /// innermost span open on `subject` at emission time, so emit them
  /// while that span is open.
  void flow(double t, FlowPhase phase, TraceId id, SubjectId subject,
            NameId name);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  /// Spans opened so far (== Begin events).
  [[nodiscard]] std::size_t spans() const noexcept { return span_count_; }
  /// Flow points recorded so far.
  [[nodiscard]] std::size_t flows() const noexcept { return flow_count_; }
  /// Currently open (unclosed) spans.
  [[nodiscard]] std::size_t depth() const noexcept { return open_.size(); }
  void clear();

 private:
  friend class Span;
  void close(std::size_t event_index, double t);
  [[nodiscard]] TraceId compose(TraceId counter) const noexcept {
    return (static_cast<TraceId>(ns_) << kTraceNamespaceShift) |
           (counter & kTraceCounterMask);
  }

  TelemetryBus* bus_;
  bool enabled_;
  std::uint16_t ns_ = 0;  ///< namespace stamped into assigned TraceIds
  std::vector<std::string> names_;
  std::vector<Event> events_;
  std::vector<std::size_t> open_;  ///< stack of open Begin event indices
  TraceId counter_ = 0;  ///< low-48-bit id counter
  std::size_t span_count_ = 0;
  std::size_t flow_count_ = 0;
};

}  // namespace sa::sim
