// E7 — collective self-awareness without a global component
// (paper Section IV, concept 3; Mitchell [45]; Amoretti & Cagnoni [62];
// Guang et al. [63]).
//
// Claim operationalised: a population can maintain collective
// self-knowledge (here: the global mean of a per-node quantity) without
// any node holding global state. We compare the centralised baseline with
// gossip (fully decentralised) and an aggregation hierarchy on:
//   (a) rounds and messages until every live node is within 1% of truth,
//       across population sizes;
//   (b) what survives the failure of the "most important" node.
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/collective.hpp"
#include "exp/harness.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::core;

const std::vector<std::uint64_t> kSeeds{71, 72, 73};

std::vector<double> make_values(std::size_t n, sim::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.0, 100.0);
  return v;
}

double mean_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

std::unique_ptr<CollectiveAggregator> make(const std::string& kind,
                                           std::size_t n) {
  if (kind == "central") return std::make_unique<CentralAggregator>(n);
  if (kind == "gossip") return std::make_unique<GossipAggregator>(n);
  return std::make_unique<HierarchyAggregator>(n, 2);
}

/// (a) cost to converge for one (population, scheme) cell.
exp::TaskOutput run_convergence(std::size_t n, const std::string& kind,
                                std::uint64_t seed) {
  sim::Rng rng(seed);
  const auto values = make_values(n, rng);
  auto agg = make(kind, n);
  agg->reset(values);
  const double truth = mean_of(values);
  const double tol = 0.01 * truth;
  double rounds = 0.0, messages = 0.0;
  while (agg->max_error(truth) > tol && rounds < 500) {
    messages += static_cast<double>(agg->round(rng));
    rounds += 1.0;
  }
  return {{{"rounds", rounds}, {"messages", messages}}};
}

/// (b) error after the key node fails and the world moves on.
exp::TaskOutput run_failure(const std::string& kind, std::uint64_t seed) {
  sim::Rng rng(seed);
  auto values = make_values(64, rng);
  auto agg = make(kind, 64);
  agg->reset(values);
  for (int r = 0; r < 3; ++r) agg->round(rng);
  agg->fail_node(0);
  // The world also moves on: survivors' values shift, so frozen
  // estimates become wrong, not just stale.
  for (std::size_t i = 1; i < values.size(); ++i) values[i] += 20.0;
  std::vector<double> live_values;
  for (std::size_t i = 1; i < values.size(); ++i) {
    live_values.push_back(values[i]);
  }
  const double truth = mean_of(live_values);
  // Re-seed the live nodes' local values (aggregators track the mean of
  // what reset() gave them; emulate the update by resetting and
  // re-failing — gossip/hierarchy handle this as a fresh epoch).
  agg->reset(values);
  agg->fail_node(0);
  double moved = 0.0;
  for (int r = 0; r < 30; ++r) moved += agg->round(rng);
  return {{{"mean_error_pct", agg->mean_error(truth) / truth * 100.0},
           {"moved", moved}}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e7_collective", argc, argv);
  std::cout << "E7: maintaining collective knowledge of a global mean — "
               "centralised vs gossip vs hierarchy.\nConvergence = every "
               "live node within 1% of the true mean; "
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  const std::vector<std::size_t> sizes{16, 64, 256};
  const std::vector<std::string> kinds{"central", "gossip", "hierarchy"};

  exp::Grid g1;
  g1.name = "e7.convergence";
  g1.seeds = kSeeds;
  for (const auto n : sizes) {
    for (const auto& kind : kinds) {
      g1.variants.push_back(kind + "@" + std::to_string(n));
    }
  }
  g1.task = [&](const exp::TaskContext& ctx) {
    const std::size_t n = sizes[ctx.variant / kinds.size()];
    const auto& kind = kinds[ctx.variant % kinds.size()];
    return run_convergence(n, kind, ctx.seed);
  };
  const auto res1 = h.run(std::move(g1));

  sim::Table t1("E7.1  cost to converge vs population size",
                {"nodes", "scheme", "rounds", "messages"});
  for (std::size_t v = 0; v < res1.variants.size(); ++v) {
    t1.add_row({static_cast<std::int64_t>(sizes[v / kinds.size()]),
                kinds[v % kinds.size()], res1.mean(v, "rounds"),
                res1.mean(v, "messages")});
  }
  t1.print(std::cout);

  // (b) Failure of the structurally most important node: the coordinator
  // for central, the root for hierarchy, an arbitrary node for gossip.
  exp::Grid g2;
  g2.name = "e7.failure";
  g2.variants = kinds;
  g2.seeds = kSeeds;
  g2.task = [&](const exp::TaskContext& ctx) {
    return run_failure(kinds[ctx.variant], ctx.seed);
  };
  const auto res2 = h.run(std::move(g2));

  sim::Table t2(
      "E7.2  error after key-node failure + 30 more rounds (n=64)",
      {"scheme", "key_node", "mean_error_pct", "still_converging"});
  for (std::size_t v = 0; v < kinds.size(); ++v) {
    // "Still converging" iff every seed's survivors kept exchanging
    // messages after the failure.
    const bool converging = res2.stats(v, "moved").min() > 0.0;
    t2.add_row({kinds[v],
                std::string(kinds[v] == "gossip" ? "random" : "node 0"),
                res2.mean(v, "mean_error_pct"),
                std::string(converging ? "yes" : "no (dead)")});
  }
  t2.print(std::cout);
  return h.finish();
}
