
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/aggregate.cpp" "src/exp/CMakeFiles/sa_exp.dir/aggregate.cpp.o" "gcc" "src/exp/CMakeFiles/sa_exp.dir/aggregate.cpp.o.d"
  "/root/repo/src/exp/args.cpp" "src/exp/CMakeFiles/sa_exp.dir/args.cpp.o" "gcc" "src/exp/CMakeFiles/sa_exp.dir/args.cpp.o.d"
  "/root/repo/src/exp/harness.cpp" "src/exp/CMakeFiles/sa_exp.dir/harness.cpp.o" "gcc" "src/exp/CMakeFiles/sa_exp.dir/harness.cpp.o.d"
  "/root/repo/src/exp/json.cpp" "src/exp/CMakeFiles/sa_exp.dir/json.cpp.o" "gcc" "src/exp/CMakeFiles/sa_exp.dir/json.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/exp/CMakeFiles/sa_exp.dir/runner.cpp.o" "gcc" "src/exp/CMakeFiles/sa_exp.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
