#include "core/attention.hpp"

#include <algorithm>
#include <cmath>

namespace sa::core {

void AttentionManager::register_signal(const std::string& name) {
  if (state_.try_emplace(name).second) order_.push_back(name);
}

std::vector<std::string> AttentionManager::select(sim::Rng& rng) {
  std::vector<std::string> chosen;
  if (order_.empty()) return chosen;
  const std::size_t k = std::min(budget_, order_.size());

  switch (strategy_) {
    case Strategy::All:
      chosen = order_;
      break;
    case Strategy::RoundRobin:
      for (std::size_t i = 0; i < k; ++i) {
        chosen.push_back(order_[(rr_cursor_ + i) % order_.size()]);
      }
      rr_cursor_ = (rr_cursor_ + k) % order_.size();
      break;
    case Strategy::Random: {
      std::vector<std::size_t> idx(order_.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + rng.below(idx.size() - i);
        std::swap(idx[i], idx[j]);
        chosen.push_back(order_[idx[i]]);
      }
      break;
    }
    case Strategy::Adaptive: {
      // Score = recency-weighted volatility + staleness pressure. The
      // staleness term guarantees every signal is eventually sampled
      // (no starvation), the volatility term prioritises where change
      // is actually happening.
      std::vector<std::pair<double, std::size_t>> scored;
      scored.reserve(order_.size());
      for (std::size_t i = 0; i < order_.size(); ++i) {
        const auto& s = state_.at(order_[i]);
        const double sc = s.volatility.value() +
                          0.1 * static_cast<double>(s.staleness);
        scored.emplace_back(sc, i);
      }
      std::partial_sort(scored.begin(),
                        scored.begin() + static_cast<std::ptrdiff_t>(k),
                        scored.end(), [](const auto& a, const auto& b) {
                          return a.first != b.first ? a.first > b.first
                                                    : a.second < b.second;
                        });
      for (std::size_t i = 0; i < k; ++i) {
        chosen.push_back(order_[scored[i].second]);
      }
      break;
    }
  }

  // Update staleness counters.
  for (auto& [name, s] : state_) ++s.staleness;
  for (const auto& name : chosen) state_.at(name).staleness = 0;
  return chosen;
}

void AttentionManager::feed(const std::string& name, double value) {
  const auto it = state_.find(name);
  if (it == state_.end()) return;
  auto& s = it->second;
  if (s.has_value) s.volatility.add(std::fabs(value - s.last_value));
  s.last_value = value;
  s.has_value = true;
}

double AttentionManager::score(const std::string& name) const {
  const auto it = state_.find(name);
  return it == state_.end() ? 0.0 : it->second.volatility.value();
}

}  // namespace sa::core
