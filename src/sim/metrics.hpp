// Self-profiling metrics registry: counters, gauges, timers and histograms
// behind O(1) pre-registered handles, with per-epoch snapshots.
//
// This is where *wall-clock* self-measurement lives (ODA-loop latency,
// handler cost per subject) — deliberately separated from the Tracer,
// whose record is pure sim-time and must stay bitwise reproducible.
// Register metrics once at wiring time (`counter`/`gauge`/`timer`/
// `histogram`, idempotent by name); the hot path (`add`/`set`/`observe`)
// is an index into a flat vector and performs no heap allocation.
// `snapshot(t)` appends one row of all current values, giving a
// time-series exportable as JSONL (exp::write_metrics_jsonl).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/stats.hpp"

namespace sa::sim {

class MetricsRegistry {
 public:
  using MetricId = std::uint32_t;

  enum class Kind : std::uint8_t { Counter, Gauge, Timer, Histogram };

  /// Registration — linear scan by name, idempotent: re-registering an
  /// existing name returns its id. Throws std::logic_error if the name is
  /// already registered with a different kind (programmer error).
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  /// Timers fold observed durations (milliseconds by convention) into
  /// RunningStats.
  MetricId timer(std::string_view name);
  MetricId histogram(std::string_view name, double lo, double hi,
                     std::size_t bins);

  /// Hot path — O(1), no allocation.
  void add(MetricId m, double delta = 1.0) { metrics_[m].value += delta; }
  void set(MetricId m, double value) { metrics_[m].value = value; }
  void observe(MetricId m, double value) {
    Metric& metric = metrics_[m];
    metric.value += 1.0;  // observation count
    metric.stats.add(value);
    if (metric.hist) metric.hist->add(value);
  }

  /// Counter: running total. Gauge: last set value. Timer/Histogram:
  /// number of observations.
  [[nodiscard]] double value(MetricId m) const { return metrics_[m].value; }
  [[nodiscard]] const RunningStats& stats(MetricId m) const {
    return metrics_[m].stats;
  }
  [[nodiscard]] const Histogram* hist(MetricId m) const {
    return metrics_[m].hist.get();
  }
  [[nodiscard]] const std::string& name(MetricId m) const {
    return metrics_[m].name;
  }
  [[nodiscard]] Kind kind(MetricId m) const { return metrics_[m].kind; }
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  [[nodiscard]] std::optional<MetricId> find(std::string_view name) const;

  /// One row of the exported time-series: every metric's scalar at time t
  /// (counters/gauges: value; timers/histograms: mean of observations so
  /// far, cumulative).
  struct Snapshot {
    double t = 0.0;
    std::vector<double> values;
  };
  void snapshot(double t);
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  void clear_snapshots() { snapshots_.clear(); }

  // -- Concurrent read path (the sa::serve scrape seam) ---------------------
  //
  // The registry itself is single-threaded: add/set/observe and snapshot()
  // belong to the sim thread. To let an HTTP scraper read metrics while a
  // run is live, the sim thread *publishes* an immutable deep copy of every
  // metric's current state; server threads read whichever copy is current
  // through a lock-free atomic pointer (SnapshotCell). snapshot(t) also
  // publishes, so any experiment that already snapshots per epoch is
  // scrapeable with no extra wiring.

  /// Everything a scraper needs from one metric, deep-copied at publish
  /// time: identity, scalar, observation stats, and histogram bins.
  struct LiveMetric {
    std::string name;
    Kind kind = Kind::Counter;
    double value = 0.0;
    // Timer/Histogram observation stats (count == 0 for counters/gauges).
    std::uint64_t count = 0;
    double sum = 0.0, mean = 0.0, min = 0.0, max = 0.0, stddev = 0.0;
    // Histogram layout: `bins` fixed-width buckets over [lo, hi).
    double lo = 0.0, hi = 0.0;
    std::vector<std::uint64_t> bins;
  };
  /// One published generation of the whole registry.
  struct LiveSnapshot {
    double t = 0.0;             ///< sim time passed to publish()
    std::uint64_t generation = 0;  ///< publish() count, monotone from 1
    std::vector<LiveMetric> metrics;
  };

  /// Publishes the current state for concurrent readers (sim thread only).
  /// Reads nothing racy, draws no randomness: publishing cannot perturb a
  /// trajectory.
  void publish(double t);
  /// The most recently published snapshot, or nullptr before the first
  /// publish()/snapshot(). Safe from any thread; the returned snapshot
  /// stays valid for as long as the caller holds the pointer.
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> live() const noexcept {
    return live_.read();
  }

 private:
  struct Metric {
    std::string name;
    Kind kind = Kind::Counter;
    double value = 0.0;
    RunningStats stats;
    std::unique_ptr<Histogram> hist;
  };
  MetricId register_metric(std::string_view name, Kind kind);

  std::vector<Metric> metrics_;
  std::vector<Snapshot> snapshots_;
  SnapshotCell<LiveSnapshot> live_;
  std::uint64_t generation_ = 0;
};

}  // namespace sa::sim
