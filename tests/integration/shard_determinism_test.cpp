// Shard-count invariance over a corpus of generated worlds (sa::shard's
// acceptance suite, `ctest -L shard`).
//
// Every corpus entry is one ScenarioSpec — E1-style (multicore only),
// E4-style (CPN only), camera-district scale-out, the mixed town, and the
// E15 city — run single-engine and as a ShardedWorld at several shard
// counts; the summaries must match bit for bit, with and without a
// standing fault section and with a control-journal replay scheduled on
// the coordinator. SA_SHARD_SOAK=1 widens the matrix (more seeds, more
// shard counts, the full-length city) for the nightly CI lane.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/journal.hpp"
#include "gen/scenario.hpp"
#include "gen/spec.hpp"
#include "shard/world.hpp"
#include "support/metamorphic.hpp"

namespace {

using namespace sa;
namespace support = test::support;

bool soak() {
  const char* v = std::getenv("SA_SHARD_SOAK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<std::size_t> counts() {
  return soak() ? std::vector<std::size_t>{1, 2, 3, 4, 5, 8}
                : std::vector<std::size_t>{1, 2, 4};
}

std::vector<std::uint64_t> seeds() {
  return soak() ? std::vector<std::uint64_t>{11, 12, 13, 14}
                : std::vector<std::uint64_t>{11, 12};
}

/// Schedules a recorded control stream on the coordinator engine — the
/// same replay path the harness uses for --control-journal.
void replay_journal(gen::Scenario& city) {
  std::vector<ckpt::JournalEntry> entries;
  const ckpt::Status st = ckpt::parse_journal_spec(
      "12 cmd=inject&kind=link-loss&unit=0&mag=1.5&dur=10; "
      "31 cmd=inject&kind=core-fail&unit=1&mag=1&dur=8",
      entries);
  if (!st.ok()) throw std::runtime_error("journal: " + st.to_string());
  ckpt::schedule_replay(city.engine(), std::move(entries), /*order=*/1000,
                        &city.injector(), nullptr);
}

TEST(ShardDeterminism, MulticoreOnlyWorld) {  // E1-style
  for (const std::uint64_t seed : seeds()) {
    EXPECT_TRUE(support::shard_count_invariant(
        "world:horizon=100;multicore:nodes=4", seed, counts()));
  }
}

TEST(ShardDeterminism, CpnOnlyWorld) {  // E4-style
  for (const std::uint64_t seed : seeds()) {
    EXPECT_TRUE(support::shard_count_invariant(
        "world:horizon=100;cpn:rows=4,cols=4,shortcuts=3,flows=6,grids=3",
        seed, counts()));
  }
}

TEST(ShardDeterminism, CameraDistrictScaleOut) {
  for (const std::uint64_t seed : seeds()) {
    EXPECT_TRUE(support::shard_count_invariant(
        "world:horizon=100;cameras:count=5,objects=6,clusters=1,districts=4",
        seed, counts()));
  }
}

TEST(ShardDeterminism, MixedTownUnderFaults) {
  for (const std::uint64_t seed : seeds()) {
    EXPECT_TRUE(support::shard_count_invariant(
        "world:horizon=80;multicore:nodes=2;"
        "cameras:count=6,objects=8,clusters=1,districts=2;"
        "cloud:nodes=8;cpn:rows=3,cols=3,shortcuts=2,flows=4,grids=2;faults",
        seed, counts()));
  }
}

TEST(ShardDeterminism, TownWithControlJournalReplay) {
  EXPECT_TRUE(support::shard_count_invariant(
      "world:horizon=80;multicore:nodes=2;"
      "cameras:count=6,objects=8,clusters=1;"
      "cloud:nodes=8;cpn:rows=3,cols=3,shortcuts=2;faults",
      21, counts(), replay_journal));
}

TEST(ShardDeterminism, SmartCityComposite) {  // E15
  // The full 600 s city is the soak lane's job; the quick lane runs a
  // shortened horizon with the identical topology and fault environment.
  gen::ScenarioSpec spec =
      gen::ScenarioSpec::parse(gen::ScenarioSpec::city_spec());
  if (!soak()) spec.world.horizon = 120.0;
  for (const std::uint64_t seed : seeds()) {
    EXPECT_TRUE(support::shard_count_invariant(
        spec.to_string(), seed,
        soak() ? counts() : std::vector<std::size_t>{1, 4}));
  }
}

}  // namespace
