#include "cloud/autoscaler.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace sa::cloud {
namespace {

struct Rig {
  Cluster cluster;
  DemandModel demand;
  explicit Rig(std::uint64_t seed = 5, double base_rate = 60.0)
      : cluster(make_cluster(seed)), demand(make_demand(base_rate)) {}

  static Cluster make_cluster(std::uint64_t seed) {
    Cluster::Params p;
    p.nodes = 24;
    p.seed = seed;
    return Cluster(p);
  }
  static DemandModel make_demand(double base) {
    DemandModel::Params p;
    p.base = base;
    p.diurnal_amp = 0.3;
    p.burst_prob = 0.0;
    return DemandModel(p);
  }
};

Autoscaler::Params params_for(Autoscaler::Variant v) {
  Autoscaler::Params p;
  p.variant = v;
  p.seed = 5;
  return p;
}

TEST(Autoscaler, VariantNames) {
  EXPECT_STREQ(Autoscaler::variant_name(Autoscaler::Variant::Static),
               "static");
  EXPECT_STREQ(Autoscaler::variant_name(Autoscaler::Variant::Reactive),
               "reactive");
  EXPECT_STREQ(Autoscaler::variant_name(Autoscaler::Variant::SelfAware),
               "self-aware");
}

class AutoscalerVariantTest
    : public ::testing::TestWithParam<Autoscaler::Variant> {};

TEST_P(AutoscalerVariantTest, RunsAndAccumulates) {
  Rig rig;
  Autoscaler as(rig.cluster, rig.demand, params_for(GetParam()));
  for (int i = 0; i < 30; ++i) {
    const auto e = as.run_epoch();
    EXPECT_GE(e.sla, 0.0);
    EXPECT_LE(e.sla, 1.0);
  }
  EXPECT_EQ(as.sla().count(), 30u);
  EXPECT_GE(as.sla_violation_rate(), 0.0);
  EXPECT_LE(as.sla_violation_rate(), 1.0);
}

TEST_P(AutoscalerVariantTest, TargetStaysWithinClusterBounds) {
  Rig rig;
  Autoscaler as(rig.cluster, rig.demand, params_for(GetParam()));
  for (int i = 0; i < 40; ++i) {
    as.run_epoch();
    EXPECT_LE(as.target(), rig.cluster.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, AutoscalerVariantTest,
                         ::testing::Values(Autoscaler::Variant::Static,
                                           Autoscaler::Variant::Reactive,
                                           Autoscaler::Variant::SelfAware),
                         [](const auto& info) {
                           std::string n = Autoscaler::variant_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(Autoscaler, StaticNeverRescales) {
  Rig rig;
  auto p = params_for(Autoscaler::Variant::Static);
  p.initial_nodes = 9;
  Autoscaler as(rig.cluster, rig.demand, p);
  for (int i = 0; i < 20; ++i) as.run_epoch();
  EXPECT_EQ(as.target(), 9u);
}

TEST(Autoscaler, ReactiveScalesOutUnderSlaPressure) {
  Rig rig(7, /*base_rate=*/200.0);  // demand far above 4 nodes' capacity
  auto p = params_for(Autoscaler::Variant::Reactive);
  p.initial_nodes = 4;
  Autoscaler as(rig.cluster, rig.demand, p);
  for (int i = 0; i < 15; ++i) as.run_epoch();
  EXPECT_GT(as.target(), 4u);
}

TEST(Autoscaler, ReactiveScalesInWhenIdle) {
  Rig rig(8, /*base_rate=*/1.0);  // nearly no demand
  auto p = params_for(Autoscaler::Variant::Reactive);
  p.initial_nodes = 20;
  Autoscaler as(rig.cluster, rig.demand, p);
  for (int i = 0; i < 30; ++i) as.run_epoch();
  EXPECT_LT(as.target(), 20u);
}

TEST(Autoscaler, SelfAwareTracksDemand) {
  Rig rig(9, /*base_rate=*/120.0);
  auto p = params_for(Autoscaler::Variant::SelfAware);
  p.initial_nodes = 2;  // start under-provisioned
  Autoscaler as(rig.cluster, rig.demand, p);
  sim::RunningStats tail_sla;
  for (int i = 0; i < 80; ++i) {
    const auto e = as.run_epoch();
    if (i >= 40) tail_sla.add(e.sla);  // judge after the cold start
  }
  EXPECT_GT(as.target(), 4u);        // scaled out towards demand
  EXPECT_GT(tail_sla.mean(), 0.5);   // and actually serves most of it
}

TEST(Autoscaler, SelfAwareLearnsNodeReliability) {
  Rig rig(10);
  Autoscaler as(rig.cluster, rig.demand,
                params_for(Autoscaler::Variant::SelfAware));
  for (int i = 0; i < 60; ++i) as.run_epoch();
  auto* ia = as.agent().interaction();
  ASSERT_NE(ia, nullptr);
  EXPECT_FALSE(ia->peers().empty());
  // At least one enrolled node should have accumulated evidence.
  bool some_evidence = false;
  for (const auto& peer : ia->peers()) {
    if (ia->interactions(peer) >= 10) some_evidence = true;
  }
  EXPECT_TRUE(some_evidence);
}

TEST(Autoscaler, BindReproducesRunEpochLoop) {
  // The autoscaler bound to an engine (one control event per cluster epoch)
  // must follow the same trajectory as the synchronous loop.
  Rig a(7), b(7);
  Autoscaler legacy(a.cluster, a.demand,
                    params_for(Autoscaler::Variant::SelfAware));
  sim::RunningStats legacy_sla;
  for (int i = 0; i < 30; ++i) legacy_sla.add(legacy.run_epoch().sla);

  Autoscaler bound(b.cluster, b.demand,
                   params_for(Autoscaler::Variant::SelfAware));
  sim::Engine engine;
  sim::RunningStats bound_sla;
  bound.bind(engine, 0.0, [&](const CloudEpoch& e) { bound_sla.add(e.sla); });
  engine.run_until(30.0 * b.cluster.epoch_seconds());

  ASSERT_EQ(bound_sla.count(), 30u);
  EXPECT_DOUBLE_EQ(bound_sla.mean(), legacy_sla.mean());
  EXPECT_EQ(bound.target(), legacy.target());
}

#ifndef SA_TELEMETRY_OFF
TEST(Autoscaler, TelemetryRecordsEpochsAndFailures) {
  sim::TelemetryBus bus;
  Rig rig(8);
  auto p = params_for(Autoscaler::Variant::SelfAware);
  p.telemetry = &bus;
  Autoscaler as(rig.cluster, rig.demand, p);
  for (int i = 0; i < 30; ++i) as.run_epoch();
  // One cluster SLA observation per epoch plus the agent's own sampling.
  EXPECT_GE(bus.count(sim::TelemetryBus::kObservation), 30u);
  EXPECT_GT(bus.count(sim::TelemetryBus::kDecision), 0u);
  // With 24 churning nodes over 30 epochs, some went down mid-epoch.
  EXPECT_GT(bus.count(sim::TelemetryBus::kFailure), 0u);
}
#endif  // SA_TELEMETRY_OFF

TEST(Autoscaler, UtilityBlendsSlaAndCost) {
  Rig rig(11);
  Autoscaler as(rig.cluster, rig.demand,
                params_for(Autoscaler::Variant::Static));
  for (int i = 0; i < 10; ++i) as.run_epoch();
  EXPECT_GT(as.utility().mean(), 0.0);
  EXPECT_LE(as.utility().mean(), 1.0);
  EXPECT_GT(as.cost().mean(), 0.0);
}

}  // namespace
}  // namespace sa::cloud
