#include "sim/metrics.hpp"

#include <stdexcept>

namespace sa::sim {

MetricsRegistry::MetricId MetricsRegistry::register_metric(
    std::string_view name, Kind kind) {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      if (metrics_[i].kind != kind) {
        throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return static_cast<MetricId>(i);
    }
  }
  Metric m;
  m.name = std::string(name);
  m.kind = kind;
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricsRegistry::MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, Kind::Counter);
}

MetricsRegistry::MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, Kind::Gauge);
}

MetricsRegistry::MetricId MetricsRegistry::timer(std::string_view name) {
  return register_metric(name, Kind::Timer);
}

MetricsRegistry::MetricId MetricsRegistry::histogram(std::string_view name,
                                                     double lo, double hi,
                                                     std::size_t bins) {
  const MetricId id = register_metric(name, Kind::Histogram);
  if (!metrics_[id].hist) {
    metrics_[id].hist = std::make_unique<Histogram>(lo, hi, bins);
  }
  return id;
}

std::optional<MetricsRegistry::MetricId> MetricsRegistry::find(
    std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return static_cast<MetricId>(i);
  }
  return std::nullopt;
}

void MetricsRegistry::snapshot(double t) {
  Snapshot s;
  s.t = t;
  s.values.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::Counter:
      case Kind::Gauge:
        s.values.push_back(m.value);
        break;
      case Kind::Timer:
      case Kind::Histogram:
        s.values.push_back(m.stats.count() > 0 ? m.stats.mean() : 0.0);
        break;
    }
  }
  snapshots_.push_back(std::move(s));
  publish(t);
}

void MetricsRegistry::publish(double t) {
  auto snap = std::make_shared<LiveSnapshot>();
  snap->t = t;
  snap->generation = ++generation_;
  snap->metrics.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    LiveMetric lm;
    lm.name = m.name;
    lm.kind = m.kind;
    lm.value = m.value;
    if (m.kind == Kind::Timer || m.kind == Kind::Histogram) {
      lm.count = m.stats.count();
      if (lm.count > 0) {
        lm.sum = m.stats.sum();
        lm.mean = m.stats.mean();
        lm.min = m.stats.min();
        lm.max = m.stats.max();
        lm.stddev = m.stats.stddev();
      }
    }
    if (m.hist) {
      lm.lo = m.hist->bin_lo(0);
      lm.hi = m.hist->bin_lo(m.hist->bins());
      lm.bins.reserve(m.hist->bins());
      for (std::size_t b = 0; b < m.hist->bins(); ++b) {
        lm.bins.push_back(m.hist->count(b));
      }
    }
    snap->metrics.push_back(std::move(lm));
  }
  live_.publish(std::move(snap));
}

}  // namespace sa::sim
