# Empty compiler generated dependencies file for learn_tests.
# This may be replaced when dependencies are built.
