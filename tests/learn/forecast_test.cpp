#include "learn/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(NaiveForecaster, PredictsLastValue) {
  NaiveForecaster f;
  f.observe(3.0);
  f.observe(7.0);
  EXPECT_DOUBLE_EQ(f.forecast(), 7.0);
  EXPECT_DOUBLE_EQ(f.forecast(5), 7.0);
  EXPECT_EQ(f.count(), 2u);
}

TEST(SesForecaster, ConvergesToLevel) {
  SesForecaster f(0.3);
  for (int i = 0; i < 100; ++i) f.observe(6.0);
  EXPECT_NEAR(f.forecast(), 6.0, 1e-9);
}

TEST(SesForecaster, SmoothsNoise) {
  sim::Rng rng(1);
  SesForecaster f(0.1);
  for (int i = 0; i < 2000; ++i) f.observe(rng.normal(5.0, 1.0));
  EXPECT_NEAR(f.forecast(), 5.0, 0.5);
}

TEST(HoltForecaster, ExtrapolatesLinearTrendExactly) {
  HoltForecaster f(0.5, 0.5);
  for (int i = 0; i < 50; ++i) f.observe(2.0 * i);
  EXPECT_NEAR(f.forecast(1), 100.0, 1.0);   // next value would be 2*50
  EXPECT_NEAR(f.forecast(5), 108.0, 1.5);
}

TEST(HoltForecaster, BeatsNaiveOnTrend) {
  HoltForecaster holt;
  NaiveForecaster naive;
  double holt_err = 0.0, naive_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double x = 0.7 * i;
    if (i > 5) {
      holt_err += std::fabs(holt.forecast() - x);
      naive_err += std::fabs(naive.forecast() - x);
    }
    holt.observe(x);
    naive.observe(x);
  }
  EXPECT_LT(holt_err, naive_err * 0.5);
}

TEST(HoltWinters, LearnsSeasonality) {
  const std::size_t period = 8;
  HoltWintersForecaster f(period);
  auto signal = [&](int i) {
    return 10.0 + 5.0 * std::sin(2.0 * 3.14159265 * i / period);
  };
  for (int i = 0; i < 400; ++i) f.observe(signal(i));
  // After warm-up the one-step forecast should track the seasonal shape.
  double err = 0.0;
  for (int i = 400; i < 432; ++i) {
    err += std::fabs(f.forecast(1) - signal(i));
    f.observe(signal(i));
  }
  EXPECT_LT(err / 32.0, 0.5);
}

TEST(HoltWinters, BeatsHoltOnSeasonalData) {
  const std::size_t period = 12;
  HoltWintersForecaster hw(period);
  HoltForecaster holt;
  auto signal = [&](int i) {
    return 20.0 + 8.0 * std::sin(2.0 * 3.14159265 * i / period);
  };
  double hw_err = 0.0, holt_err = 0.0;
  for (int i = 0; i < 600; ++i) {
    const double x = signal(i);
    if (i > 100) {
      hw_err += std::fabs(hw.forecast(1) - x);
      holt_err += std::fabs(holt.forecast(1) - x);
    }
    hw.observe(x);
    holt.observe(x);
  }
  EXPECT_LT(hw_err, holt_err * 0.5);
}

TEST(ScoredForecaster, TracksMeanAbsoluteError) {
  ScoredForecaster s(std::make_unique<NaiveForecaster>());
  s.observe(0.0);  // nothing to score yet
  EXPECT_EQ(s.scored(), 0u);
  s.observe(1.0);  // naive predicted 0, error 1
  s.observe(3.0);  // predicted 1, error 2
  EXPECT_EQ(s.scored(), 2u);
  EXPECT_DOUBLE_EQ(s.mae(), 1.5);
}

TEST(ScoredForecaster, PerfectForecasterHasZeroMae) {
  ScoredForecaster s(std::make_unique<NaiveForecaster>());
  for (int i = 0; i < 10; ++i) s.observe(4.0);
  EXPECT_DOUBLE_EQ(s.mae(), 0.0);
}

TEST(Forecasters, NamesAreDistinct) {
  EXPECT_EQ(NaiveForecaster{}.name(), "naive");
  EXPECT_EQ(SesForecaster{}.name(), "ses");
  EXPECT_EQ(HoltForecaster{}.name(), "holt");
  EXPECT_EQ(HoltWintersForecaster{4}.name(), "holt-winters");
}

}  // namespace
}  // namespace sa::learn
