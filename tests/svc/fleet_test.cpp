#include "svc/fleet.hpp"

#include <gtest/gtest.h>

namespace sa::svc {
namespace {

NetworkParams world_params(std::uint64_t seed = 4) {
  NetworkParams p;
  p.objects = 16;
  p.seed = seed;
  return p;
}

TEST(CameraFleet, HomogeneousAppliesFixedStrategyEverywhere) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.mode = CameraFleet::Mode::Homogeneous;
  p.fixed = Strategy::Smooth;
  CameraFleet fleet(net, p);
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    EXPECT_EQ(net.strategy(c), Strategy::Smooth);
  }
  EXPECT_DOUBLE_EQ(fleet.diversity(), 0.0);
}

TEST(CameraFleet, HistogramSumsToCameraCount) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet fleet(net, {});
  for (int i = 0; i < 5; ++i) fleet.run_epoch();
  const auto hist = fleet.strategy_histogram();
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, net.cameras());
}

TEST(CameraFleet, DiversityIsZeroWhenUniform) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.mode = CameraFleet::Mode::Homogeneous;
  p.fixed = Strategy::Broadcast;
  CameraFleet fleet(net, p);
  fleet.run_epoch();
  EXPECT_DOUBLE_EQ(fleet.diversity(), 0.0);
}

TEST(CameraFleet, DiversityIsOneWhenBalanced) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.mode = CameraFleet::Mode::Homogeneous;
  CameraFleet fleet(net, p);
  // Hand-assign a perfectly balanced strategy split (12 cameras / 3).
  for (std::size_t c = 0; c < net.cameras(); ++c) {
    net.set_strategy(c, static_cast<Strategy>(c % kStrategies));
  }
  EXPECT_NEAR(fleet.diversity(), 1.0, 1e-9);
}

TEST(CameraFleet, LearningRunsAndAccumulates) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet::Params p;
  p.epoch_steps = 20;
  CameraFleet fleet(net, p);
  for (int i = 0; i < 10; ++i) {
    const auto e = fleet.run_epoch();
    EXPECT_GE(e.coverage, 0.0);
    EXPECT_LE(e.coverage, 1.0);
  }
  EXPECT_EQ(fleet.coverage().count(), 10u);
}

TEST(CameraFleet, LearningAgentsExist) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet fleet(net, {});
  fleet.run_epoch();
  EXPECT_EQ(fleet.cameras(), net.cameras());
  EXPECT_EQ(fleet.agent(0).id(), "cam0");
  EXPECT_GT(fleet.agent(0).steps(), 0u);
}

TEST(CameraFleet, LearningDevelopsNonTrivialAssignment) {
  // After enough epochs the learners should have committed to concrete
  // strategies (not stuck at construction defaults with no exploration).
  auto net = Network::clustered_layout(world_params(9));
  CameraFleet::Params p;
  p.epoch_steps = 20;
  p.seed = 9;
  CameraFleet fleet(net, p);
  for (int i = 0; i < 60; ++i) fleet.run_epoch();
  const auto hist = fleet.strategy_histogram();
  // Exploration guarantees every strategy was tried; final histogram must
  // be a valid partition.
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, net.cameras());
}

TEST(CameraFleet, AgentsReceiveGoalUtility) {
  auto net = Network::clustered_layout(world_params());
  CameraFleet fleet(net, {});
  for (int i = 0; i < 3; ++i) fleet.run_epoch();
  EXPECT_TRUE(fleet.agent(0).knowledge().contains("goal.utility"));
}

}  // namespace
}  // namespace sa::svc
