// Component serializer round-trips (ctest -L ckpt).
//
// Each stateful layer's checkpoint seam must round-trip bit-exactly
// through the sa::ckpt wire format: RNG streams continue with the same
// draws (including the Marsaglia normal() spare), knowledge bases restore
// verbatim without TTL re-stamping or listener firings, degradation
// ladders resume mid-streak, and a fault injector resumed at T schedules
// the byte-identical remaining fault trajectory. Malformed payloads come
// back as typed errors (validated enums, never trusted indices).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/state.hpp"
#include "core/agent.hpp"
#include "core/degrade.hpp"
#include "core/knowledge.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sa::ckpt {
namespace {

TEST(StateCkpt, RngContinuesIdenticallyAcrossRoundTrip) {
  sim::Rng a(1234);
  (void)a.uniform();
  (void)a.normal();  // leaves a Marsaglia spare buffered
  Buffer b;
  save_rng(a.state(), b);
  Cursor c(b.data());
  sim::Rng::State st;
  ASSERT_TRUE(load_rng(c, st).ok());
  ASSERT_TRUE(c.at_end());

  sim::Rng restored(0);
  restored.set_state(st);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.normal(), restored.normal()) << "draw " << i;
    EXPECT_EQ(a.uniform(), restored.uniform()) << "draw " << i;
  }
}

TEST(StateCkpt, ValueRoundTripsEveryAlternative) {
  const core::Value values[] = {
      core::Value{true}, core::Value{std::int64_t{-42}}, core::Value{-0.0},
      core::Value{std::string("text")},
      core::Value{std::vector<double>{1.5, -2.5, 0.0}}};
  for (const core::Value& v : values) {
    Buffer b;
    save_value(v, b);
    Cursor c(b.data());
    core::Value back;
    ASSERT_TRUE(load_value(c, back).ok());
    EXPECT_EQ(back.index(), v.index());
    EXPECT_EQ(back, v);
  }

  // An out-of-range variant index is malformed, not UB.
  Buffer bad;
  bad.u8(9);
  Cursor c(bad.data());
  core::Value out;
  EXPECT_EQ(load_value(c, out).code, Errc::kMalformed);
}

TEST(StateCkpt, ItemRejectsInvalidScope) {
  core::KnowledgeItem item;
  item.value = core::Value{1.5};
  item.time = 3.0;
  Buffer b;
  save_item(item, b);
  // Scope byte is right after the value (u8 index + f64) and f64 time +
  // f64 confidence; corrupt it via a rebuilt payload instead of offset
  // arithmetic: serialize with a hand-rolled bad scope.
  Buffer bad;
  save_value(item.value, bad);
  bad.f64(item.time);
  bad.f64(item.confidence);
  bad.u8(250);  // no such Scope
  bad.str(item.source);
  bad.f64(item.ttl);
  Cursor c(bad.data());
  core::KnowledgeItem out;
  EXPECT_EQ(load_item(c, out).code, Errc::kMalformed);
}

TEST(StateCkpt, KnowledgeBaseRestoresVerbatim) {
  core::KnowledgeBase kb(4);
  kb.set_default_ttl(10.0);
  for (int i = 0; i < 6; ++i) {  // overflows the ring: oldest evicted
    kb.put_number("cpu.load", 0.1 * i, static_cast<double>(i));
  }
  kb.put_number("zeta", 1.0, 0.5);
  kb.put_number("alpha", 2.0, 0.25, 0.9, core::Scope::Public, "peer");

  Buffer b;
  save_knowledge(kb, b);

  core::KnowledgeBase back(4);
  int notified = 0;
  back.subscribe([&notified](const std::string&, const core::KnowledgeItem&) {
    ++notified;
  });
  Cursor c(b.data());
  ASSERT_TRUE(load_knowledge(c, back).ok());
  EXPECT_EQ(notified, 0) << "restore must not fire listeners";

  // Same keys, same retained windows, same bytes on re-export.
  Buffer again;
  save_knowledge(back, again);
  EXPECT_EQ(again.data(), b.data());

  auto h = back.history("cpu.load");
  ASSERT_EQ(h.size(), 4u);  // only the ring survives, oldest first
  EXPECT_EQ(h.front().time, 2.0);
  EXPECT_EQ(h.back().time, 5.0);

  // A different history_limit is a shape mismatch, not a silent resize.
  core::KnowledgeBase wrong(8);
  Cursor c2(b.data());
  EXPECT_EQ(load_knowledge(c2, wrong).code, Errc::kShapeMismatch);
}

TEST(StateCkpt, LadderResumesMidStreak) {
  core::SelfAwareAgent agent("a");
  core::DegradationPolicy::Params p;
  p.fault_active_breach = 1.0;
  p.breach_updates = 2;
  p.recover_updates = 2;
  core::DegradationPolicy policy(agent, p);
  agent.knowledge().put_number("fault.active", 3.0, 0.0, 1.0,
                               core::Scope::Private, "fault");
  policy.update(1.0);
  policy.update(2.0);  // stepped down to Goal, streaks mid-flight
  ASSERT_EQ(policy.mode(), core::DegradationPolicy::Mode::Goal);

  Buffer b;
  save_ladder(policy, b);

  core::SelfAwareAgent agent2("a");
  core::DegradationPolicy policy2(agent2, p);
  Cursor c(b.data());
  ASSERT_TRUE(restore_ladder(c, policy2).ok());
  EXPECT_EQ(policy2.mode(), core::DegradationPolicy::Mode::Goal);
  EXPECT_EQ(policy2.degradations(), policy.degradations());
  // The rung's level ceiling was re-applied to the fresh agent.
  EXPECT_FALSE(agent2.active_levels().has(core::Level::Meta));
  EXPECT_TRUE(agent2.active_levels().has(core::Level::Goal));

  // Re-export byte-matches (the attestation property).
  Buffer again;
  save_ladder(policy2, again);
  EXPECT_EQ(again.data(), b.data());

  // A mode byte past Reactive is malformed.
  Buffer bad;
  bad.u8(7);
  Cursor cb(bad.data());
  EXPECT_FALSE(restore_ladder(cb, policy2).ok());
}

/// A surface over counters, as in injector_test.
struct CountingSurface {
  std::vector<int> depth;
  explicit CountingSurface(std::size_t units) : depth(units, 0) {}
  fault::Injector::Surface as_surface(fault::FaultKind kind,
                                      std::string name) {
    fault::Injector::Surface s;
    s.kind = kind;
    s.name = std::move(name);
    s.units = depth.size();
    s.begin = [this](std::size_t unit, double) { ++depth[unit]; };
    s.end = [this](std::size_t unit, double) { --depth[unit]; };
    return s;
  }
};

void expect_records_equal(const std::vector<fault::Injector::Record>& a,
                          const std::vector<fault::Injector::Record>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].unit, b[i].unit) << i;
    EXPECT_EQ(a[i].magnitude, b[i].magnitude) << i;
    EXPECT_EQ(a[i].until, b[i].until) << i;
    EXPECT_EQ(a[i].begin, b[i].begin) << i;
  }
}

TEST(StateCkpt, InjectorResumesTheExactFaultTrajectory) {
  const auto plan =
      fault::FaultPlan::parse("link-loss:rate=0.1,dur=4,burst=2;seed=11");

  // Reference: run to 60, snapshot injector + engine, continue to 150.
  sim::Engine ea;
  fault::Injector ia;
  CountingSurface surf_a(4);
  ia.add_surface(surf_a.as_surface(fault::FaultKind::LinkLoss, "test.link"));
  ia.bind(ea, plan);
  ea.run_until(60.0);
  Buffer inj_snap, eng_snap;
  save_injector(ia, inj_snap);
  ASSERT_TRUE(save_engine(ea, eng_snap).ok());
  ea.run_until(150.0);
  const auto reference = ia.records();
  ASSERT_FALSE(reference.empty());

  // Restore: rebuild the same chains under engine restore mode, import
  // injector state, then arm the timeline.
  sim::Engine eb;
  fault::Injector ib;
  CountingSurface surf_b(4);
  ib.add_surface(surf_b.as_surface(fault::FaultKind::LinkLoss, "test.link"));
  eb.begin_restore();
  ib.bind(eb, plan);
  Cursor ci(inj_snap.data());
  ASSERT_TRUE(restore_injector(ci, ib).ok());
  Cursor ce(eng_snap.data());
  ASSERT_TRUE(restore_engine(ce, eb).ok());
  EXPECT_EQ(eb.now(), 60.0);

  // Attestation + byte-identical continuation.
  Buffer again;
  save_injector(ib, again);
  EXPECT_EQ(again.data(), inj_snap.data());
  eb.run_until(150.0);
  expect_records_equal(ib.records(), reference);

  // Shape mismatch: same checkpoint against a world whose plan armed a
  // different chain set (two link-loss processes instead of one).
  const auto two = fault::FaultPlan::parse(
      "link-loss:rate=0.1,dur=4,burst=2;link-loss:rate=0.2,dur=1;seed=11");
  sim::Engine ec;
  fault::Injector ic;
  CountingSurface surf_c(4);
  ic.add_surface(surf_c.as_surface(fault::FaultKind::LinkLoss, "test.link"));
  ec.begin_restore();
  ic.bind(ec, two);
  Cursor cc(inj_snap.data());
  EXPECT_EQ(restore_injector(cc, ic).code, Errc::kShapeMismatch);
}

}  // namespace
}  // namespace sa::ckpt
