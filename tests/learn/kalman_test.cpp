#include "learn/kalman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(KalmanLevel, FirstObservationInitialises) {
  KalmanLevel k;
  k.observe(5.0);
  EXPECT_DOUBLE_EQ(k.value(), 5.0);
  EXPECT_EQ(k.count(), 1u);
}

TEST(KalmanLevel, ConvergesOnConstantSignal) {
  KalmanLevel k(1e-4, 0.5);
  sim::Rng rng(1);
  for (int i = 0; i < 2000; ++i) k.observe(rng.normal(3.0, 0.7));
  EXPECT_NEAR(k.value(), 3.0, 0.2);
}

TEST(KalmanLevel, UncertaintyShrinksWithEvidence) {
  KalmanLevel k(1e-5, 1.0);
  k.observe(0.0);
  const double early = k.stddev();
  for (int i = 0; i < 200; ++i) k.observe(0.0);
  EXPECT_LT(k.stddev(), early);
}

TEST(KalmanLevel, TracksStepChange) {
  KalmanLevel k(1e-2, 0.1);
  for (int i = 0; i < 100; ++i) k.observe(0.0);
  for (int i = 0; i < 100; ++i) k.observe(10.0);
  EXPECT_NEAR(k.value(), 10.0, 0.5);
}

TEST(KalmanLevel, ResetClears) {
  KalmanLevel k;
  k.observe(7.0);
  k.reset();
  EXPECT_DOUBLE_EQ(k.value(), 0.0);
  EXPECT_EQ(k.count(), 0u);
}

TEST(KalmanTrend, LearnsSlopeOfCleanRamp) {
  KalmanTrend k(1e-4, 1e-2);
  for (int i = 0; i < 200; ++i) k.observe(2.0 * i);
  EXPECT_NEAR(k.rate(), 2.0, 0.05);
  EXPECT_NEAR(k.level(), 2.0 * 199, 0.5);
}

TEST(KalmanTrend, PredictsAhead) {
  KalmanTrend k(1e-4, 1e-2);
  for (int i = 0; i < 200; ++i) k.observe(0.5 * i);
  EXPECT_NEAR(k.predict(10), 0.5 * 209, 1.0);
}

TEST(KalmanTrend, HandlesNoisyRamp) {
  KalmanTrend k(1e-4, 4.0);  // r matches the noise variance (sd = 2)
  sim::Rng rng(2);
  for (int i = 0; i < 3000; ++i) k.observe(0.3 * i + rng.normal(0.0, 2.0));
  EXPECT_NEAR(k.rate(), 0.3, 0.1);
}

TEST(KalmanTrend, BeatsNaivePredictionOnTrend) {
  KalmanTrend k(1e-4, 0.5);
  sim::Rng rng(3);
  double kalman_err = 0.0, naive_err = 0.0;
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double truth = 1.5 * i;
    const double z = truth + rng.normal(0.0, 1.0);
    if (i > 50) {
      kalman_err += std::fabs(k.predict(1) - truth);
      naive_err += std::fabs(last - truth);
    }
    k.observe(z);
    last = z;
  }
  EXPECT_LT(kalman_err, naive_err * 0.8);
}

TEST(KalmanTrend, ResetClears) {
  KalmanTrend k;
  for (int i = 0; i < 10; ++i) k.observe(i);
  k.reset();
  EXPECT_DOUBLE_EQ(k.level(), 0.0);
  EXPECT_DOUBLE_EQ(k.rate(), 0.0);
  EXPECT_EQ(k.count(), 0u);
}

}  // namespace
}  // namespace sa::learn
