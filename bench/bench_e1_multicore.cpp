// E1 — H0 on the heterogeneous multicore (paper Sections II & III).
//
// Claim operationalised: a self-aware run-time manager better manages the
// throughput / tail-latency / power trade-off than a design-time-fixed
// configuration or a model-free reactive controller, when the workload
// changes phase during operation.
//
// Table 1: whole-run metrics per manager variant (3 seeds each), plus a
//          brute-forced "oracle" that re-picks the best fixed action per
//          phase (upper bound).
// Table 2: mean utility per workload phase for the key variants — shows
//          *where* the self-aware manager earns its advantage.
//
// The seed x variant grid runs on the sa::exp parallel runner; every cell
// is self-contained, so results are identical for any --jobs value.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 960;  // 8 full workload cycles at 0.5 s epochs
const std::vector<std::uint64_t> kSeeds{11, 12, 13};

struct RunResult {
  sim::RunningStats utility, power, latency;
  double cap_violation = 0.0;
  std::map<std::string, sim::RunningStats> per_phase;
};

RunResult run_variant(Manager::Variant v, const exp::TaskContext& ctx,
                      std::size_t static_action = 3) {
  const std::uint64_t seed = ctx.seed;
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = v;
  p.seed = seed;
  p.static_action = static_action;
  // Observability hooks from the harness's traced cell (--trace /
  // --metrics); sim-time derived, so the trajectory is unchanged.
  p.telemetry = ctx.telemetry;
  p.tracer = ctx.tracer;
  Manager mgr(platform, p);
  RunResult r;
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    const double u = mgr.run_epoch();
    r.utility.add(u);
    r.power.add(mgr.last_stats().mean_power);
    r.latency.add(mgr.last_stats().p95_latency);
    r.per_phase[workload.current(platform.now() - 0.25).name].add(u);
  }
  r.cap_violation = mgr.cap_violation_rate();
  return r;
}

/// Oracle: for each phase, pre-computes the best fixed action by sweeping,
/// then replays the run switching to the per-phase winner (an upper bound a
/// real system cannot have at design time, because it requires knowing the
/// phases and their timing).
std::vector<std::size_t> best_action_per_phase() {
  auto workload = PhasedWorkload::standard();
  Platform probe(PlatformConfig::big_little(2, 4), 1);
  const auto actions = default_actions(probe);
  std::vector<std::size_t> best;
  for (const auto& phase : workload.phases()) {
    double best_u = -1.0;
    std::size_t best_a = 0;
    for (std::size_t a = 0; a < actions.size(); ++a) {
      Platform p(PlatformConfig::big_little(2, 4), 99);
      Manager::Params mp;
      mp.variant = Manager::Variant::Static;
      mp.static_action = a;
      Manager mgr(p, mp);
      p.set_workload(phase.rate, phase.mean_work, phase.deadline_s);
      double total = 0.0;
      int n = 0;
      for (int e = 0; e < 60; ++e) {
        const double u = mgr.run_epoch();
        if (e >= 20) {
          total += u;
          ++n;
        }
      }
      if (total / n > best_u) {
        best_u = total / n;
        best_a = a;
      }
    }
    best.push_back(best_a);
  }
  return best;
}

RunResult run_oracle(const exp::TaskContext& ctx,
                     const std::vector<std::size_t>& phase_actions) {
  const std::uint64_t seed = ctx.seed;
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = Manager::Variant::Static;
  p.seed = seed;
  p.telemetry = ctx.telemetry;
  p.tracer = ctx.tracer;
  Manager mgr(platform, p);
  const auto actions = default_actions(platform);
  RunResult r;
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    const std::size_t ph = workload.phase_index(platform.now());
    const auto& a = actions[phase_actions[ph]];
    platform.set_all_freq(a.freq_level);
    platform.set_mapping(a.mapping);
    const double u = mgr.run_epoch();
    // run_epoch's own (static) decision re-applies a fixed config; override
    // again so the oracle's choice governs the next epoch.
    platform.set_all_freq(a.freq_level);
    platform.set_mapping(a.mapping);
    r.utility.add(u);
    r.power.add(mgr.last_stats().mean_power);
    r.latency.add(mgr.last_stats().p95_latency);
    r.per_phase[workload.current(platform.now() - 0.25).name].add(u);
  }
  r.cap_violation = mgr.cap_violation_rate();
  return r;
}

exp::Metrics to_metrics(const RunResult& r) {
  return {{"utility", r.utility.mean()},
          {"power_w", r.power.mean()},
          {"p95_s", r.latency.mean()},
          {"cap_viol", r.cap_violation},
          {"phase.steady", r.per_phase.at("steady").mean()},
          {"phase.burst", r.per_phase.at("burst").mean()},
          {"phase.interactive", r.per_phase.at("interactive").mean()}};
}

}  // namespace

int main(int argc, char** argv) {
  exp::Harness h("e1_multicore", argc, argv);
  std::cout << "E1: self-aware vs static vs reactive run-time management of "
               "a big.LITTLE platform\nWorkload: "
            << kEpochs << " epochs x 0.5 s, phases steady/burst/interactive, "
            << h.seeds_for(kSeeds).size() << " seeds.\n\n";

  const auto oracle_actions = best_action_per_phase();

  exp::Grid g;
  g.name = "e1";
  g.variants = {"static (design-time)", "reactive (rules)", "self-aware",
                "oracle (per-phase best)"};
  g.seeds = kSeeds;
  g.task = [&oracle_actions](const exp::TaskContext& ctx) -> exp::TaskOutput {
    switch (ctx.variant) {
      case 0: return {to_metrics(run_variant(Manager::Variant::Static, ctx))};
      case 1: return {to_metrics(run_variant(Manager::Variant::Reactive,
                                             ctx))};
      case 2: return {to_metrics(run_variant(Manager::Variant::SelfAware,
                                             ctx))};
      default: return {to_metrics(run_oracle(ctx, oracle_actions))};
    }
  };
  const auto res = h.run(std::move(g));

  sim::Table t1("E1.1  whole-run comparison (mean over seeds)",
                {"manager", "utility", "power_w", "p95_s", "cap_viol"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t1.add_row({res.variants[v], res.mean(v, "utility"), res.mean(v, "power_w"),
                res.mean(v, "p95_s"), res.mean(v, "cap_viol")});
  }
  t1.print(std::cout);

  sim::Table t2("E1.2  mean utility by workload phase",
                {"manager", "steady", "burst", "interactive"});
  for (std::size_t v = 0; v < res.variants.size(); ++v) {
    t2.add_row({res.variants[v], res.mean(v, "phase.steady"),
                res.mean(v, "phase.burst"), res.mean(v, "phase.interactive")});
  }
  t2.print(std::cout);
  return h.finish();
}
