#include <gtest/gtest.h>

#include <memory>

#include "core/policy.hpp"

namespace sa::core {
namespace {

const std::vector<std::string> kActions{"a", "b"};

ContextualBanditPolicy make_policy(std::size_t contexts = 2) {
  return ContextualBanditPolicy(
      contexts,
      [](const KnowledgeBase& kb) {
        return static_cast<std::size_t>(kb.number("ctx"));
      },
      [] { return std::make_unique<learn::EpsilonGreedy>(2, 0.1); },
      {"ctx"});
}

TEST(ContextualBanditPolicy, LearnsDifferentActionsPerContext) {
  auto p = make_policy();
  KnowledgeBase kb;
  sim::Rng rng(1);
  // Context 0 rewards action 0; context 1 rewards action 1.
  for (int i = 0; i < 4000; ++i) {
    const double ctx = i % 2 ? 1.0 : 0.0;
    kb.put_number("ctx", ctx, i);
    const auto d = p.decide(i, kb, kActions, rng);
    const bool good = (ctx == 0.0 && d.action_index == 0) ||
                      (ctx == 1.0 && d.action_index == 1);
    p.feedback(good ? 1.0 : 0.0);
  }
  // After learning, the greedy choice must differ by context.
  std::size_t ctx0_zero = 0, ctx1_one = 0;
  const int probes = 100;
  for (int i = 0; i < probes; ++i) {
    kb.put_number("ctx", 0.0, 9000 + i);
    auto d = p.decide(0, kb, kActions, rng);
    p.feedback(d.action_index == 0 ? 1.0 : 0.0);
    ctx0_zero += d.action_index == 0 ? 1 : 0;
    kb.put_number("ctx", 1.0, 9500 + i);
    d = p.decide(0, kb, kActions, rng);
    p.feedback(d.action_index == 1 ? 1.0 : 0.0);
    ctx1_one += d.action_index == 1 ? 1 : 0;
  }
  EXPECT_GT(ctx0_zero, static_cast<std::size_t>(probes * 0.7));
  EXPECT_GT(ctx1_one, static_cast<std::size_t>(probes * 0.7));
}

TEST(ContextualBanditPolicy, SinglePlainBanditCannotSeparateContexts) {
  // The control for the test above: a context-blind bandit on the same
  // alternating problem converges to ~50% reward, the contextual one to
  // ~90%. This is the E1 design rationale in miniature.
  BanditPolicy blind(std::make_unique<learn::EpsilonGreedy>(2, 0.1));
  auto aware = make_policy();
  KnowledgeBase kb;
  sim::Rng rng(2);
  double blind_reward = 0.0, aware_reward = 0.0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    const double ctx = i % 2 ? 1.0 : 0.0;
    kb.put_number("ctx", ctx, i);
    auto d = blind.decide(i, kb, kActions, rng);
    double r = ((ctx == 0.0) == (d.action_index == 0)) ? 1.0 : 0.0;
    blind.feedback(r);
    if (i > n / 2) blind_reward += r;
    d = aware.decide(i, kb, kActions, rng);
    r = ((ctx == 0.0) == (d.action_index == 0)) ? 1.0 : 0.0;
    aware.feedback(r);
    if (i > n / 2) aware_reward += r;
  }
  EXPECT_GT(aware_reward, blind_reward * 1.3);
}

TEST(ContextualBanditPolicy, OutOfRangeContextClampsToLast) {
  auto p = ContextualBanditPolicy(
      2, [](const KnowledgeBase&) { return std::size_t{99}; },
      [] { return std::make_unique<learn::EpsilonGreedy>(2, 0.0); });
  KnowledgeBase kb;
  sim::Rng rng(3);
  const auto d = p.decide(0, kb, kActions, rng);  // must not crash
  EXPECT_LT(d.action_index, 2u);
}

TEST(ContextualBanditPolicy, RationaleNamesContext) {
  auto p = make_policy();
  KnowledgeBase kb;
  kb.put_number("ctx", 1.0, 0.0);
  sim::Rng rng(4);
  const auto d = p.decide(0, kb, kActions, rng);
  EXPECT_NE(d.rationale.find("context 1"), std::string::npos);
  EXPECT_EQ(d.evidence, std::vector<std::string>{"ctx"});
}

TEST(ContextualBanditPolicy, ResetClearsEveryContext) {
  auto p = make_policy();
  KnowledgeBase kb;
  sim::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    kb.put_number("ctx", i % 2 ? 1.0 : 0.0, i);
    p.decide(i, kb, kActions, rng);
    p.feedback(1.0);
  }
  p.reset();
  for (std::size_t c = 0; c < p.contexts(); ++c) {
    EXPECT_DOUBLE_EQ(p.bandit(c).value(0), 0.0);
    EXPECT_DOUBLE_EQ(p.bandit(c).value(1), 0.0);
  }
}

TEST(ContextualBanditPolicy, FeedbackRoutesToDecidingContext) {
  auto p = make_policy();
  KnowledgeBase kb;
  sim::Rng rng(6);
  kb.put_number("ctx", 0.0, 0.0);
  const auto d = p.decide(0, kb, kActions, rng);
  kb.put_number("ctx", 1.0, 1.0);  // context moved after the decision
  p.feedback(1.0);                 // must credit context 0's bandit
  EXPECT_GT(p.bandit(0).value(d.action_index), 0.9);
  EXPECT_DOUBLE_EQ(p.bandit(1).value(0), 0.0);
  EXPECT_DOUBLE_EQ(p.bandit(1).value(1), 0.0);
}

TEST(ContextualBanditPolicy, NameAndContexts) {
  auto p = make_policy(3);
  EXPECT_EQ(p.name(), "ctx-bandit");
  EXPECT_EQ(p.contexts(), 3u);
}

}  // namespace
}  // namespace sa::core
