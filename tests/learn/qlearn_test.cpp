#include "learn/qlearn.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace sa::learn {
namespace {

TEST(QLearner, Dimensions) {
  QLearner q(4, 3);
  EXPECT_EQ(q.states(), 4u);
  EXPECT_EQ(q.actions(), 3u);
  EXPECT_DOUBLE_EQ(q.q(0, 0), 0.0);
}

TEST(QLearner, OptimisticInitialisation) {
  QLearner::Params p;
  p.q0 = 5.0;
  QLearner q(2, 2, p);
  EXPECT_DOUBLE_EQ(q.q(1, 1), 5.0);
}

TEST(QLearner, TerminalUpdateMovesTowardReward) {
  QLearner::Params p;
  p.alpha = 0.5;
  QLearner q(1, 2, p);
  q.update_terminal(0, 0, 10.0);
  EXPECT_DOUBLE_EQ(q.q(0, 0), 5.0);
  q.update_terminal(0, 0, 10.0);
  EXPECT_DOUBLE_EQ(q.q(0, 0), 7.5);
}

TEST(QLearner, GreedyPicksHighestQ) {
  QLearner q(1, 3);
  q.update_terminal(0, 1, 1.0);
  EXPECT_EQ(q.greedy(0), 1u);
}

TEST(QLearner, BootstrapPropagatesValueBackwards) {
  // Chain MDP: s0 -a0-> s1 -a0-> terminal reward 1.
  QLearner::Params p;
  p.alpha = 0.5;
  p.gamma = 0.9;
  QLearner q(2, 1, p);
  for (int i = 0; i < 50; ++i) {
    q.update(0, 0, 0.0, 1);
    q.update_terminal(1, 0, 1.0);
  }
  EXPECT_NEAR(q.q(1, 0), 1.0, 1e-3);
  EXPECT_NEAR(q.q(0, 0), 0.9, 1e-2);
}

TEST(QLearner, LearnsOptimalPolicyInTwoStateMdp) {
  // s0: action 0 gives r=0 and stays; action 1 gives r=0 but moves to s1.
  // s1: action 0 gives r=1 and returns to s0; action 1 gives r=0, stays.
  QLearner::Params p;
  p.alpha = 0.2;
  p.gamma = 0.9;
  p.epsilon = 0.2;
  QLearner q(2, 2, p);
  sim::Rng rng(33);
  std::size_t s = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t a = q.select(s, rng);
    std::size_t s2 = s;
    double r = 0.0;
    if (s == 0 && a == 1) s2 = 1;
    if (s == 1 && a == 0) {
      r = 1.0;
      s2 = 0;
    }
    q.update(s, a, r, s2);
    s = s2;
  }
  EXPECT_EQ(q.greedy(0), 1u);
  EXPECT_EQ(q.greedy(1), 0u);
}

TEST(QLearner, EpsilonDecayReachesFloor) {
  QLearner::Params p;
  p.epsilon = 1.0;
  p.eps_decay = 0.5;
  p.eps_min = 0.05;
  QLearner q(1, 2, p);
  sim::Rng rng(4);
  q.update_terminal(0, 0, 1.0);
  // After heavy decay, exploration is at the floor: mostly greedy.
  for (int i = 0; i < 100; ++i) q.select(0, rng);
  std::size_t greedy = 0;
  for (int i = 0; i < 1000; ++i) greedy += q.select(0, rng) == 0 ? 1 : 0;
  EXPECT_GT(greedy, 900u);
}

TEST(QLearner, ResetRestoresInitialValues) {
  QLearner::Params p;
  p.q0 = 2.0;
  QLearner q(2, 2, p);
  q.update_terminal(0, 0, 10.0);
  q.reset();
  EXPECT_DOUBLE_EQ(q.q(0, 0), 2.0);
}

}  // namespace
}  // namespace sa::learn
