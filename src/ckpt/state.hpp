// Component serializers and the WorldCheckpoint registry (sa::ckpt).
//
// Each stateful layer exposes a small POD-ish checkpoint seam
// (sim::Engine::Timeline, sim::Rng::State, fault::Injector::State,
// core::DegradationPolicy::State, core::AgentRuntime::State, and
// KnowledgeBase::restore_key); this header turns those seams into bytes —
// one save_/load_ pair per component, all through format.hpp's typed
// Buffer/Cursor so doubles round-trip bit-exactly.
//
// Canonical-bytes property: every serializer derives its output from a
// canonical ordering (the engine sorts pending events by (t, order, seq);
// the knowledge base iterates keys in ascending order; injector streams
// are in (process, surface) order). Two worlds in the same state therefore
// serialize to *identical bytes*, which is what WorldCheckpoint::verify()
// exploits: restore is attested by re-exporting every component and
// byte-comparing against the checkpoint — any divergence is a typed
// kStateDivergence error naming the section, never a silent drift.
//
// Restore protocol (the order matters):
//   1. Rebuild the world from the same recipe under engine.begin_restore()
//      — _tagged schedulers register callables without arming them, and
//      mid-run one-shots (exchange retries, fault end events) register
//      rebinder factories instead.
//   2. WorldCheckpoint::restore() feeds each component its section. The
//      engine component must be registered LAST: import_timeline() arms
//      the heap against everything the other components just rebuilt and
//      leaves restore mode.
//   3. Optionally WorldCheckpoint::verify() re-exports and byte-compares.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/format.hpp"
#include "core/degrade.hpp"
#include "core/knowledge.hpp"
#include "core/runtime.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace sa::ckpt {

// -- sim::Engine --------------------------------------------------------------

void save_timeline(const sim::Engine::Timeline& tl, Buffer& out);
[[nodiscard]] Status load_timeline(Cursor& in, sim::Engine::Timeline& out);
/// export_timeline + save_timeline; kUntaggedEvent if any pending event
/// lacks a tag.
[[nodiscard]] Status save_engine(const sim::Engine& engine, Buffer& out);
/// load_timeline + import_timeline; the engine must be in restore mode
/// with the world already rebuilt. kUnboundTag / kShapeMismatch on rebind
/// failures.
[[nodiscard]] Status restore_engine(Cursor& in, sim::Engine& engine);

// -- sim::Rng -----------------------------------------------------------------

void save_rng(const sim::Rng::State& s, Buffer& out);
[[nodiscard]] Status load_rng(Cursor& in, sim::Rng::State& out);

// -- core::Value / KnowledgeItem / KnowledgeBase ------------------------------

void save_value(const core::Value& v, Buffer& out);
[[nodiscard]] Status load_value(Cursor& in, core::Value& out);
void save_item(const core::KnowledgeItem& item, Buffer& out);
[[nodiscard]] Status load_item(Cursor& in, core::KnowledgeItem& out);
/// Full store: every key's retained history, keys in ascending order.
void save_knowledge(const core::KnowledgeBase& kb, Buffer& out);
/// Restores into `kb` via restore_key (no listener notifications, no
/// default-TTL stamping). kShapeMismatch if history_limit differs.
[[nodiscard]] Status load_knowledge(Cursor& in, core::KnowledgeBase& kb);

// -- fault::Injector ----------------------------------------------------------

void save_injector(const fault::Injector& inj, Buffer& out);
/// Decodes then Injector::import_state — bind() must already have rebuilt
/// the same chains. kShapeMismatch on plan/surface drift.
[[nodiscard]] Status restore_injector(Cursor& in, fault::Injector& inj);

// -- core::DegradationPolicy --------------------------------------------------

void save_ladder(const core::DegradationPolicy& p, Buffer& out);
[[nodiscard]] Status restore_ladder(Cursor& in, core::DegradationPolicy& p);

// -- core::AgentRuntime -------------------------------------------------------

void save_runtime(const core::AgentRuntime& rt, Buffer& out);
[[nodiscard]] Status restore_runtime(Cursor& in, core::AgentRuntime& rt);

// -- WorldCheckpoint ----------------------------------------------------------

/// Optional OO seam for components that prefer virtual dispatch over the
/// lambda registry below.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  [[nodiscard]] virtual std::string ckpt_name() const = 0;
  [[nodiscard]] virtual Status ckpt_save(Buffer& out) const = 0;
  [[nodiscard]] virtual Status ckpt_restore(Cursor& in) = 0;
};

/// Named registry of checkpointable components plus a meta header. The
/// same registry drives save (export each component into its own
/// CRC-framed section), restore (feed each section back, in registration
/// order), and verify (re-export and byte-compare — the attestation).
class WorldCheckpoint {
 public:
  /// The run's identity, stored in section "meta". `recipe` is whatever
  /// string rebuilds the world (a gen spec, an experiment id); restore
  /// refuses a checkpoint whose identity disagrees (kShapeMismatch) so a
  /// stale file can never silently resume a different run.
  struct Meta {
    double t = 0.0;          ///< sim time of the snapshot
    std::uint64_t seed = 0;
    std::string recipe;
    std::string fault_plan;  ///< canonical FaultPlan spec ("" = none)
  };

  /// Registers a component. Sections are written/restored in registration
  /// order; register the engine LAST (see restore protocol above).
  void add(std::string name, std::function<Status(Buffer&)> save,
           std::function<Status(Cursor&)> restore);
  void add(Checkpointable& c);
  [[nodiscard]] std::size_t components() const noexcept {
    return components_.size();
  }

  /// Serializes meta + every component into a sealed checkpoint image.
  [[nodiscard]] Status save(const Meta& meta, std::string& image) const;
  /// save() + write_file_atomic().
  [[nodiscard]] Status save_file(const Meta& meta,
                                 const std::string& path) const;

  [[nodiscard]] static Status read_meta(const Reader& r, Meta& out);

  /// Feeds each registered component its section, in registration order.
  /// With `expect`, first validates recipe/seed/fault_plan identity
  /// (kShapeMismatch on disagreement). kMissingSection if a component's
  /// section is absent.
  [[nodiscard]] Status restore(const Reader& r,
                               const Meta* expect = nullptr) const;

  /// Byte attestation: re-exports every component and compares against the
  /// checkpoint's section payloads. kStateDivergence (naming the section)
  /// if the live world does not byte-match the snapshot.
  [[nodiscard]] Status verify(const Reader& r) const;

 private:
  struct Component {
    std::string name;
    std::function<Status(Buffer&)> save;
    std::function<Status(Cursor&)> restore;
  };
  static std::string section_name(const std::string& component);

  std::vector<Component> components_;
};

}  // namespace sa::ckpt
