file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_goalchange.dir/bench_e11_goalchange.cpp.o"
  "CMakeFiles/bench_e11_goalchange.dir/bench_e11_goalchange.cpp.o.d"
  "bench_e11_goalchange"
  "bench_e11_goalchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_goalchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
