// E5 — levels-of-self-awareness ablation (paper Section IV, concept 2).
//
// The framework deliberately supports partial stacks: "while full-stack
// computational self-awareness may often be beneficial ... there are also
// cases where a more minimal approach is appropriate". This experiment
// enables the levels incrementally on the multicore manager and measures
// what each one buys:
//
//   none            — static design-time configuration (no awareness)
//   stimulus        — reactive threshold rules (readings only, no models)
//   +goal           — model-predictive decisions against the explicit goal
//                     model, but with raw last-epoch demand only
//   +goal+time      — adds demand forecasting (time awareness feeds the
//                     self-model's predictions)
//   full (+meta)    — adds meta-self-awareness (drift-triggered resets;
//                     on this recurring workload it should neither help
//                     nor hurt — its value shows in E6's one-way drift)
//
// A second table runs the same ablation on the volunteer cloud, where the
// interaction level (learned per-node reliability) and the time level
// (demand forecasting) feed the autoscaler's self-prediction directly.
#include <iostream>
#include <string>
#include <vector>

#include "cloud/autoscaler.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::multicore;

constexpr int kEpochs = 960;
const std::vector<std::uint64_t> kSeeds{51, 52, 53};

struct Row {
  std::string name;
  Manager::Variant variant;
  core::LevelSet levels;
};

double run(const Row& row, std::uint64_t seed) {
  Platform platform(PlatformConfig::big_little(2, 4), seed);
  auto workload = PhasedWorkload::standard();
  Manager::Params p;
  p.variant = row.variant;
  p.levels = row.levels;
  p.seed = seed;
  Manager mgr(platform, p);
  sim::RunningStats u;
  for (int i = 0; i < kEpochs; ++i) {
    workload.apply(platform);
    u.add(mgr.run_epoch());
  }
  return u.mean();
}

}  // namespace

int main() {
  using core::Level;
  using core::LevelSet;
  std::cout << "E5: what does each self-awareness level buy? Multicore "
               "scenario, " << kEpochs << " epochs, " << kSeeds.size()
            << " seeds.\n\n";

  const std::vector<Row> rows{
      {"none (static)", Manager::Variant::Static, LevelSet{}},
      {"stimulus (reactive)", Manager::Variant::Reactive,
       LevelSet::minimal()},
      {"stimulus+goal", Manager::Variant::SelfAware,
       LevelSet{Level::Stimulus, Level::Goal}},
      {"stimulus+goal+time", Manager::Variant::SelfAware,
       LevelSet{Level::Stimulus, Level::Goal, Level::Time}},
      {"full stack (+meta)", Manager::Variant::SelfAware,
       LevelSet::full()},
  };

  sim::Table t("E5.1  multicore: mean utility by enabled awareness levels",
               {"configuration", "levels", "utility"});
  for (const auto& row : rows) {
    sim::RunningStats u;
    for (const auto seed : kSeeds) u.add(run(row, seed));
    t.add_row({row.name, row.levels.to_string(), u.mean()});
  }
  t.print(std::cout);

  // ---- Cloud ablation: interaction + time awareness matter directly ----
  struct CloudRow {
    std::string name;
    LevelSet levels;
  };
  const std::vector<CloudRow> cloud_rows{
      {"goal only", LevelSet{Level::Stimulus, Level::Goal}},
      {"+time (forecast)",
       LevelSet{Level::Stimulus, Level::Goal, Level::Time}},
      {"+interaction (reliability)",
       LevelSet{Level::Stimulus, Level::Goal, Level::Interaction}},
      {"+time+interaction",
       LevelSet{Level::Stimulus, Level::Goal, Level::Time,
                Level::Interaction}},
      {"full stack (+meta)", LevelSet::full()},
  };

  sim::Table tc("E5.2  volunteer cloud: SLA/cost by enabled levels",
                {"configuration", "sla", "cost", "utility"});
  for (const auto& row : cloud_rows) {
    sim::RunningStats sla, cost, u;
    for (const auto seed : kSeeds) {
      cloud::Cluster::Params cp;
      cp.nodes = 30;
      cp.seed = seed;
      cp.boot_s = 10.0;  // one epoch of provisioning lag
      cloud::Cluster cluster(cp);
      // A steep, fast diurnal cycle: demand moves by whole nodes' worth
      // between control epochs, so anticipating it (vs chasing it) shows.
      cloud::DemandModel::Params dp;
      dp.base = 80.0;
      dp.diurnal_amp = 0.6;
      dp.period_s = 300.0;
      dp.burst_prob = 0.03;
      dp.burst_mult = 2.0;
      cloud::DemandModel demand(dp);
      cloud::Autoscaler::Params ap;
      ap.variant = cloud::Autoscaler::Variant::SelfAware;
      ap.levels = row.levels;
      ap.seasonal_epochs = 30;  // period_s / epoch_s
      ap.seed = seed;
      cloud::Autoscaler as(cluster, demand, ap);
      sim::RunningStats tail_sla, tail_cost;
      for (int e = 0; e < 400; ++e) {
        const auto ep = as.run_epoch();
        if (e >= 100) {
          tail_sla.add(ep.sla);
          tail_cost.add(ep.cost);
        }
      }
      sla.add(tail_sla.mean());
      cost.add(tail_cost.mean());
      u.add(as.utility().mean());
    }
    tc.add_row({row.name, sla.mean(), cost.mean(), u.mean()});
  }
  tc.print(std::cout);
  return 0;
}
