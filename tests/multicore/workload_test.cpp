#include "multicore/workload.hpp"

#include <gtest/gtest.h>

namespace sa::multicore {
namespace {

TEST(PhasedWorkload, StandardHasThreePhases) {
  const auto w = PhasedWorkload::standard();
  ASSERT_EQ(w.phases().size(), 3u);
  EXPECT_EQ(w.phases()[0].name, "steady");
  EXPECT_EQ(w.phases()[1].name, "burst");
  EXPECT_EQ(w.phases()[2].name, "interactive");
  EXPECT_DOUBLE_EQ(w.cycle_length(), 60.0);
}

TEST(PhasedWorkload, PhaseIndexWalksSchedule) {
  const auto w = PhasedWorkload::standard();
  EXPECT_EQ(w.phase_index(0.0), 0u);
  EXPECT_EQ(w.phase_index(19.9), 0u);
  EXPECT_EQ(w.phase_index(20.0), 1u);
  EXPECT_EQ(w.phase_index(39.9), 1u);
  EXPECT_EQ(w.phase_index(40.0), 2u);
  EXPECT_EQ(w.phase_index(59.9), 2u);
}

TEST(PhasedWorkload, CyclesWrapAround) {
  const auto w = PhasedWorkload::standard();
  EXPECT_EQ(w.phase_index(60.0), 0u);
  EXPECT_EQ(w.phase_index(145.0), w.phase_index(25.0));
}

TEST(PhasedWorkload, CurrentReturnsActivePhase) {
  const auto w = PhasedWorkload::standard();
  EXPECT_EQ(w.current(25.0).name, "burst");
}

TEST(PhasedWorkload, ApplySetsPlatformWorkload) {
  Platform p(PlatformConfig::big_little(1, 1), 1);
  PhasedWorkload w({{"only", 10.0, 5.0, 0.1, 0.0}});
  w.apply(p);
  p.run_for(10.0);
  const auto s = p.harvest();
  // rate 5/s over 10 s ≈ 50 arrivals.
  EXPECT_NEAR(static_cast<double>(s.arrived), 50.0, 25.0);
}

TEST(PhasedWorkload, BurstDemandExceedsSteady) {
  const auto w = PhasedWorkload::standard();
  const auto& steady = w.phases()[0];
  const auto& burst = w.phases()[1];
  EXPECT_GT(burst.rate * burst.mean_work, steady.rate * steady.mean_work);
}

TEST(PhasedWorkload, SinglePhaseAlwaysActive) {
  PhasedWorkload w({{"p", 7.0, 1.0, 1.0, 0.0}});
  EXPECT_EQ(w.phase_index(3.0), 0u);
  EXPECT_EQ(w.phase_index(700.0), 0u);
}

}  // namespace
}  // namespace sa::multicore
