// Tests for the provisioning-lag mechanics (Cluster::Params::boot_s).
#include <gtest/gtest.h>

#include <numeric>

#include "cloud/cluster.hpp"

namespace sa::cloud {
namespace {

std::vector<std::size_t> natural_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

Cluster reliable_cluster(double boot_s) {
  Cluster::Params p;
  p.nodes = 8;
  p.mttf_mean_s = 1e9;  // never fail: isolate the boot behaviour
  p.boot_s = boot_s;
  p.seed = 4;
  return Cluster(p);
}

TEST(BootLag, FreshEnrolmentDeliversNothingFirstEpoch) {
  auto c = reliable_cluster(10.0);
  c.enrol(natural_order(8), 8);
  const auto first = c.run_epoch(10.0);
  EXPECT_DOUBLE_EQ(first.capacity, 0.0);
  EXPECT_DOUBLE_EQ(first.served, 0.0);
  const auto second = c.run_epoch(10.0);
  EXPECT_GT(second.capacity, 0.0);
  EXPECT_GT(second.served, 0.0);
}

TEST(BootLag, ZeroLagDeliversImmediately) {
  auto c = reliable_cluster(0.0);
  c.enrol(natural_order(8), 8);
  EXPECT_GT(c.run_epoch(10.0).capacity, 0.0);
}

TEST(BootLag, ReEnrolmentOfAlreadyEnrolledNodeHasNoLag) {
  auto c = reliable_cluster(10.0);
  c.enrol(natural_order(8), 4);
  c.run_epoch(5.0);  // pays the boot epoch
  c.run_epoch(5.0);
  const double cap_before = c.run_epoch(5.0).capacity;
  // Re-issue the same enrolment: nothing should reboot.
  c.enrol(natural_order(8), 4);
  EXPECT_NEAR(c.run_epoch(5.0).capacity, cap_before, 1e-9);
}

TEST(BootLag, GrowingEnrolmentOnlyDelaysTheNewNodes) {
  auto c = reliable_cluster(10.0);
  c.enrol(natural_order(8), 4);
  c.run_epoch(5.0);
  const double cap4 = c.run_epoch(5.0).capacity;
  c.enrol(natural_order(8), 8);  // add 4 more
  const double cap_transition = c.run_epoch(5.0).capacity;
  EXPECT_NEAR(cap_transition, cap4, 1e-9);  // veterans only this epoch
  EXPECT_GT(c.run_epoch(5.0).capacity, cap4);  // everyone next epoch
}

TEST(BootLag, CostAccruesDuringBoot) {
  // Enrolment is paid for from the moment it is requested — the lag makes
  // over-eager scaling expensive, which is what the autoscaler must learn.
  auto c = reliable_cluster(10.0);
  c.enrol(natural_order(8), 8);
  EXPECT_GT(c.run_epoch(10.0).cost, 0.0);
}

}  // namespace
}  // namespace sa::cloud
