// HTTP/1.1 request-parser grammar: malformed request lines, oversized
// headers, pipelined requests and partial reads — the exact surface the
// embedded server feeds it from recv() chunks.
#include <gtest/gtest.h>

#include <string>

#include "serve/http.hpp"

namespace {

using namespace sa::serve;

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser p;
  ASSERT_TRUE(p.feed("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  HttpRequest req;
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "");
  EXPECT_EQ(req.version_minor, 1);
  ASSERT_NE(req.header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*req.header("HOST"), "x");
  EXPECT_FALSE(p.next_request(req));
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(HttpParser, SplitsTargetIntoPathAndQuery) {
  HttpParser p;
  ASSERT_TRUE(p.feed("GET /control?cmd=pause&x=1 HTTP/1.1\r\n\r\n"));
  HttpRequest req;
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.path, "/control");
  EXPECT_EQ(req.query, "cmd=pause&x=1");
}

TEST(HttpParser, AcceptsBareLfLineEndings) {
  HttpParser p;
  ASSERT_TRUE(p.feed("GET / HTTP/1.1\nHost: y\n\n"));
  HttpRequest req;
  ASSERT_TRUE(p.next_request(req));
  ASSERT_NE(req.header("Host"), nullptr);
  EXPECT_EQ(*req.header("Host"), "y");
}

TEST(HttpParser, ReassemblesPartialReads) {
  // Byte-at-a-time delivery: nothing is ready until the final separator.
  const std::string raw =
      "POST /control HTTP/1.1\r\nContent-Length: 9\r\n\r\ncmd=pause";
  HttpParser p;
  HttpRequest req;
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_TRUE(p.feed(std::string(1, raw[i])));
    ASSERT_FALSE(p.next_request(req)) << "ready after byte " << i;
  }
  ASSERT_TRUE(p.feed(std::string(1, raw.back())));
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "cmd=pause");
}

TEST(HttpParser, QueuesPipelinedRequests) {
  HttpParser p;
  ASSERT_TRUE(
      p.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
             "POST /c HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"));
  HttpRequest req;
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.path, "/a");
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.path, "/b");
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.path, "/c");
  EXPECT_EQ(req.body, "hi");
  EXPECT_FALSE(p.next_request(req));
}

TEST(HttpParser, BodySplitAcrossFeeds) {
  HttpParser p;
  ASSERT_TRUE(p.feed("POST /c HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345"));
  HttpRequest req;
  ASSERT_FALSE(p.next_request(req));
  ASSERT_TRUE(p.feed("67890"));
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.body, "1234567890");
}

TEST(HttpParser, RejectsMalformedRequestLines) {
  for (const char* raw : {
           "GET\r\n\r\n",                        // no target/version
           "GET /x\r\n\r\n",                     // no version
           "GET /x HTTP/1.1 extra\r\n\r\n",      // trailing junk
           "G@T /x HTTP/1.1\r\n\r\n",            // method not a token
           " /x HTTP/1.1\r\n\r\n",               // empty method
       }) {
    HttpParser p;
    EXPECT_FALSE(p.feed(raw)) << raw;
    EXPECT_TRUE(p.failed());
    EXPECT_EQ(p.error_status(), 400) << raw;
  }
}

TEST(HttpParser, RejectsUnsupportedVersion) {
  HttpParser p;
  EXPECT_FALSE(p.feed("GET / HTTP/2.0\r\n\r\n"));
  EXPECT_EQ(p.error_status(), 505);
}

TEST(HttpParser, AcceptsHttp10) {
  HttpParser p;
  ASSERT_TRUE(p.feed("GET / HTTP/1.0\r\n\r\n"));
  HttpRequest req;
  ASSERT_TRUE(p.next_request(req));
  EXPECT_EQ(req.version_minor, 0);
}

TEST(HttpParser, RejectsOversizedRequestLineBeforeCompletion) {
  // A request line longer than the limit must fail *while streaming in*,
  // not after unbounded buffering.
  HttpParser p(HttpParser::Limits{.max_request_line = 64});
  std::string line = "GET /";
  line.append(1000, 'a');
  EXPECT_FALSE(p.feed(line));  // no newline yet — limit already enforced
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, RejectsOversizedHeaderBlock) {
  HttpParser p(
      HttpParser::Limits{.max_request_line = 64, .max_header_bytes = 256});
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 32; ++i) {
    raw += "X-Pad-" + std::to_string(i) + ": " + std::string(32, 'p') +
           "\r\n";
  }
  raw += "\r\n";
  EXPECT_FALSE(p.feed(raw));
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsTooManyHeaderFields) {
  HttpParser p(HttpParser::Limits{.max_headers = 4});
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) raw += "H" + std::to_string(i) + ": v\r\n";
  raw += "\r\n";
  EXPECT_FALSE(p.feed(raw));
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, RejectsMalformedHeaderField) {
  HttpParser p;
  EXPECT_FALSE(p.feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"));
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, RejectsBadContentLength) {
  HttpParser p;
  EXPECT_FALSE(p.feed("POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n"));
  EXPECT_EQ(p.error_status(), 400);
}

TEST(HttpParser, RejectsOversizedBody) {
  HttpParser p(HttpParser::Limits{.max_body = 16});
  EXPECT_FALSE(p.feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"));
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, RejectsTransferEncoding) {
  HttpParser p;
  EXPECT_FALSE(
      p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
  EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParser, StaysFailedAfterError) {
  HttpParser p;
  EXPECT_FALSE(p.feed("GET / HTTP/2.0\r\n\r\n"));
  // Later (well-formed) bytes must not resurrect the connection.
  EXPECT_FALSE(p.feed("GET / HTTP/1.1\r\n\r\n"));
  HttpRequest req;
  EXPECT_FALSE(p.next_request(req));
  EXPECT_EQ(p.error_status(), 505);
}

TEST(HttpParser, CompactsConsumedPrefix) {
  // Many keep-alive requests through one parser must not grow the buffer
  // without bound.
  HttpParser p;
  HttpRequest req;
  const std::string raw = "GET /metrics HTTP/1.1\r\nHost: loop\r\n\r\n";
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(p.feed(raw));
    ASSERT_TRUE(p.next_request(req));
  }
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(HttpResponse, SerialisesHeadOnlyWithFullContentLength) {
  HttpResponse resp;
  resp.body = "0123456789";
  const std::string full = resp.serialise(/*head_only=*/false);
  const std::string head = resp.serialise(/*head_only=*/true);
  EXPECT_NE(full.find("Content-Length: 10"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 10"), std::string::npos);
  EXPECT_NE(full.find("0123456789"), std::string::npos);
  EXPECT_EQ(head.find("0123456789"), std::string::npos);
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(sa::serve::json_escape("a\"b\\c\nd\te\rf"),
            "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(sa::serve::json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
