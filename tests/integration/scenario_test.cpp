// Integration tests: whole-system scenarios crossing module boundaries.
// These are slower than unit tests but still bounded (< ~1 s each); they
// pin down the end-to-end properties the benches rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/autoscaler.hpp"
#include "core/runtime.hpp"
#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "multicore/manager.hpp"
#include "multicore/workload.hpp"
#include "svc/fleet.hpp"

namespace {

using namespace sa;

TEST(Integration, MulticoreRunIsBitwiseDeterministic) {
  auto run = [] {
    multicore::Platform platform(
        multicore::PlatformConfig::big_little(2, 4), 99);
    auto workload = multicore::PhasedWorkload::standard();
    multicore::Manager::Params p;
    p.seed = 99;
    multicore::Manager mgr(platform, p);
    std::vector<double> utilities;
    for (int i = 0; i < 120; ++i) {
      workload.apply(platform);
      utilities.push_back(mgr.run_epoch());
    }
    return utilities;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "diverged at epoch " << i;
  }
}

TEST(Integration, MulticoreManagerNeverProducesNaN) {
  multicore::Platform platform(multicore::PlatformConfig::big_little(2, 4),
                               7);
  auto workload = multicore::PhasedWorkload::standard();
  multicore::Manager mgr(platform, {});
  for (int i = 0; i < 200; ++i) {
    workload.apply(platform);
    const double u = mgr.run_epoch();
    ASSERT_FALSE(std::isnan(u));
    ASSERT_FALSE(std::isnan(mgr.last_stats().mean_power));
    ASSERT_FALSE(std::isnan(mgr.last_stats().p95_latency));
  }
}

TEST(Integration, AutoscalerLongRunInvariants) {
  cloud::Cluster::Params cp;
  cp.nodes = 20;
  cp.boot_s = 10.0;
  cp.seed = 5;
  cloud::Cluster cluster(cp);
  cloud::DemandModel demand;
  cloud::Autoscaler::Params ap;
  ap.seed = 5;
  cloud::Autoscaler as(cluster, demand, ap);
  for (int e = 0; e < 300; ++e) {
    const auto ep = as.run_epoch();
    ASSERT_LE(as.target(), cluster.size());
    ASSERT_GE(ep.sla, 0.0);
    ASSERT_LE(ep.sla, 1.0);
    ASSERT_GE(ep.cost, 0.0);
    ASSERT_FALSE(std::isnan(ep.capacity));
  }
  // Something was actually served over the run.
  EXPECT_GT(as.sla().mean(), 0.2);
}

TEST(Integration, CpnRecoversAfterAttack) {
  const auto topo = cpn::Topology::grid(4, 6, 4, 77);
  cpn::PacketNetwork::Params np;
  np.router = cpn::PacketNetwork::Router::QRouting;
  np.dos_defence = true;
  np.seed = 77;
  cpn::PacketNetwork net(topo, np);
  cpn::TrafficParams tp;
  tp.attack_start = 2000.0;
  tp.attack_end = 4000.0;
  tp.seed = 77;
  cpn::TrafficGenerator gen(topo, tp);

  auto window = [&](int ticks) {
    for (int i = 0; i < ticks; ++i) {
      gen.tick(net);
      net.step();
    }
    return net.harvest();
  };
  const auto before = window(2000);
  window(2000);  // the attack itself
  const auto after = window(2000);
  EXPECT_GT(after.delivery_rate(), 0.95);
  EXPECT_LT(after.mean_latency, 2.0 * before.mean_latency);
}

TEST(Integration, CameraFleetHoldsCoverageWhileCuttingMessages) {
  svc::NetworkParams world;
  world.seed = 41;
  auto net = svc::Network::clustered_layout(world);
  svc::CameraFleet::Params p;
  p.seed = 41;
  svc::CameraFleet fleet(net, p);
  sim::RunningStats early_msgs, late_msgs, late_cov;
  for (int e = 0; e < 200; ++e) {
    const auto ne = fleet.run_epoch();
    if (e < 40) early_msgs.add(ne.messages);
    if (e >= 160) {
      late_msgs.add(ne.messages);
      late_cov.add(ne.coverage);
    }
  }
  EXPECT_GT(late_cov.mean(), 0.5);
  // Learning should not leave the fleet stuck in permanent all-broadcast.
  EXPECT_LT(late_msgs.mean(), 300.0);
}

TEST(Integration, RuntimeDrivesManagerAgentsOnTheEngine) {
  // Two thermostat-style agents at different control periods sharing
  // knowledge through the runtime — the multi-agent glue end to end.
  sim::Engine engine;
  core::AgentRuntime rt(engine);
  double temp = 10.0;
  core::AgentConfig cfg;
  cfg.seed = 8;
  core::SelfAwareAgent sensor_agent("sensornode", cfg);
  core::SelfAwareAgent display_agent("display", cfg);
  sensor_agent.add_sensor("temp", [&] { return temp; });
  rt.schedule(sensor_agent, 0.5);
  rt.schedule(display_agent, 2.0);
  rt.schedule_exchange({&sensor_agent, &display_agent}, 1.0);
  engine.at(25.0, [&] { temp = 30.0; });
  engine.run_until(50.0);

  EXPECT_EQ(sensor_agent.steps(), 100u);
  EXPECT_EQ(display_agent.steps(), 25u);
  // The display learned the latest temperature it never sensed itself.
  EXPECT_DOUBLE_EQ(
      display_agent.knowledge().number("shared.sensornode.temp"), 30.0);
}

}  // namespace
