// The knowledge base — the agent's self-model substrate.
//
// Everything an agent knows about itself and its world is a KnowledgeItem:
// a typed value with a timestamp, a confidence, a provenance tag, and a
// scope. Scope realises the paper's first framework concept (Section IV):
// *private* self-awareness covers knowledge of internal phenomena, while
// *public* self-awareness covers knowledge derived from / observable by the
// outside world. Only Public items are shared with peers by the collective
// layer.
//
// Data layout: keys are interned once into stable ids (the
// sim::TelemetryBus interned-id idiom); per-key state lives in an
// id-indexed arena of ring-buffered histories. The string-keyed API is a
// thin resolving shim — every lookup is one hash probe on a
// std::string_view (no temporary std::string, no tree walk), and reads on
// the hot path (number(), confidence(), fresh(), contains()) perform zero
// heap allocations. A sorted key index keeps keys()/stale_keys()/
// public_snapshot() deterministic (ascending key order), matching the old
// std::map iteration order byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/value.hpp"

namespace sa::core {

/// Visibility class of a knowledge item (paper, Section IV, concept 1).
enum class Scope {
  Private,  ///< internal phenomena; never shared outside the agent
  Public,   ///< externally observable / shareable knowledge
};

/// One piece of knowledge.
struct KnowledgeItem {
  Value value;
  double time = 0.0;        ///< when the knowledge was produced
  double confidence = 1.0;  ///< producer's self-assessed confidence in [0,1]
  Scope scope = Scope::Private;
  std::string source;       ///< producing process/sensor (provenance)
  /// Sim-time shelf life: the item counts as stale once now - time > ttl.
  /// Infinity (default) never expires. Stale items are still readable —
  /// staleness is a *signal* (see fresh()/stale_keys() and
  /// core::DegradationPolicy), not an eviction.
  double ttl = std::numeric_limits<double>::infinity();
};

/// Keyed, history-preserving store of knowledge items.
///
/// Keys are hierarchical strings by convention ("forecast.load.mae",
/// "peer.cam3.reliability"). Each key retains a bounded history so
/// time-awareness processes can inspect the past.
class KnowledgeBase {
 public:
  using Listener =
      std::function<void(const std::string& key, const KnowledgeItem&)>;

  /// Read-only, oldest-first view over one key's ring-buffered history.
  /// Indexable and iterable like the deque it replaced; valid until the
  /// next put() to the same key (or clear()).
  class HistoryView {
   public:
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    /// i-th oldest retained item (0 = oldest, size()-1 = latest).
    [[nodiscard]] const KnowledgeItem& operator[](std::size_t i) const {
      return ring_[(head_ + i) % cap_];
    }
    [[nodiscard]] const KnowledgeItem& front() const { return (*this)[0]; }
    [[nodiscard]] const KnowledgeItem& back() const {
      return (*this)[count_ - 1];
    }

    class iterator {
     public:
      iterator(const HistoryView* v, std::size_t i) : view_(v), i_(i) {}
      const KnowledgeItem& operator*() const { return (*view_)[i_]; }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const HistoryView* view_;
      std::size_t i_;
    };
    [[nodiscard]] iterator begin() const { return {this, 0}; }
    [[nodiscard]] iterator end() const { return {this, count_}; }

   private:
    friend class KnowledgeBase;
    HistoryView() = default;
    HistoryView(const KnowledgeItem* ring, std::size_t head, std::size_t count,
                std::size_t cap) noexcept
        : ring_(ring), head_(head), count_(count), cap_(cap) {}
    const KnowledgeItem* ring_ = nullptr;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t cap_ = 1;
  };

  /// `history_limit` — max items retained per key (oldest evicted first).
  explicit KnowledgeBase(std::size_t history_limit = 128)
      : history_limit_(history_limit) {}

  /// Stores a new item under `key`; notifies listeners.
  void put(std::string_view key, KnowledgeItem item);
  /// Convenience: store a numeric fact.
  void put_number(std::string_view key, double value, double time,
                  double confidence = 1.0, Scope scope = Scope::Private,
                  std::string source = {});

  /// Most recent item for `key`, if any.
  [[nodiscard]] std::optional<KnowledgeItem> latest(std::string_view key) const;
  /// Numeric view of the latest item (or `fallback` if absent/non-numeric).
  [[nodiscard]] double number(std::string_view key,
                              double fallback = 0.0) const;
  /// Confidence of the latest item (0 if absent).
  [[nodiscard]] double confidence(std::string_view key) const;
  /// Full retained history for `key` (empty if unknown), oldest first.
  [[nodiscard]] HistoryView history(std::string_view key) const;
  /// True if `key` has ever been written.
  [[nodiscard]] bool contains(std::string_view key) const;
  /// True when `key` has an item still within its TTL at sim time `now`.
  /// Unknown keys are not fresh. The stale-knowledge detector of the
  /// degradation machinery is built on this.
  [[nodiscard]] bool fresh(std::string_view key, double now) const;
  /// Keys under `prefix` (all keys if empty) whose latest item has
  /// outlived its TTL at `now`, sorted.
  [[nodiscard]] std::vector<std::string> stale_keys(std::string_view prefix,
                                                    double now) const;
  /// Default TTL stamped onto items put() without an explicit finite TTL
  /// (infinity = never expire). Existing items keep the TTL they carry.
  void set_default_ttl(double ttl) noexcept { default_ttl_ = ttl; }
  [[nodiscard]] double default_ttl() const noexcept { return default_ttl_; }
  /// All keys, sorted (deterministic iteration).
  [[nodiscard]] std::vector<std::string> keys() const;
  /// Keys beginning with `prefix`, sorted.
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      std::string_view prefix) const;
  /// Number of distinct keys.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Snapshot of the latest Public item per key — the shareable self.
  [[nodiscard]] std::vector<std::pair<std::string, KnowledgeItem>>
  public_snapshot() const;

  /// Registers a listener fired on every put(). Returns a handle usable
  /// with unsubscribe().
  std::size_t subscribe(Listener l);
  void unsubscribe(std::size_t handle);

  /// Drops all knowledge (scenario teardown). Listeners stay subscribed.
  void clear();

  /// Checkpoint seam (sa::ckpt): restores `key` with its exact retained
  /// history, oldest first. Unlike put(), items keep the TTL they carry
  /// (no default-TTL stamping) and listeners are not notified — restore
  /// must not re-trigger reactions that already ran before the snapshot.
  /// An empty `items` interns the key without content (a key that was
  /// only ever written under history_limit 0).
  void restore_key(std::string_view key, std::vector<KnowledgeItem> items);

  [[nodiscard]] std::size_t history_limit() const noexcept {
    return history_limit_;
  }

 private:
  using KeyId = std::uint32_t;
  static constexpr KeyId kNoKey = 0xffffffffu;

  /// Per-key store: a ring buffer that grows to history_limit_ then
  /// overwrites the oldest slot in place — no per-put node allocation once
  /// warm.
  struct KeyEntry {
    std::vector<KnowledgeItem> ring;
    std::size_t head = 0;  ///< index of the oldest item once the ring is full
  };

  [[nodiscard]] KeyId find(std::string_view key) const noexcept {
    const auto it = index_.find(key);
    return it == index_.end() ? kNoKey : it->second;
  }
  KeyId intern(std::string_view key);
  [[nodiscard]] const KnowledgeItem* latest_item(KeyId id) const noexcept {
    const KeyEntry& e = entries_[id];
    if (e.ring.empty()) return nullptr;
    const std::size_t newest =
        (e.head + e.ring.size() - 1) % e.ring.size();
    return &e.ring[newest];
  }

  std::size_t history_limit_;
  double default_ttl_ = std::numeric_limits<double>::infinity();
  /// Interned key names. A deque gives stable addresses, so index_'s
  /// string_view keys can point straight into it.
  std::deque<std::string> key_names_;
  std::unordered_map<std::string_view, KeyId> index_;
  std::vector<KeyEntry> entries_;       ///< id-indexed histories
  std::vector<KeyId> sorted_;           ///< ids in ascending key order
  std::vector<std::pair<std::size_t, Listener>> listeners_;
  std::size_t next_handle_ = 0;
};

}  // namespace sa::core
