// Per-binary experiment harness: flags + parallel runner + emitters.
//
// Every bench_e* binary constructs one Harness, runs its grid(s) through
// it, prints its sim::Table reports exactly as before, and returns
// harness.finish(). The harness contributes the shared behaviour: the
// --jobs/--seeds/--json flags, the thread pool, the per-grid aggregation
// recorded for JSON, the BENCH_<exp>.json document (metrics, per-seed
// raws, wall-clock, git rev) and the error/timing footer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/journal.hpp"
#include "exp/args.hpp"
#include "exp/ckpt_store.hpp"
#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace sa::exp {

/// Serialises one grid's results (variants, seeds, per-seed raw metrics,
/// notes, errors, per-variant summaries). Timing fields are emitted only
/// when `include_timing` — the parallel-determinism tests compare the
/// timing-free form byte-for-byte across thread counts.
[[nodiscard]] Json to_json(const GridResult& result,
                           bool include_timing = true);

/// Best-effort current git revision: $SA_GIT_REV, else `git rev-parse
/// --short HEAD`, else "unknown". Never throws.
[[nodiscard]] std::string git_rev();

/// Peak resident set size of this process in MiB (0 where unsupported).
[[nodiscard]] double peak_rss_mb();

class Harness {
 public:
  /// Parses argv; on --help prints usage and exits 0, on a bad flag
  /// prints the error and usage and exits 2. --serve on a build without
  /// SA_SERVE also exits 2 (with a pointer at the CMake option).
  Harness(std::string experiment, int argc, const char* const* argv);
  ~Harness();

  [[nodiscard]] const Options& options() const noexcept { return opts_; }
  [[nodiscard]] unsigned jobs() const noexcept { return runner_.jobs(); }
  [[nodiscard]] const std::string& experiment() const noexcept {
    return experiment_;
  }

  /// The seed list actually run: the grid's defaults, overridden by
  /// --seeds K (first K canonical seeds, then splitmix-derived extras —
  /// so K <= default count reproduces a prefix of the canonical runs).
  [[nodiscard]] std::vector<std::uint64_t> seeds_for(
      std::vector<std::uint64_t> defaults) const;

  /// Applies the --seeds override, evaluates the grid on the pool and
  /// records the result for the JSON document.
  ///
  /// When --trace or --metrics was given, exactly one *traced cell* —
  /// last variant, first seed, of the first grid run — receives a
  /// TaskContext with non-null telemetry/tracer/metrics (the last variant
  /// is by convention the full self-aware configuration). The same cell
  /// is picked regardless of --jobs, and trace timestamps are sim-time,
  /// so the exported file is bitwise-identical for every thread count.
  ///
  /// --serve designates the same cell as the *served cell*: it receives
  /// the telemetry/metrics hooks plus a TaskContext::serve_bind callback
  /// that attaches the HTTP bridge to the cell's engine. The endpoint
  /// starts before the grid runs (so scrapers can connect mid-run) and
  /// stays up through finish()'s --serve-linger window.
  GridResult run(Grid grid);

  /// The tracer/metrics captured from the traced cell (null before a
  /// traced run() happened).
  [[nodiscard]] const sim::Tracer* tracer() const noexcept {
    return tracer_.get();
  }
  [[nodiscard]] const sim::MetricsRegistry* metrics() const noexcept {
    return metrics_.get();
  }

  /// All grid results recorded so far.
  [[nodiscard]] const std::vector<GridResult>& results() const noexcept {
    return results_;
  }

  /// Accumulates one sharded cell's per-shard executed-event counts
  /// (shard::ShardedWorld::shard_events(): index = shard id, last entry =
  /// coordinator) into the document's meta block, elementwise across
  /// cells. Thread-safe; no-op argument lists are ignored.
  void note_shard_events(const std::vector<std::uint64_t>& events);
  /// The elementwise sums recorded so far (exposed for tests).
  [[nodiscard]] std::vector<std::uint64_t> shard_events() const;

  /// The full BENCH_<exp>.json document.
  [[nodiscard]] Json document() const;

  /// The harness checkpoint store (non-null when --checkpoint or --json
  /// was given — the latter so an interrupted run can still write a
  /// partial document). Exposed for tests.
  [[nodiscard]] const CheckpointStore* store() const noexcept {
    return store_.get();
  }

  /// Prints the timing/error footer, writes the JSON file when --json was
  /// given, and returns the process exit code (non-zero if any task
  /// failed or the JSON file could not be written).
  [[nodiscard]] int finish(std::ostream& os);
  [[nodiscard]] int finish();

 private:
  std::string experiment_;
  Options opts_;
  Runner runner_;
  std::vector<GridResult> results_;
  /// Engine::global_executed() at construction: document() reports the
  /// delta as this run's event throughput (events_total / events_per_sec).
  std::uint64_t events_at_start_ = 0;
  /// Per-shard executed-event totals accumulated by note_shard_events
  /// (meta "shard_events_total"/"shard_events_per_sec" when --shards > 1).
  mutable std::mutex shard_mutex_;
  std::vector<std::uint64_t> shard_events_;

  // Observability state for the traced cell (owned here so task lambdas
  // can reference it from worker threads; only the one traced cell ever
  // touches it).
  std::unique_ptr<sim::TelemetryBus> trace_bus_;
  std::unique_ptr<sim::Tracer> tracer_;
  std::unique_ptr<sim::MetricsRegistry> metrics_;
  bool trace_cell_assigned_ = false;
  std::string traced_cell_;  ///< "grid/variant/seed" label for the footer

  // sa::serve state (server + bridge), pimpl'd so this header stays free
  // of serve includes and builds identically with SA_SERVE=OFF.
  struct ServeState;
  std::unique_ptr<ServeState> serve_;
  void start_serving();      ///< creates + starts ServeState (run() calls it)
  void linger_and_stop(std::ostream& os);  ///< finish() tail

  // Checkpoint / resume / control-journal state (sa::ckpt).
  //
  // `store_` records completed cells while the run is live (created when
  // --checkpoint or --json was given); `resume_store_` is the loaded
  // --resume checkpoint that completed cells are read back from. The
  // supervisor thread saves the store every --checkpoint-every seconds
  // and watches for SIGTERM/SIGINT: on a signal it saves a final
  // checkpoint, writes the partial JSON document (`"interrupted": true`),
  // and exits 128+sig without waiting for in-flight cells.
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<CheckpointStore> resume_store_;
  ckpt::ControlJournal journal_;   ///< live /control recording (serve)
  std::string journal_spec_;       ///< effective spec passed to every cell
  std::string world_ckpt_path_;    ///< opts_.checkpoint + ".world"
  std::size_t grid_index_ = 0;     ///< positional grid id for the stores
  std::thread supervisor_;
  std::atomic<bool> supervisor_stop_{false};
  void start_supervisor();
  void stop_supervisor();
  void save_store();               ///< journal snapshot + atomic store save
  [[noreturn]] void interrupted_exit(int sig);
  [[nodiscard]] Json interrupted_document() const;
};

}  // namespace sa::exp
