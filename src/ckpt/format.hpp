// Versioned, CRC-framed binary checkpoint container (sa::ckpt).
//
// A checkpoint file is a flat sequence of named sections, each integrity-
// checked independently, so a torn write or a flipped bit is detected at
// the section that carries it and reported as a typed error — the loader
// never throws and never reads out of bounds, which is what lets the
// harness fall back to the newest valid checkpoint instead of crashing.
//
// File layout (all integers little-endian):
//
//   magic    8 bytes   "SACKPT\n" NUL
//   version  u32       kFormatVersion
//   record*            'S' u32 name_len, name, u64 payload_len, payload,
//                          u32 crc32(payload)
//   trailer            'E' u32 section_count
//
// Section payloads are written through `Buffer` and read through `Cursor`,
// which provide the typed primitives (u8/u32/u64/i64/f64/str/bytes).
// Doubles are serialized as their exact IEEE-754 bit pattern — checkpoint
// equality is byte equality, the same discipline the metamorphic tests
// apply to trajectories.
//
// Writes are atomic: data lands in `path.tmp`, the previous checkpoint is
// rotated to `path.prev`, then the tmp file is renamed into place. A crash
// between the two renames leaves `path.prev` as the newest valid file,
// which `read_file_with_fallback` picks up.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sa::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

/// Typed error codes for every way a checkpoint can be unusable. The
/// loader returns these — it never throws, crashes, or invokes UB on
/// malformed input (fuzzed in tests/ckpt/format_test.cpp).
enum class Errc {
  kOk = 0,
  kIo,              // open/read/write/rename failed (see detail for errno text)
  kBadMagic,        // not a checkpoint file
  kBadVersion,      // produced by an incompatible format revision
  kTruncated,       // file ends mid-record (torn write)
  kCrcMismatch,     // a section's payload fails its CRC (bit rot / flip)
  kBadSection,      // unknown record type or oversized/duplicate name
  kMissingSection,  // a required section is absent
  kMalformed,       // section payload shorter than its schema requires
  kShapeMismatch,   // checkpoint disagrees with the run configuration
  kStateDivergence, // replayed state does not byte-match the attestation
  kUntaggedEvent,   // engine export found a pending event with no tag
  kUnboundTag,      // engine import found a tag with no registered callable
};

[[nodiscard]] const char* errc_name(Errc code) noexcept;

struct Status {
  Errc code = Errc::kOk;
  std::string detail;

  [[nodiscard]] bool ok() const noexcept { return code == Errc::kOk; }
  [[nodiscard]] std::string to_string() const;
  static Status error(Errc code, std::string detail = {}) {
    return Status{code, std::move(detail)};
  }
};

/// CRC-32 (IEEE 802.3, reflected, init/final xor 0xffffffff) over `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Typed little-endian append buffer — the payload side of one section.
class Buffer {
 public:
  void u8(std::uint8_t v) { data_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Exact bit pattern — round-trips NaN payloads and signed zeros.
  void f64(double v);
  /// u32 length prefix + bytes.
  void str(std::string_view v);
  /// u64 length prefix + bytes (for nested/attestation payloads).
  void bytes(std::string_view v);
  /// Raw append without a length prefix.
  void raw(std::string_view v) { data_.append(v.data(), v.size()); }

  [[nodiscard]] const std::string& data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

 private:
  std::string data_;
};

/// Bounds-checked typed reads over one section payload. Every getter
/// returns false (and latches !ok()) instead of reading past the end.
class Cursor {
 public:
  Cursor() = default;
  explicit Cursor(std::string_view data) : data_(data) {}

  [[nodiscard]] bool u8(std::uint8_t& out);
  [[nodiscard]] bool u32(std::uint32_t& out);
  [[nodiscard]] bool u64(std::uint64_t& out);
  [[nodiscard]] bool i64(std::int64_t& out);
  [[nodiscard]] bool boolean(bool& out);
  [[nodiscard]] bool f64(double& out);
  [[nodiscard]] bool str(std::string& out);
  [[nodiscard]] bool bytes(std::string& out);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// kMalformed unless every byte was consumed without a short read.
  [[nodiscard]] Status finish(std::string_view what) const;

 private:
  bool take(std::size_t n, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Assembles a checkpoint image: named sections, each CRC-framed.
class Writer {
 public:
  Writer();
  /// Appends one section. Names must be unique, non-empty, < 256 bytes.
  void section(std::string_view name, const Buffer& payload);
  /// Seals the image (writes the trailer) and returns it. Call once.
  [[nodiscard]] std::string finish();

 private:
  std::string out_;
  std::uint32_t sections_ = 0;
  bool finished_ = false;
};

/// Parses and validates a checkpoint image; owns the bytes so section
/// payload views stay valid for the Reader's lifetime.
class Reader {
 public:
  /// Full validation up front: magic, version, record framing, every
  /// section's CRC, trailer count. On error `out` is left empty.
  [[nodiscard]] static Status parse(std::string data, Reader& out);
  [[nodiscard]] static Status read_file(const std::string& path, Reader& out);

  [[nodiscard]] bool has(std::string_view name) const noexcept;
  /// Raw payload of a section ({} if absent — check has() or use open()).
  [[nodiscard]] std::string_view payload(std::string_view name) const noexcept;
  /// Positions a cursor over a required section.
  [[nodiscard]] Status open(std::string_view name, Cursor& out) const;
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;  // into data_
    std::size_t length = 0;
  };
  std::string data_;
  std::vector<Section> sections_;
  std::vector<std::string> names_;
};

/// Reads a whole file into `out`. kIo with errno text on failure.
[[nodiscard]] Status slurp_file(const std::string& path, std::string& out);

/// Atomic checkpoint write: `path.tmp` + fsync, rotate any existing file
/// to `path.prev`, rename into place.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::string_view data);

/// Opens `path`, falling back to `path.prev` if the primary is missing,
/// truncated, or corrupt. `used_path`/`fallback_error` (optional) report
/// which file was loaded and why the primary was rejected.
[[nodiscard]] Status read_with_fallback(const std::string& path, Reader& out,
                                        std::string* used_path = nullptr,
                                        std::string* fallback_error = nullptr);

}  // namespace sa::ckpt
