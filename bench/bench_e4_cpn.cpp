// E4 — cognitive packet network under denial-of-service
// (paper Section III; Sakellari [38]; Gelenbe & Loukas [39]).
//
// Claim operationalised: the CPN self-awareness loop (per-node RL over
// observed route delays, substituted with Q-routing per DESIGN.md) keeps
// delivery rate and latency for legitimate traffic closer to their
// pre-attack levels than static shortest-path routing, while a flood
// attack congests the default corridors; after the attack it re-converges.
//
// Table 1: per routing variant, per attack window (before/during/after):
//          delivery rate, mean and p95 latency for legitimate packets.
// Table 2: degradation factors during the attack (the headline shape).
#include <iostream>
#include <string>
#include <vector>

#include "cpn/network.hpp"
#include "cpn/traffic.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace sa;
using namespace sa::cpn;

constexpr double kBefore = 3000.0;  // ticks of pre-attack traffic
constexpr double kAttack = 3000.0;
constexpr double kAfter = 3000.0;
const std::vector<std::uint64_t> kSeeds{41, 42, 43};

struct WindowStats {
  sim::RunningStats delivery, latency, p95;
};

struct RunStats {
  WindowStats before, during, after;
};

RunStats run(PacketNetwork::Router router, bool defence,
             std::uint64_t seed) {
  const auto topo = Topology::grid(4, 6, 4, seed);
  PacketNetwork::Params np;
  np.router = router;
  np.dos_defence = defence;
  np.seed = seed;
  PacketNetwork net(topo, np);
  TrafficParams tp;
  tp.flows = 8;
  tp.legit_rate = 2.0;
  tp.attack_start = kBefore;
  tp.attack_end = kBefore + kAttack;
  tp.attack_rate = 25.0;
  tp.attackers = 3;
  tp.seed = seed;
  TrafficGenerator gen(topo, tp);

  auto run_window = [&](double ticks, WindowStats& w) {
    for (double i = 0; i < ticks; ++i) {
      gen.tick(net);
      net.step();
    }
    const auto s = net.harvest();
    w.delivery.add(s.delivery_rate());
    w.latency.add(s.mean_latency);
    w.p95.add(s.p95_latency);
  };

  RunStats r;
  run_window(kBefore, r.before);
  run_window(kAttack, r.during);
  run_window(kAfter, r.after);
  return r;
}

}  // namespace

int main() {
  std::cout << "E4: DoS resilience — static shortest-path vs self-aware "
               "Q-routing (CPN loop).\nFlood of 25 pkts/tick from 3 "
               "attackers onto the central node during the middle window; "
            << kSeeds.size() << " seeds.\n\n";

  struct Config {
    std::string name;
    PacketNetwork::Router router;
    bool defence;
    RunStats stats;
  };
  std::vector<Config> configs{
      {"static", PacketNetwork::Router::Static, false, {}},
      {"static+defence", PacketNetwork::Router::Static, true, {}},
      {"q-routing", PacketNetwork::Router::QRouting, false, {}},
      {"self-aware (q+defence)", PacketNetwork::Router::QRouting, true, {}},
  };
  for (auto& cfg : configs) {
    for (const auto seed : kSeeds) {
      const auto r = run(cfg.router, cfg.defence, seed);
      for (auto [into, from] : {std::pair{&cfg.stats.before, &r.before},
                                std::pair{&cfg.stats.during, &r.during},
                                std::pair{&cfg.stats.after, &r.after}}) {
        into->delivery.merge(from->delivery);
        into->latency.merge(from->latency);
        into->p95.merge(from->p95);
      }
    }
  }

  sim::Table t1("E4.1  legitimate-traffic QoS by attack window",
                {"router", "window", "delivery", "mean_lat", "p95_lat"});
  for (const auto& cfg : configs) {
    for (const auto& [win, w] :
         {std::pair<std::string, const WindowStats*>{"before",
                                                     &cfg.stats.before},
          std::pair<std::string, const WindowStats*>{"during",
                                                     &cfg.stats.during},
          std::pair<std::string, const WindowStats*>{"after",
                                                     &cfg.stats.after}}) {
      t1.add_row({cfg.name, win, w->delivery.mean(), w->latency.mean(),
                  w->p95.mean()});
    }
  }
  t1.print(std::cout);

  sim::Table t2("E4.2  degradation during attack (during / before)",
                {"router", "latency_x", "delivery_drop"});
  for (const auto& cfg : configs) {
    t2.add_row({cfg.name,
                cfg.stats.during.latency.mean() /
                    cfg.stats.before.latency.mean(),
                cfg.stats.before.delivery.mean() -
                    cfg.stats.during.delivery.mean()});
  }
  t2.print(std::cout);
  return 0;
}
