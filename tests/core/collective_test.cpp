#include "core/collective.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <numeric>
#include <string>

namespace sa::core {
namespace {

std::vector<double> ramp(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

double mean_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

struct NamedFactory {
  std::string label;
  std::function<std::unique_ptr<CollectiveAggregator>(std::size_t)> make;
};

class AnyAggregatorTest : public ::testing::TestWithParam<NamedFactory> {};

/// Property: every aggregator converges every live node to the true mean.
TEST_P(AnyAggregatorTest, ConvergesToGlobalMean) {
  const std::size_t n = 16;
  auto agg = GetParam().make(n);
  const auto values = ramp(n);
  agg->reset(values);
  sim::Rng rng(1);
  for (int round = 0; round < 60; ++round) agg->round(rng);
  EXPECT_LT(agg->max_error(mean_of(values)), 0.05) << GetParam().label;
}

TEST_P(AnyAggregatorTest, MeanErrorBelowMaxError) {
  const std::size_t n = 12;
  auto agg = GetParam().make(n);
  agg->reset(ramp(n));
  sim::Rng rng(2);
  for (int round = 0; round < 10; ++round) agg->round(rng);
  const double truth = mean_of(ramp(n));
  EXPECT_LE(agg->mean_error(truth), agg->max_error(truth) + 1e-12);
}

TEST_P(AnyAggregatorTest, RoundsReportMessages) {
  auto agg = GetParam().make(8);
  agg->reset(ramp(8));
  sim::Rng rng(3);
  EXPECT_GT(agg->round(rng), 0u);
}

TEST_P(AnyAggregatorTest, NodesAccessor) {
  EXPECT_EQ(GetParam().make(5)->nodes(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregators, AnyAggregatorTest,
    ::testing::Values(
        NamedFactory{"central",
                     [](std::size_t n) {
                       return std::make_unique<CentralAggregator>(n);
                     }},
        NamedFactory{"gossip",
                     [](std::size_t n) {
                       return std::make_unique<GossipAggregator>(n);
                     }},
        NamedFactory{"hierarchy",
                     [](std::size_t n) {
                       return std::make_unique<HierarchyAggregator>(n);
                     }}),
    [](const auto& info) { return info.param.label; });

TEST(CentralAggregator, ConvergesInOneRound) {
  CentralAggregator agg(8);
  agg.reset(ramp(8));
  sim::Rng rng(4);
  agg.round(rng);
  EXPECT_NEAR(agg.estimate(3), 4.5, 1e-12);
}

TEST(CentralAggregator, CoordinatorFailureBlindsEveryone) {
  CentralAggregator agg(8);
  agg.reset(ramp(8));
  sim::Rng rng(5);
  agg.round(rng);
  agg.fail_node(0);  // the single point of failure
  EXPECT_EQ(agg.round(rng), 0u);  // nothing moves any more
}

TEST(CentralAggregator, FollowerFailureOnlyShiftsTheMean) {
  CentralAggregator agg(4);
  agg.reset({1.0, 2.0, 3.0, 10.0});
  sim::Rng rng(6);
  agg.fail_node(3);
  agg.round(rng);
  EXPECT_NEAR(agg.estimate(0), 2.0, 1e-12);  // mean of live {1,2,3}
}

TEST(GossipAggregator, SurvivesCoordinatorlessFailures) {
  GossipAggregator agg(16);
  agg.reset(ramp(16));
  sim::Rng rng(7);
  // Kill a quarter of the nodes; the rest still converge to the mean of
  // the surviving mass (approximately — the dead nodes' shares freeze).
  agg.fail_node(0);
  agg.fail_node(5);
  agg.fail_node(9);
  agg.fail_node(13);
  for (int round = 0; round < 80; ++round) agg.round(rng);
  // All live nodes agree with each other (consensus), even if the frozen
  // shares shift the value slightly.
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = 0; i < agg.nodes(); ++i) {
    if (!agg.alive(i)) continue;
    lo = std::min(lo, agg.estimate(i));
    hi = std::max(hi, agg.estimate(i));
  }
  EXPECT_LT(hi - lo, 0.1);
}

TEST(GossipAggregator, WeightConservationGivesUnbiasedMean) {
  GossipAggregator agg(10);
  agg.reset(ramp(10));
  sim::Rng rng(8);
  for (int round = 0; round < 100; ++round) agg.round(rng);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(agg.estimate(i), 5.5, 0.01);
  }
}

TEST(HierarchyAggregator, ConvergesInOneFullSweep) {
  HierarchyAggregator agg(15, 2);
  agg.reset(ramp(15));
  sim::Rng rng(9);
  agg.round(rng);
  EXPECT_NEAR(agg.estimate(14), 8.0, 1e-12);
}

TEST(HierarchyAggregator, InteriorFailurePartitionsSubtree) {
  HierarchyAggregator agg(15, 2);  // node 1's subtree: 3,4,7,8,9,10
  agg.reset(ramp(15));
  sim::Rng rng(10);
  agg.round(rng);
  const double before = agg.estimate(7);
  agg.fail_node(1);
  agg.round(rng);
  // Node 7 is cut off: its estimate froze.
  EXPECT_DOUBLE_EQ(agg.estimate(7), before);
  // The surviving part re-averages without the lost subtree.
  EXPECT_NE(agg.estimate(2), before);
}

TEST(HierarchyAggregator, DepthIsLogarithmic) {
  EXPECT_EQ(HierarchyAggregator(1, 2).depth(), 0u);
  EXPECT_EQ(HierarchyAggregator(3, 2).depth(), 1u);
  EXPECT_EQ(HierarchyAggregator(7, 2).depth(), 2u);
  EXPECT_EQ(HierarchyAggregator(15, 2).depth(), 3u);
  EXPECT_EQ(HierarchyAggregator(13, 3).depth(), 2u);
}

TEST(Aggregators, NamesAreDistinct) {
  EXPECT_EQ(CentralAggregator(2).name(), "central");
  EXPECT_EQ(GossipAggregator(2).name(), "gossip");
  EXPECT_EQ(HierarchyAggregator(2).name(), "hierarchy");
}

}  // namespace
}  // namespace sa::core
