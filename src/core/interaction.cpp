#include "core/interaction.hpp"

#include <algorithm>
#include <cmath>

namespace sa::core {

InteractionAwareness::PeerModel& InteractionAwareness::model_for(
    const std::string& peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    it = peers_.emplace(peer, PeerModel(p_.alpha, p_.peer_states)).first;
  }
  return it->second;
}

void InteractionAwareness::record_interaction(const std::string& peer,
                                              bool success, double value) {
  auto& m = model_for(peer);
  m.reliability.add(success ? 1.0 : 0.0);
  m.value.add(value);
  ++m.count;
}

void InteractionAwareness::record_peer_state(const std::string& peer,
                                             std::size_t state) {
  if (p_.peer_states == 0) return;
  model_for(peer).behaviour.observe(std::min(state, p_.peer_states - 1));
}

void InteractionAwareness::update(double t, const Observation& obs,
                                  KnowledgeBase& kb) {
  (void)obs;  // interactions arrive via record_*; obs unused at this level
  for (const auto& [peer, m] : peers_) {
    const double conf =
        1.0 - std::exp(-static_cast<double>(m.count) / 10.0);
    const std::string base = "peer." + peer + ".";
    kb.put_number(base + "reliability", m.reliability.value(), t, conf,
                  Scope::Private, name());
    kb.put_number(base + "interactions", static_cast<double>(m.count), t, 1.0,
                  Scope::Private, name());
    kb.put_number(base + "value", m.value.value(), t, conf, Scope::Private,
                  name());
    if (p_.peer_states > 0 && m.behaviour.observations() > 1) {
      kb.put_number(base + "predicted_state",
                    static_cast<double>(m.behaviour.predict_next()), t, conf,
                    Scope::Private, name());
    }
  }
}

double InteractionAwareness::reliability(const std::string& peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? 0.0 : it->second.reliability.value();
}

std::size_t InteractionAwareness::interactions(const std::string& peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.count;
}

std::vector<std::string> InteractionAwareness::peers() const {
  std::vector<std::string> out;
  out.reserve(peers_.size());
  for (const auto& [id, m] : peers_) {
    (void)m;
    out.push_back(id);
  }
  return out;
}

double InteractionAwareness::quality() const {
  // No peers means nothing to model — neutral, not failing.
  if (peers_.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& [id, m] : peers_) {
    (void)id;
    acc += 1.0 - std::exp(-static_cast<double>(m.count) / 10.0);
  }
  return acc / static_cast<double>(peers_.size());
}

void InteractionAwareness::reconfigure() { peers_.clear(); }

}  // namespace sa::core
